"""Chaos harness: crashed workers, hangs, and corruption under jobs=4.

The acceptance scenario of the robustness layer: a parallel sweep in
which two workers crash mid-batch and one cache entry is corrupt must
still complete, classify every spec, and produce summaries bit-identical
to a fault-free serial run.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import FaultError
from repro.faults import truncate_cache_entry
from repro.runner import FactoryRef, ResultCache, SessionRunner, SessionSpec


def busyloop_spec(seed, level, label="", **kwargs):
    return SessionSpec(
        "Nexus 5",
        FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
        FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", level),
        SimulationConfig(duration_seconds=2.0, seed=seed),
        label=label,
        **kwargs,
    )


def crashing_spec(seed, level, token_path, label=""):
    spec = busyloop_spec(seed, level, label)
    return SessionSpec(
        spec.platform,
        spec.policy,
        FactoryRef.to(
            "repro.faults.chaos:CrashOnceWorkload", str(token_path), level
        ),
        spec.config,
        label=label,
    )


LEVELS = [20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]


class TestChaosSweep:
    def test_sweep_survives_crashes_and_corruption(self, tmp_path):
        """jobs=4, two worker crashes, one corrupt cache entry."""
        cache_dir = tmp_path / "cache"

        # Fault-free serial reference run (no cache, no parallelism).
        serial = SessionRunner(jobs=1)
        reference = serial.run(
            [busyloop_spec(i, LEVELS[i], f"ref{i}") for i in range(8)]
        )

        # Pre-corrupt one cache entry: warm the cache for spec 5, then
        # truncate its entry on disk.
        warmer = SessionRunner(jobs=1, cache_dir=cache_dir)
        warm_spec = busyloop_spec(5, LEVELS[5], "chaos5")
        warmer.run([warm_spec])
        cache = ResultCache(cache_dir)
        truncate_cache_entry(cache.path(warm_spec.cache_key()))

        # The chaos batch: specs 1 and 6 crash their worker once.
        specs = []
        for i in range(8):
            if i in (1, 6):
                specs.append(
                    crashing_spec(i, LEVELS[i], tmp_path / f"crash{i}.token",
                                  label=f"chaos{i}")
                )
            else:
                specs.append(busyloop_spec(i, LEVELS[i], f"chaos{i}"))

        runner = SessionRunner(
            jobs=4, cache_dir=cache_dir, retries=3, retry_backoff_seconds=0.0
        )
        report = runner.run_report(specs)

        # The sweep completed and every spec is classified.
        assert report.succeeded, report.render()
        assert len(report.outcomes) == 8
        assert all(outcome.status in ("ok", "retried", "degraded")
                   for outcome in report.outcomes)

        # The corrupted entry was quarantined and recomputed.
        degraded = report.outcomes[5]
        assert degraded.status == "degraded"
        assert "quarantined" in degraded.detail
        assert list(cache.quarantine_root.glob("*.json"))
        assert runner.last_stats.corrupt_cache_entries == 1

        # The crashes were retried (a broken pool can fail innocent
        # bystanders in the same wave, so at least the crashing specs
        # retried — possibly more).
        retried_indices = {outcome.index for outcome in report.retried}
        assert {1, 6} <= retried_indices
        assert runner.last_stats.retries >= 2

        # Survivors are bit-identical to the fault-free serial run.
        # (CrashOnceWorkload subclasses BusyLoopApp without changing its
        # name or demand, so even the crashed specs' summaries match.)
        for index in range(8):
            assert report.summaries[index] == reference[index], index

    def test_both_crash_tokens_were_claimed(self, tmp_path):
        token = tmp_path / "crash.token"
        spec = crashing_spec(0, 40.0, token, "crash")
        runner = SessionRunner(jobs=2, retries=2, retry_backoff_seconds=0.0)
        report = runner.run_report([spec, busyloop_spec(1, 50.0, "clean")])
        assert report.succeeded
        assert token.exists()


class TestRetryBudget:
    def test_crash_without_retries_fails_the_spec(self, tmp_path):
        spec = crashing_spec(0, 40.0, tmp_path / "crash.token", "crash")
        runner = SessionRunner(jobs=2, retries=0)
        report = runner.run_report([spec, busyloop_spec(1, 50.0, "clean")])
        crash_outcome = report.outcomes[0]
        assert crash_outcome.status == "failed"
        assert crash_outcome.error
        assert report.first_error() is not None

    def test_flaky_spec_retries_inline(self, tmp_path):
        spec = SessionSpec(
            "Nexus 5",
            FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
            FactoryRef.to(
                "repro.faults.chaos:FlakyOnceWorkload",
                str(tmp_path / "flaky.token"), 40.0,
            ),
            SimulationConfig(duration_seconds=1.0, seed=0),
            label="flaky",
        )
        runner = SessionRunner(jobs=1, retries=1, retry_backoff_seconds=0.0)
        report = runner.run_report([spec])
        assert report.outcomes[0].status == "retried"
        assert report.outcomes[0].attempts == 2
        assert report.outcomes[0].error_type == "FaultError"

    def test_run_raises_the_original_error(self, tmp_path):
        spec = SessionSpec(
            "Nexus 5",
            FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
            FactoryRef.to(
                "repro.faults.chaos:FlakyOnceWorkload",
                str(tmp_path / "flaky.token"), 40.0,
            ),
            SimulationConfig(duration_seconds=1.0, seed=0),
        )
        runner = SessionRunner(jobs=1, retries=0)
        with pytest.raises(FaultError, match="injected flaky failure"):
            runner.run([spec])

    def test_retry_telemetry_emitted(self, tmp_path):
        spec = SessionSpec(
            "Nexus 5",
            FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
            FactoryRef.to(
                "repro.faults.chaos:FlakyOnceWorkload",
                str(tmp_path / "flaky.token"), 40.0,
            ),
            SimulationConfig(duration_seconds=1.0, seed=0),
            label="flaky",
        )
        runner = SessionRunner(jobs=1, retries=1, retry_backoff_seconds=0.0)
        runner.run_report([spec])
        retries = [
            event for event in runner.telemetry
            if event.category == "runner" and event.name == "retry"
        ]
        assert len(retries) == 1
        assert retries[0].label == "flaky"
        assert "flaky" in retries[0].error


class TestTimeouts:
    def test_hung_worker_is_terminated_and_reported(self, tmp_path):
        hang = SessionSpec(
            "Nexus 5",
            FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
            FactoryRef.to("repro.faults.chaos:HangingWorkload", 30.0, 40.0),
            SimulationConfig(duration_seconds=1.0, seed=0),
            label="hang",
        )
        runner = SessionRunner(jobs=2, retries=0, timeout_seconds=1.5)
        report = runner.run_report([hang, busyloop_spec(1, 50.0, "clean")])
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert "timed out" in outcome.error
        assert runner.last_stats.timeouts == 1
        # The clean spec in the same batch still succeeded.
        assert report.outcomes[1].status in ("ok", "retried")
        assert report.summaries[1] is not None

    def test_fast_specs_pass_under_a_timeout(self):
        runner = SessionRunner(jobs=2, timeout_seconds=60.0)
        report = runner.run_report(
            [busyloop_spec(i, 40.0 + i, f"s{i}") for i in range(3)]
        )
        assert report.succeeded
        assert runner.last_stats.timeouts == 0
