"""In-sim fault behaviour: each fault kind, its trace events, determinism."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.experiments.common import mobicore_for_phone
from repro.faults import (
    FaultPlan,
    HotplugFailFault,
    MpdecisionStallFault,
    SensorDropoutFault,
    ThermalThrottleFault,
)
from repro.kernel.engine import Session
from repro.obs import TracepointBus, to_chrome_trace, validate_chrome_trace
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp


def run_session(faults=None, policy=None, load=70.0, duration=6.0, trace=None):
    platform = Platform.from_spec(nexus5_spec())
    session = Session(
        platform,
        BusyLoopApp(load),
        policy if policy is not None else AndroidDefaultPolicy(),
        SimulationConfig(duration_seconds=duration, seed=0),
        pin_uncore_max=False,
        trace=trace,
        faults=faults,
    )
    return session.run()


def fault_events(bus):
    return [e for e in bus.events if e.category == "fault"]


class TestThermalThrottle:
    def test_frequency_capped_inside_window(self):
        plan = FaultPlan.of(
            ThermalThrottleFault(at_seconds=2.0, duration_seconds=2.0, steps=6)
        )
        result = run_session(faults=plan)
        spec = nexus5_spec()
        cap = spec.opp_table.frequencies_khz[-(6 + 1)]
        # Records are stamped at tick end, so the first record *affected*
        # by a fault firing at t=2.0 is the one stamped one tick later.
        inside = [
            r for r in result.trace.records if 2.1 <= r.time_seconds < 4.0
        ]
        outside = [r for r in result.trace.records if r.time_seconds >= 4.5]
        assert inside and outside
        assert all(max(r.frequencies_khz) <= cap for r in inside)
        # After the window the governor climbs back above the cap.
        assert any(max(r.frequencies_khz) > cap for r in outside)

    def test_edges_emitted_as_typed_events(self):
        bus = TracepointBus()
        plan = FaultPlan.of(
            ThermalThrottleFault(at_seconds=1.0, duration_seconds=2.0, steps=4)
        )
        run_session(faults=plan, trace=bus)
        events = fault_events(bus)
        assert [(e.fault, e.action) for e in events] == [
            ("thermal_throttle", "fired"),
            ("thermal_throttle", "cleared"),
        ]
        assert events[0].ts_us == 1_000_000
        assert events[1].ts_us == 3_000_000


class TestHotplugFail:
    def test_online_mask_frozen_and_failures_counted(self):
        # MobiCore plugs cores in and out on this load; a fail window
        # freezes the mask exactly where the fault found it.
        plan = FaultPlan.of(HotplugFailFault(at_seconds=3.0, duration_seconds=2.0))
        bus = TracepointBus()
        result = run_session(
            faults=plan, policy=mobicore_for_phone("Nexus 5"), load=35.0,
            duration=8.0, trace=bus,
        )
        inside = [r for r in result.trace.records if 3.0 <= r.time_seconds < 5.0]
        masks = {tuple(r.online_mask) for r in inside}
        assert len(masks) == 1
        failed = [
            e for e in bus.events
            if e.category == "hotplug" and e.name == "request_failed"
        ]
        assert failed
        assert all(e.requested_changes >= 1 for e in failed)

    def test_requests_honoured_again_after_window(self):
        plan = FaultPlan.of(HotplugFailFault(at_seconds=1.0, duration_seconds=1.0))
        result = run_session(
            faults=plan, policy=mobicore_for_phone("Nexus 5"), load=35.0,
            duration=8.0,
        )
        after = [r for r in result.trace.records if r.time_seconds >= 2.0]
        # The governor parks cores for a 35% load once requests work again.
        assert any(r.online_count < len(r.online_mask) for r in after)


class TestMpdecisionStall:
    def test_stall_holds_cores_online(self):
        clean = run_session(
            policy=mobicore_for_phone("Nexus 5"), load=35.0, duration=8.0
        )
        stalled = run_session(
            faults=FaultPlan.of(
                MpdecisionStallFault(at_seconds=0.0, duration_seconds=8.0)
            ),
            policy=mobicore_for_phone("Nexus 5"),
            load=35.0,
            duration=8.0,
        )
        assert clean.trace.mean_online_cores() < len(clean.trace.records[0].online_mask)
        # With the veto back from the dead, nothing ever goes offline.
        assert all(
            all(r.online_mask) for r in stalled.trace.records
        )

    def test_mpdecision_state_restored_after_window(self, platform):
        session = Session(
            platform,
            BusyLoopApp(35.0),
            mobicore_for_phone("Nexus 5"),
            SimulationConfig(duration_seconds=4.0, seed=0),
            pin_uncore_max=False,
            faults=FaultPlan.of(
                MpdecisionStallFault(at_seconds=1.0, duration_seconds=1.0)
            ),
        )
        session.run()
        assert session.stack.hotplug.mpdecision_enabled is False


class TestSensorDropout:
    def test_policy_sees_stale_utilization(self):
        bus = TracepointBus()
        plan = FaultPlan.of(
            SensorDropoutFault(at_seconds=3.0, duration_seconds=2.0)
        )
        run_session(faults=plan, trace=bus, duration=6.0)
        decisions = [
            e for e in bus.events
            if e.category == "policy" and e.name == "decision"
        ]
        inside = [
            e for e in decisions if 3_000_000 <= e.ts_us < 5_000_000
        ]
        assert inside
        # Frozen feed: every in-window decision sees the identical value.
        assert len({e.util_percent for e in inside}) == 1

    def test_accounting_still_sees_true_values(self):
        plan = FaultPlan.of(
            SensorDropoutFault(at_seconds=1.0, duration_seconds=2.0)
        )
        result = run_session(faults=plan, duration=4.0)
        inside = [r for r in result.trace.records if 1.0 <= r.time_seconds < 3.0]
        # The hardware keeps running: true utilization keeps moving even
        # though the policy is blinded.
        assert len({round(r.global_util_percent, 3) for r in inside}) > 1


class TestDeterminismAndExport:
    def full_plan(self):
        return FaultPlan.of(
            ThermalThrottleFault(at_seconds=1.0, duration_seconds=2.0, steps=5),
            HotplugFailFault(at_seconds=2.0, duration_seconds=1.0),
            MpdecisionStallFault(at_seconds=3.0, duration_seconds=1.0),
            SensorDropoutFault(at_seconds=4.0, duration_seconds=1.0),
        )

    def test_faulted_sessions_replay_bit_identically(self):
        first = run_session(faults=self.full_plan())
        second = run_session(faults=self.full_plan())
        assert first.energy_mj() == second.energy_mj()
        assert [tuple(r.frequencies_khz) for r in first.trace.records] == [
            tuple(r.frequencies_khz) for r in second.trace.records
        ]

    def test_clean_session_unaffected_by_empty_plan(self):
        clean = run_session()
        empty = run_session(faults=FaultPlan())
        assert clean.energy_mj() == empty.energy_mj()

    def test_fault_events_survive_perfetto_export(self):
        bus = TracepointBus()
        run_session(faults=self.full_plan(), trace=bus)
        document = to_chrome_trace([("faulted", bus.events)])
        validate_chrome_trace(document)
        names = [
            e["name"] for e in document["traceEvents"]
            if e.get("cat") == "fault"
        ]
        assert "fault thermal_throttle fired" in names
        assert "fault sensor_dropout cleared" in names
        # 4 windows, one fired + one cleared edge each.
        assert len(names) == 8
