"""Cache corruption: detection, quarantine, and recompute-to-identical."""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import CacheError
from repro.faults import bitflip_cache_entry, truncate_cache_entry
from repro.runner import (
    CacheLookup,
    FactoryRef,
    ResultCache,
    SessionRunner,
    SessionSpec,
    summary_checksum,
)


def make_spec(level=40.0, seed=0):
    return SessionSpec(
        "Nexus 5",
        FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
        FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", level),
        SimulationConfig(duration_seconds=2.0, seed=seed),
        label=f"busyloop{level:.0f}",
    )


@pytest.fixture()
def warm_cache(tmp_path):
    """A cache holding one valid entry, plus the spec that produced it."""
    cache_dir = tmp_path / "cache"
    spec = make_spec()
    SessionRunner(jobs=1, cache_dir=cache_dir).run([spec])
    return ResultCache(cache_dir), spec


def forge_summary_value(cache, key):
    """Perturb one summary value in-place without updating the checksum.

    Unlike a random bit-flip this keeps the JSON perfectly parseable, so
    only checksum verification can catch it — the exact scenario the
    checksum exists for.
    """
    path = cache.path(key)
    document = json.loads(path.read_text(encoding="utf-8"))
    document["summary"]["energy_mj"] += 1.0
    path.write_text(json.dumps(document), encoding="utf-8")


class TestLookupClassification:
    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        lookup = cache.lookup("deadbeef")
        assert lookup.status == "miss"
        assert not lookup.hit and not lookup.corrupt

    def test_valid_entry_is_a_hit(self, warm_cache):
        cache, spec = warm_cache
        lookup = cache.lookup(spec.cache_key())
        assert lookup.hit
        assert lookup.summary is not None
        assert lookup.summary.platform == "Nexus 5"

    def test_truncated_entry_is_corrupt(self, warm_cache):
        cache, spec = warm_cache
        truncate_cache_entry(cache.path(spec.cache_key()))
        lookup = cache.lookup(spec.cache_key())
        assert lookup.corrupt
        assert "JSON" in lookup.detail

    def test_forged_value_caught_by_checksum(self, warm_cache):
        # The JSON still parses; only the checksum notices the damage.
        cache, spec = warm_cache
        forge_summary_value(cache, spec.cache_key())
        lookup = cache.lookup(spec.cache_key())
        assert lookup.corrupt
        assert "checksum mismatch" in lookup.detail

    def test_bitflipped_entry_is_corrupt(self, warm_cache):
        cache, spec = warm_cache
        bitflip_cache_entry(cache.path(spec.cache_key()))
        assert cache.lookup(spec.cache_key()).corrupt

    def test_old_format_version_is_a_miss(self, warm_cache):
        cache, spec = warm_cache
        path = cache.path(spec.cache_key())
        document = json.loads(path.read_text(encoding="utf-8"))
        document["version"] = 1
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.lookup(spec.cache_key()).status == "miss"

    def test_load_is_the_lenient_wrapper(self, warm_cache):
        cache, spec = warm_cache
        truncate_cache_entry(cache.path(spec.cache_key()))
        assert cache.load(spec.cache_key()) is None


class TestQuarantine:
    def test_quarantine_moves_the_entry(self, warm_cache):
        cache, spec = warm_cache
        key = spec.cache_key()
        target = cache.quarantine(key)
        assert target is not None
        assert target.is_file()
        assert target.parent == cache.quarantine_root
        assert not cache.path(key).is_file()

    def test_quarantine_of_missing_entry_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.quarantine("deadbeef") is None

    def test_quarantined_name_preserves_the_key(self, warm_cache):
        cache, spec = warm_cache
        key = spec.cache_key()
        target = cache.quarantine(key)
        assert target.name == f"{key}.json"


class TestRecomputeMatchesColdRun:
    @pytest.mark.parametrize("damage", [truncate_cache_entry, bitflip_cache_entry])
    def test_corrupt_entry_recomputed_identically(self, tmp_path, damage):
        """Damage -> quarantine -> recompute == a cold run, bit for bit."""
        spec = make_spec()
        cold = SessionRunner(jobs=1).run([spec])[0]

        cache_dir = tmp_path / "cache"
        SessionRunner(jobs=1, cache_dir=cache_dir).run([spec])
        cache = ResultCache(cache_dir)
        damage(cache.path(spec.cache_key()))

        # A fresh runner, so the read really goes to disk (the warming
        # runner would serve its in-memory memo and never see the damage).
        runner = SessionRunner(jobs=1, cache_dir=cache_dir)
        report = runner.run_report([spec])
        assert report.outcomes[0].status == "degraded"
        assert runner.last_stats.corrupt_cache_entries == 1
        assert report.summaries[0] == cold

        # The quarantined original is kept for post-mortem...
        assert list(cache.quarantine_root.glob("*.json"))
        # ...and the fresh entry is a verified hit again.
        assert cache.lookup(spec.cache_key()).hit
        clean_again = SessionRunner(jobs=1, cache_dir=cache_dir).run_report([spec])
        assert clean_again.outcomes[0].status == "ok"
        assert clean_again.outcomes[0].source == "cache"
        assert clean_again.summaries[0] == cold

    def test_checksum_covers_values_not_formatting(self, warm_cache):
        # Rewriting the file with different whitespace must NOT trip the
        # checksum: it hashes canonical JSON, not raw bytes.
        cache, spec = warm_cache
        path = cache.path(spec.cache_key())
        document = json.loads(path.read_text(encoding="utf-8"))
        path.write_text(json.dumps(document, indent=2), encoding="utf-8")
        assert cache.lookup(spec.cache_key()).hit


class TestStoreErrors:
    def test_unwritable_root_raises_cache_error(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where a directory must go", encoding="utf-8")
        cache = ResultCache(blocked / "cache")
        spec = make_spec()
        summary = SessionRunner(jobs=1).run([spec])[0]
        with pytest.raises(CacheError):
            cache.store(spec.cache_key(), summary, spec.cache_payload())

    def test_checksum_is_canonical(self):
        assert summary_checksum({"b": 1, "a": 2}) == summary_checksum(
            {"a": 2, "b": 1}
        )
