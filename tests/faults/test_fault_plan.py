"""FaultPlan: validation, windows, JSON round-trips, cache identity."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    HotplugFailFault,
    MpdecisionStallFault,
    SensorDropoutFault,
    ThermalThrottleFault,
)
from repro.runner import FactoryRef, SessionSpec


def sample_plan():
    return FaultPlan.of(
        ThermalThrottleFault(at_seconds=1.0, duration_seconds=2.0, steps=5),
        HotplugFailFault(at_seconds=2.0, duration_seconds=1.0),
        MpdecisionStallFault(at_seconds=3.0, duration_seconds=0.5),
        SensorDropoutFault(at_seconds=4.0, duration_seconds=1.0),
    )


class TestFaultWindows:
    def test_half_open_window(self):
        fault = HotplugFailFault(at_seconds=1.0, duration_seconds=2.0)
        assert not fault.active_at(0.99)
        assert fault.active_at(1.0)
        assert fault.active_at(2.99)
        assert not fault.active_at(3.0)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            HotplugFailFault(at_seconds=-1.0, duration_seconds=2.0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(FaultError):
            SensorDropoutFault(at_seconds=0.0, duration_seconds=0.0)

    def test_throttle_steps_validated(self):
        with pytest.raises(FaultError):
            ThermalThrottleFault(at_seconds=0.0, duration_seconds=1.0, steps=0)

    def test_registry_covers_every_kind(self):
        assert set(FAULT_KINDS) == {
            "thermal_throttle",
            "hotplug_fail",
            "mpdecision_stall",
            "sensor_dropout",
        }


class TestFaultPlanSerialisation:
    def test_json_round_trip(self):
        plan = sample_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_payload_round_trip(self):
        plan = sample_plan()
        assert FaultPlan.from_payload(plan.payload()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultPlan.from_payload(
                {"faults": [{"kind": "quantum_bitflip", "at_seconds": 0.0,
                             "duration_seconds": 1.0}]}
            )

    def test_unexpected_field_rejected(self):
        with pytest.raises(FaultError, match="unexpected fields"):
            FaultPlan.from_payload(
                {"faults": [{"kind": "hotplug_fail", "at_seconds": 0.0,
                             "duration_seconds": 1.0, "blast_radius": 9}]}
            )

    def test_invalid_json_typed_error(self):
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_missing_file_typed_error(self, tmp_path):
        with pytest.raises(FaultError, match="cannot read"):
            FaultPlan.load(tmp_path / "absent.json")

    def test_load_from_file(self, tmp_path):
        plan = sample_plan()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert FaultPlan.load(path) == plan

    def test_non_window_entry_rejected(self):
        with pytest.raises(FaultError, match="FaultWindow"):
            FaultPlan(("thermal_throttle",))  # type: ignore[arg-type]

    def test_truthiness_tracks_contents(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert sample_plan()
        assert len(sample_plan()) == 4


class TestCacheIdentity:
    def spec(self, faults=None):
        return SessionSpec(
            "Nexus 5",
            FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
            FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", 40.0),
            SimulationConfig(duration_seconds=2.0, seed=0),
            faults=faults,
        )

    def test_fault_plan_forks_the_cache_key(self):
        clean = self.spec()
        faulted = self.spec(sample_plan())
        assert clean.cache_key() != faulted.cache_key()

    def test_empty_plan_keeps_the_clean_address(self):
        assert self.spec().cache_key() == self.spec(FaultPlan()).cache_key()

    def test_same_plan_same_key(self):
        one = self.spec(sample_plan())
        two = dataclasses.replace(self.spec(), faults=sample_plan())
        assert one.cache_key() == two.cache_key()
