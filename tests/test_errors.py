"""The exception hierarchy: every subsystem error is a ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.UnitsError,
    errors.PlatformError,
    errors.OppError,
    errors.CoreStateError,
    errors.SchedulerError,
    errors.GovernorError,
    errors.HotplugError,
    errors.BandwidthError,
    errors.WorkloadError,
    errors.TraceError,
    errors.MeterError,
    errors.ExperimentError,
    errors.RunnerError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_subclasses_repro_error(self, error_cls):
        assert issubclass(error_cls, errors.ReproError)
        assert issubclass(error_cls, Exception)

    def test_all_exported(self):
        for name in errors.__all__:
            assert hasattr(errors, name)

    def test_base_catch_at_api_boundary(self):
        """One except clause catches any library error."""
        from repro.soc.opp import OppTable

        with pytest.raises(errors.ReproError):
            OppTable([])

    def test_errors_carry_messages(self):
        try:
            raise errors.GovernorError("governor misconfigured")
        except errors.ReproError as caught:
            assert "governor misconfigured" in str(caught)
