"""SimulationConfig validation and derived quantities."""

import pytest

from repro.config import SimulationConfig, short_session
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        config = SimulationConfig()
        assert config.tick_seconds == pytest.approx(0.020)
        assert config.duration_seconds == pytest.approx(120.0)

    def test_zero_tick_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(tick_seconds=0.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(duration_seconds=0.0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(warmup_seconds=-1.0)

    def test_warmup_longer_than_session_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(duration_seconds=10.0, warmup_seconds=10.0)

    def test_tick_longer_than_session_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(tick_seconds=2.0, duration_seconds=1.0)


class TestDerived:
    def test_total_ticks(self):
        config = SimulationConfig(tick_seconds=0.02, duration_seconds=1.0)
        assert config.total_ticks == 50

    def test_warmup_ticks(self):
        config = SimulationConfig(
            tick_seconds=0.02, duration_seconds=1.0, warmup_seconds=0.2
        )
        assert config.warmup_ticks == 10

    def test_with_seed_copies(self):
        config = SimulationConfig(seed=1)
        other = config.with_seed(2)
        assert other.seed == 2
        assert config.seed == 1
        assert other.duration_seconds == config.duration_seconds

    def test_with_duration_copies(self):
        other = SimulationConfig().with_duration(30.0)
        assert other.duration_seconds == pytest.approx(30.0)

    def test_with_label(self):
        assert SimulationConfig().with_label("x").label == "x"

    def test_short_session_helper(self):
        config = short_session(seconds=3.0, seed=9)
        assert config.duration_seconds == pytest.approx(3.0)
        assert config.seed == 9

    def test_frozen(self):
        with pytest.raises(Exception):
            SimulationConfig().seed = 5
