"""Compiler: Scenario -> SessionSpec, legacy parity, and the wiring gate."""

import json
import re
from pathlib import Path

import pytest

from repro.config import SimulationConfig
from repro.errors import RegistryError, ScenarioError
from repro.runner.cache import summary_to_dict
from repro.runner.runner import SessionRunner
from repro.runner.spec import FactoryRef, SessionSpec
from repro.scenario import (
    Scenario,
    ScenarioMatrix,
    compile_matrix,
    compile_scenario,
    load_scenarios,
    run_scenarios,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
PAPER_EVAL = REPO_ROOT / "examples" / "scenarios" / "paper_eval.json"

SHORT = SimulationConfig(duration_seconds=5.0, seed=1, warmup_seconds=1.0)


class TestCompile:
    def test_compiled_spec_is_portable_and_named_by_catalog_key(self):
        spec = compile_scenario(Scenario(policy="mobicore"))
        assert spec.is_portable
        # Platform stays the catalog name string, keeping compiled specs
        # on the same cache addresses as hand-wired ones.
        assert spec.platform == "Nexus 5"

    def test_pass_platform_policy_receives_the_scenario_platform(self):
        spec = compile_scenario(Scenario(policy="mobicore", platform="Nexus 4"))
        assert ("platform", "Nexus 4") in spec.policy.kwargs

    def test_explicit_policy_param_beats_platform_injection(self):
        spec = compile_scenario(
            Scenario(
                policy="mobicore",
                platform="Nexus 4",
                policy_params={"platform": "LG G3"},
            )
        )
        assert ("platform", "LG G3") in spec.policy.kwargs

    def test_default_label_names_the_grid_point(self):
        spec = compile_scenario(Scenario(workload="geekbench", policy="mobicore"))
        assert spec.label == "geekbench/mobicore@0"
        labelled = compile_scenario(Scenario(label="mine"))
        assert labelled.label == "mine"

    def test_unknown_names_raise_registry_errors(self):
        with pytest.raises(RegistryError, match="unknown platform"):
            compile_scenario(Scenario(platform="Pixel 9"))
        with pytest.raises(RegistryError, match="unknown policy"):
            compile_scenario(Scenario(policy="nope"))
        with pytest.raises(RegistryError, match="unknown workload"):
            compile_scenario(Scenario(workload="nope"))

    def test_compile_matrix_preserves_expansion_order(self):
        matrix = ScenarioMatrix(axes={"seed": [1, 2]})
        specs = compile_matrix(matrix)
        assert [spec.config.seed for spec in specs] == [1, 2]

    def test_non_scenario_inputs_are_typed_errors(self):
        with pytest.raises(ScenarioError, match="expected a Scenario"):
            compile_scenario("not a scenario")
        with pytest.raises(ScenarioError, match="expected a ScenarioMatrix"):
            compile_matrix("not a matrix")


class TestLegacyParity:
    """The declarative path reproduces hand-wired specs bit-identically."""

    def test_game_summary_matches_hand_wired_spec(self):
        legacy = SessionSpec(
            platform="Nexus 5",
            policy=FactoryRef.to("repro.experiments.common:mobicore_factory"),
            workload=FactoryRef.to("repro.workloads.games:game_workload", "Badland"),
            config=SHORT,
            pin_uncore_max=True,
        )
        declarative = compile_scenario(
            Scenario(platform="Nexus 5", policy="mobicore", workload="game:badland",
                     config=SHORT)
        )
        runner = SessionRunner(jobs=1)
        a, b = runner.run([legacy, declarative])
        assert summary_to_dict(a) == summary_to_dict(b)

    def test_baseline_summary_matches_hand_wired_spec(self):
        legacy = SessionSpec(
            platform="Nexus 5",
            policy=FactoryRef.to("repro.experiments.common:android_factory"),
            workload=FactoryRef.to(
                "repro.workloads.busyloop:BusyLoopApp", 40.0
            ),
            config=SHORT,
            pin_uncore_max=False,
        )
        declarative = compile_scenario(
            Scenario(
                workload="busyloop",
                workload_params={"target_load_percent": 40.0},
                config=SHORT,
                pin_uncore_max=False,
            )
        )
        runner = SessionRunner(jobs=1)
        a, b = runner.run([legacy, declarative])
        assert summary_to_dict(a) == summary_to_dict(b)

    def test_run_scenarios_accepts_scenario_matrix_and_iterable(self):
        runner = SessionRunner(jobs=1)
        single = Scenario(config=SHORT)
        assert len(run_scenarios(single, runner=runner)) == 1
        matrix = ScenarioMatrix(base=single, axes={"seed": [1, 2]})
        assert len(run_scenarios(matrix, runner=runner)) == 2
        assert len(run_scenarios(matrix.expand(), runner=runner)) == 2


class TestScenarioFiles:
    def test_load_scenarios_sniffs_single_documents(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(Scenario(policy="mobicore").to_json(), encoding="utf-8")
        scenarios = load_scenarios(path)
        assert len(scenarios) == 1
        assert scenarios[0].policy == "mobicore"

    def test_load_scenarios_expands_matrix_documents(self, tmp_path):
        path = tmp_path / "grid.json"
        matrix = ScenarioMatrix(axes={"seed": [1, 2, 3]})
        path.write_text(matrix.to_json(), encoding="utf-8")
        assert len(load_scenarios(path)) == 3

    def test_paper_eval_document_expands_to_the_evaluation_grid(self):
        scenarios = load_scenarios(PAPER_EVAL)
        # 5 games x 2 seeds x 2 policies, policy innermost.
        assert len(scenarios) == 20
        assert [s.policy for s in scenarios[:2]] == ["android-default", "mobicore"]
        games = {s.workload for s in scenarios}
        assert len(games) == 5
        for scenario in scenarios:
            scenario.validate()

    def test_paper_eval_matches_games_matrix_driver(self):
        """The committed document and the fig10-13 driver share a grid."""
        from repro.experiments.game_eval import games_matrix

        document = ScenarioMatrix.load(PAPER_EVAL)
        driver = games_matrix(seeds=(1, 2))
        doc_keys = [spec.cache_key() for spec in compile_matrix(document)]
        driver_keys = [spec.cache_key() for spec in compile_matrix(driver)]
        assert doc_keys == driver_keys


class TestNoInlineWiring:
    """Experiment/analysis/CLI modules must wire through the registries."""

    def test_no_factory_ref_construction_outside_the_scenario_layer(self):
        pattern = re.compile(r"FactoryRef(\.to)?\s*\(")
        offenders = []
        src = REPO_ROOT / "src" / "repro"
        for module in (
            *sorted((src / "experiments").glob("*.py")),
            *sorted((src / "analysis").glob("*.py")),
            src / "cli.py",
        ):
            if pattern.search(module.read_text(encoding="utf-8")):
                offenders.append(str(module.relative_to(REPO_ROOT)))
        assert offenders == []
