"""ScenarioMatrix: expansion order, axis vocabulary, JSON round trips."""

import pytest

from repro.errors import ScenarioError
from repro.scenario import Scenario, ScenarioMatrix


def eval_matrix():
    return ScenarioMatrix(
        base=Scenario(workload="game", policy="android-default"),
        axes=(
            ("workload", ("game:badland", "game:asphalt8")),
            ("seed", (1, 2)),
            ("policy", ("android-default", "mobicore")),
        ),
    )


class TestExpansion:
    def test_size_is_the_axis_product(self):
        matrix = eval_matrix()
        assert len(matrix) == 8
        assert len(matrix.expand()) == 8

    def test_last_axis_varies_fastest(self):
        scenarios = eval_matrix().expand()
        # Policy innermost: baseline/candidate adjacent for each (game, seed).
        assert [s.policy for s in scenarios[:4]] == [
            "android-default", "mobicore", "android-default", "mobicore",
        ]
        assert [s.config.seed for s in scenarios[:4]] == [1, 1, 2, 2]
        assert all(s.workload == "game:badland" for s in scenarios[:4])
        assert all(s.workload == "game:asphalt8" for s in scenarios[4:])

    def test_config_axis_sets_the_field(self):
        matrix = ScenarioMatrix(axes={"config.duration_seconds": [5.0, 10.0]})
        durations = [s.config.duration_seconds for s in matrix.expand()]
        assert durations == [5.0, 10.0]

    def test_params_axes_merge_over_base_params(self):
        matrix = ScenarioMatrix(
            base=Scenario(workload_params={"num_threads": 2}),
            axes={"workload_params.target_load_percent": [10.0, 20.0]},
        )
        expanded = matrix.expand()
        assert expanded[0].workload_params == (
            ("num_threads", 2), ("target_load_percent", 10.0),
        )
        assert expanded[1].workload_params[1] == ("target_load_percent", 20.0)

    def test_seed_axis_requires_integers(self):
        matrix = ScenarioMatrix(axes={"seed": ["one"]})
        with pytest.raises(ScenarioError, match="must be integers"):
            matrix.expand()

    def test_unknown_axis_rejected_at_construction(self):
        with pytest.raises(ScenarioError, match="unknown axis 'policyy'"):
            ScenarioMatrix(axes={"policyy": ["mobicore"]})

    def test_unknown_config_axis_lists_fields(self):
        with pytest.raises(ScenarioError, match="unknown config axis"):
            ScenarioMatrix(axes={"config.durationn": [5.0]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError, match="has no values"):
            ScenarioMatrix(axes={"seed": []})

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate axis"):
            ScenarioMatrix(axes=(("seed", (1,)), ("seed", (2,))))


class TestRoundTrip:
    def test_json_round_trip_preserves_axes_and_order(self):
        matrix = eval_matrix()
        again = ScenarioMatrix.from_json(matrix.to_json())
        assert again == matrix
        assert [s.describe() for s in again.expand()] == [
            s.describe() for s in matrix.expand()
        ]

    def test_axes_accept_json_object_spelling(self):
        matrix = ScenarioMatrix.from_payload(
            {"base": {}, "axes": {"seed": [1, 2], "policy": ["android-default"]}}
        )
        assert [name for name, _ in matrix.axes] == ["seed", "policy"]

    def test_unknown_matrix_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown matrix field"):
            ScenarioMatrix.from_payload({"base": {}, "grid": {}})

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            ScenarioMatrix.load(tmp_path / "missing.json")
