"""Registry semantics: registration, lookup errors, ref building."""

import pytest

from repro.errors import RegistryError, ReproError, ScenarioError
from repro.runner.spec import FactoryRef
from repro.scenario import (
    PLATFORM_REGISTRY,
    POLICY_REGISTRY,
    WORKLOAD_REGISTRY,
    Registry,
    game_key,
    policy_ref,
    workload_ref,
)


def sample_factory():
    """A module-level factory for decorator tests."""
    return object()


class TestRegistration:
    def test_duplicate_name_raises_typed_error(self):
        registry = Registry("policy")
        registry.add("x", "tests.scenario.test_registry:sample_factory")
        with pytest.raises(RegistryError, match="already registered"):
            registry.add("x", "tests.scenario.test_registry:sample_factory")

    def test_empty_name_rejected(self):
        registry = Registry("policy")
        with pytest.raises(RegistryError, match="non-empty"):
            registry.add("", "tests.scenario.test_registry:sample_factory")

    def test_malformed_target_rejected_at_registration(self):
        registry = Registry("workload")
        with pytest.raises(ReproError):
            registry.add("bad", "no-colon-here")

    def test_decorator_derives_importable_target(self):
        registry = Registry("workload")
        decorated = registry.register("sample")(sample_factory)
        assert decorated is sample_factory
        entry = registry.get("sample")
        assert entry.target == "tests.scenario.test_registry:sample_factory"
        assert entry.ref().resolve() is not None

    def test_decorator_rejects_nested_callables(self):
        registry = Registry("policy")

        def nested():
            pass

        with pytest.raises(RegistryError, match="module-level"):
            registry.register("nested")(nested)

    def test_decorator_summary_defaults_to_docstring(self):
        registry = Registry("workload")
        registry.register("sample")(sample_factory)
        assert "module-level factory" in registry.get("sample").summary


class TestLookup:
    def test_unknown_name_lists_known_keys(self):
        with pytest.raises(RegistryError, match="unknown policy 'nope'") as excinfo:
            POLICY_REGISTRY.get("nope")
        # Matches the create_governor error style: name + available keys.
        assert "available:" in str(excinfo.value)
        assert "mobicore" in str(excinfo.value)

    def test_registry_errors_are_scenario_and_repro_errors(self):
        with pytest.raises(ScenarioError):
            WORKLOAD_REGISTRY.get("nope")
        with pytest.raises(ReproError):
            WORKLOAD_REGISTRY.get("nope")

    def test_membership_and_iteration(self):
        assert "mobicore" in POLICY_REGISTRY
        assert "nope" not in POLICY_REGISTRY
        assert list(POLICY_REGISTRY) == list(POLICY_REGISTRY.names())
        assert len(POLICY_REGISTRY) == len(POLICY_REGISTRY.names())


class TestBuiltins:
    def test_expected_policy_keys_registered(self):
        for name in ("android-default", "mobicore", "static", "dvfs-only",
                     "dcs-only", "race-to-idle"):
            assert name in POLICY_REGISTRY

    def test_expected_workload_keys_registered(self):
        for name in ("busyloop", "geekbench", "game", "game:asphalt8"):
            assert name in WORKLOAD_REGISTRY

    def test_platform_keys_match_phone_catalog(self):
        from repro.soc.catalog import HETERO_CATALOG, PHONE_CATALOG

        # The Fig. 1 fleet first, then the big.LITTLE boards.
        assert PLATFORM_REGISTRY.names() == (
            tuple(PHONE_CATALOG) + tuple(HETERO_CATALOG)
        )

    def test_game_key_slugs_titles(self):
        assert game_key("Asphalt 8") == "game:asphalt8"
        assert game_key("Real Racing 3") == "game:realracing3"

    def test_game_alias_builds_the_titled_workload(self):
        workload = WORKLOAD_REGISTRY.ref("game:badland").resolve()
        assert workload.name == WORKLOAD_REGISTRY.ref(
            "game", title="Badland"
        ).resolve().name

    def test_refs_are_portable_factory_refs(self):
        ref = workload_ref("busyloop", target_load_percent=30.0)
        assert isinstance(ref, FactoryRef)
        assert ref.kwargs == (("target_load_percent", 30.0),)

    def test_policy_ref_injects_platform_when_asked(self):
        ref = policy_ref("mobicore", platform="Nexus 4")
        assert ("platform", "Nexus 4") in ref.kwargs
        # Non-calibrated policies never receive the platform kwarg.
        plain = policy_ref("android-default", platform="Nexus 4")
        assert plain.kwargs == ()

    def test_platform_keyword_binds_like_a_param(self):
        ref = policy_ref("mobicore", **{"platform": "LG G3"})
        assert ("platform", "LG G3") in ref.kwargs
