"""Scenario documents: schema validation, JSON round trips, cache identity."""

import pytest

from repro.config import SimulationConfig
from repro.errors import RegistryError, ScenarioError
from repro.faults import FaultPlan, ThermalThrottleFault
from repro.runner.spec import TraceRequest
from repro.scenario import (
    PLATFORM_REGISTRY,
    POLICY_REGISTRY,
    WORKLOAD_REGISTRY,
    Scenario,
)

#: Required factory params for entries whose factories have no defaults.
REQUIRED_POLICY_PARAMS = {"static": {"online_count": 2, "frequency_khz": 960_000}}
REQUIRED_WORKLOAD_PARAMS = {"game": {"title": "Badland"}}


class TestSchema:
    def test_defaults_build_a_valid_scenario(self):
        scenario = Scenario()
        scenario.validate()
        assert scenario.policy == "android-default"

    def test_non_string_component_rejected(self):
        with pytest.raises(ScenarioError, match="'policy' must be a string"):
            Scenario(policy=3)

    def test_empty_component_rejected(self):
        with pytest.raises(ScenarioError, match="non-empty"):
            Scenario(workload="")

    def test_params_accept_mappings_and_normalise_order(self):
        a = Scenario(workload_params={"b": 1, "a": 2})
        b = Scenario(workload_params=(("a", 2), ("b", 1)))
        assert a == b
        assert a.workload_params == (("a", 2), ("b", 1))

    def test_duplicate_param_names_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate parameter"):
            Scenario(policy_params=(("x", 1), ("x", 2)))

    def test_non_primitive_param_rejected(self):
        with pytest.raises(ScenarioError, match="JSON primitives"):
            Scenario(workload_params={"x": object()})

    def test_bad_config_type_rejected(self):
        with pytest.raises(ScenarioError, match="SimulationConfig"):
            Scenario(config={"duration_seconds": 5.0})

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario field"):
            Scenario.from_payload({"policyy": "mobicore"})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown config field"):
            Scenario.from_payload({"config": {"durationn": 5.0}})

    def test_unknown_trace_field_rejected(self):
        with pytest.raises(ScenarioError, match="unknown trace field"):
            Scenario.from_payload({"trace": {"ring": 10}})

    def test_invalid_json_is_typed(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            Scenario.from_json("{nope")

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            Scenario.load(tmp_path / "missing.json")

    def test_unknown_names_surface_at_validate_not_construction(self):
        scenario = Scenario(policy="not-a-policy")
        with pytest.raises(RegistryError, match="unknown policy"):
            scenario.validate()


class TestRoundTrip:
    def full_scenario(self):
        return Scenario(
            platform="Nexus 4",
            policy="mobicore",
            workload="busyloop",
            policy_params={"use_dcs": False},
            workload_params={"target_load_percent": 35.0},
            config=SimulationConfig(duration_seconds=8.0, seed=3, warmup_seconds=1.0),
            pin_uncore_max=False,
            label="round-trip",
            trace=TraceRequest(categories=("policy",), ring_capacity=64),
            faults=FaultPlan.of(
                ThermalThrottleFault(at_seconds=2.0, duration_seconds=1.0)
            ),
        )

    def test_full_scenario_round_trips(self):
        scenario = self.full_scenario()
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario

    def test_file_round_trip(self, tmp_path):
        scenario = self.full_scenario()
        path = tmp_path / "scenario.json"
        path.write_text(scenario.to_json(), encoding="utf-8")
        assert Scenario.load(path) == scenario

    def test_with_seed_derives_a_sibling(self):
        scenario = Scenario().with_seed(7)
        assert scenario.config.seed == 7
        assert Scenario().config.seed == 0

    def test_describe_names_the_grid_point(self):
        text = self.full_scenario().describe()
        assert "busyloop" in text and "mobicore" in text and "seed=3" in text


class TestCacheIdentity:
    """Every registered name survives Scenario -> JSON -> Scenario -> spec."""

    @pytest.mark.parametrize("policy", POLICY_REGISTRY.names())
    def test_policy_names_round_trip_to_same_cache_key(self, policy):
        scenario = Scenario(
            policy=policy, policy_params=REQUIRED_POLICY_PARAMS.get(policy, {})
        )
        direct = scenario.compile()
        again = Scenario.from_json(scenario.to_json()).compile()
        assert again.cache_key() == direct.cache_key()

    @pytest.mark.parametrize("workload", WORKLOAD_REGISTRY.names())
    def test_workload_names_round_trip_to_same_cache_key(self, workload):
        scenario = Scenario(
            workload=workload,
            workload_params=REQUIRED_WORKLOAD_PARAMS.get(workload, {}),
        )
        direct = scenario.compile()
        again = Scenario.from_json(scenario.to_json()).compile()
        assert again.cache_key() == direct.cache_key()

    @pytest.mark.parametrize("platform", PLATFORM_REGISTRY.names())
    def test_platform_names_round_trip_to_same_cache_key(self, platform):
        scenario = Scenario(platform=platform, policy="mobicore")
        direct = scenario.compile()
        again = Scenario.from_json(scenario.to_json()).compile()
        assert again.cache_key() == direct.cache_key()

    def test_param_order_does_not_change_cache_key(self):
        a = Scenario(workload_params={"num_threads": 2, "target_load_percent": 30.0})
        b = Scenario(workload_params={"target_load_percent": 30.0, "num_threads": 2})
        assert a.compile().cache_key() == b.compile().cache_key()

    def test_label_is_not_part_of_the_cache_key(self):
        plain = Scenario().compile()
        labelled = Scenario(label="tagged").compile()
        assert labelled.cache_key() == plain.cache_key()

    def test_faults_fork_the_cache_key(self):
        plan = FaultPlan.of(ThermalThrottleFault(at_seconds=1.0, duration_seconds=1.0))
        clean = Scenario().compile()
        faulted = Scenario(faults=plan).compile()
        assert faulted.cache_key() != clean.cache_key()
