"""The sysfs control plane over a live simulator."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.kernel.android_shell import build_sysfs
from repro.kernel.simulator import Simulator
from repro.policies.static import StaticPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.synthetic import ConstantWorkload


@pytest.fixture
def shell():
    platform = Platform.from_spec(nexus5_spec())
    simulator = Simulator(
        platform,
        ConstantWorkload(20.0),
        StaticPolicy(4, 960_000),
        SimulationConfig(duration_seconds=2.0),
        pin_uncore_max=False,
    )
    return simulator, build_sysfs(simulator)


class TestReads:
    def test_online_and_frequency(self, shell):
        simulator, tree = shell
        assert tree.read("/sys/devices/system/cpu/cpu0/online") == "1"
        simulator.platform.cluster.core(1).set_frequency(960_000)
        assert (
            tree.read("/sys/devices/system/cpu/cpu1/cpufreq/scaling_cur_freq")
            == "960000"
        )

    def test_thermal_millidegrees(self, shell):
        _, tree = shell
        assert tree.read("/sys/class/thermal/thermal_zone0/temp") == "24000"

    def test_quota_view(self, shell):
        simulator, tree = shell
        simulator.bandwidth.set_quota(0.9)
        assert tree.read("/sys/fs/cgroup/cpu/cpu.cfs_quota_us") == "90000"

    def test_path_listing(self, shell):
        _, tree = shell
        cpu0 = tree.list("sys/devices/system/cpu/cpu0")
        assert "/sys/devices/system/cpu/cpu0/online" in cpu0
        assert len(cpu0) == 5


class TestWrites:
    def test_offline_a_core(self, shell):
        simulator, tree = shell
        simulator.hotplug.set_mpdecision(False)
        tree.write("/sys/devices/system/cpu/cpu3/online", "0")
        assert not simulator.platform.cluster.core(3).is_online

    def test_mpdecision_blocks_offline_until_disabled(self, shell):
        """The paper's adb-shell sequence: disable mpdecision first."""
        simulator, tree = shell
        simulator.hotplug.set_mpdecision(True)
        tree.write("/sys/devices/system/cpu/cpu3/online", "0")
        assert simulator.platform.cluster.core(3).is_online  # vetoed
        tree.write("/sys/module/mpdecision/enabled", "0")
        tree.write("/sys/devices/system/cpu/cpu3/online", "0")
        assert not simulator.platform.cluster.core(3).is_online

    def test_setspeed_quantises(self, shell):
        simulator, tree = shell
        tree.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "961000")
        assert simulator.platform.cluster.core(0).frequency_khz == 1_036_800

    def test_scaling_limits(self, shell):
        simulator, tree = shell
        tree.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq", "960000")
        tree.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "2265600")
        assert simulator.platform.cluster.core(0).frequency_khz == 960_000

    def test_quota_write(self, shell):
        simulator, tree = shell
        tree.write("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", "80000")
        assert simulator.bandwidth.quota == pytest.approx(0.8)

    def test_bad_boolean_rejected(self, shell):
        _, tree = shell
        with pytest.raises(ConfigError):
            tree.write("/sys/devices/system/cpu/cpu1/online", "maybe")

    def test_read_only_paths(self, shell):
        _, tree = shell
        with pytest.raises(ConfigError):
            tree.write("/sys/class/thermal/thermal_zone0/temp", "0")
        with pytest.raises(ConfigError):
            tree.write("/proc/stat/global_util", "0")


class TestSessionInteraction:
    def test_shell_settings_survive_a_static_session(self, shell):
        """Writes then a session: the static policy re-pins, but the
        run executes with the shell's quota in effect initially."""
        simulator, tree = shell
        tree.write("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", "85000")
        result = simulator.run()  # run() resets the controller to 1.0
        assert result.mean_power_mw > 0
        assert simulator.bandwidth.quota == 1.0
