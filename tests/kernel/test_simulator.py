"""The tick-loop simulator: wiring, determinism, and session results."""

import pytest

from repro.config import SimulationConfig
from repro.kernel.simulator import Simulator
from repro.policies.android_default import AndroidDefaultPolicy
from repro.policies.static import StaticPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.synthetic import ConstantWorkload


def run(policy, workload, config, pin=False):
    platform = Platform.from_spec(nexus5_spec())
    return Simulator(platform, workload, policy, config, pin_uncore_max=pin).run()


class TestSessionShape:
    def test_trace_length_matches_config(self, short_config):
        result = run(StaticPolicy(4, 300_000), ConstantWorkload(10.0), short_config)
        assert len(result.trace) == short_config.total_ticks

    def test_identification_fields(self, short_config):
        result = run(StaticPolicy(4, 300_000), BusyLoopApp(10.0), short_config)
        assert result.platform_name == "Nexus 5"
        assert result.policy_name.startswith("static")
        assert result.workload_name.startswith("busyloop")

    def test_metrics_present(self, short_config):
        result = run(StaticPolicy(4, 300_000), BusyLoopApp(10.0), short_config)
        assert result.workload_metrics["executed_cycles"] > 0


class TestStaticPolicyBehaviour:
    def test_static_point_applied(self, short_config):
        result = run(StaticPolicy(2, 960_000), ConstantWorkload(10.0), short_config)
        assert result.mean_online_cores == pytest.approx(2.0, abs=0.1)
        assert result.mean_frequency_khz == pytest.approx(960_000, abs=5000)

    def test_idle_workload_power_floor(self, short_config):
        """An idle platform draws base + static + idle uncore only."""
        result = run(StaticPolicy(1, 300_000), ConstantWorkload(0.0), short_config)
        # base 330 + 1 core static 47 + gpu 40 + mem 30
        assert result.mean_power_mw == pytest.approx(447.0, abs=5.0)

    def test_full_stress_anchor(self, short_config):
        result = run(StaticPolicy(4, 2_265_600), BusyLoopApp(100.0), short_config)
        assert result.mean_power_mw == pytest.approx(2403.8, rel=0.01)


class TestDeterminism:
    def test_same_seed_same_result(self, short_config):
        a = run(AndroidDefaultPolicy(), BusyLoopApp(40.0), short_config)
        b = run(AndroidDefaultPolicy(), BusyLoopApp(40.0), short_config)
        assert a.mean_power_mw == b.mean_power_mw
        assert a.trace.to_csv() == b.trace.to_csv()

    def test_different_seed_differs_for_stochastic_load(self, short_config):
        from repro.workloads.games import game_workload

        a = run(AndroidDefaultPolicy(), game_workload("Subway Surf"), short_config)
        b = run(
            AndroidDefaultPolicy(),
            game_workload("Subway Surf"),
            short_config.with_seed(99),
        )
        assert a.mean_power_mw != b.mean_power_mw


class TestDynamicPolicy:
    def test_ondemand_tracks_load(self, short_config):
        low = run(AndroidDefaultPolicy(), BusyLoopApp(10.0), short_config)
        high = run(AndroidDefaultPolicy(), BusyLoopApp(90.0), short_config)
        assert high.mean_power_mw > low.mean_power_mw
        assert high.mean_frequency_khz > low.mean_frequency_khz

    def test_hotplug_offlines_at_low_load(self, short_config):
        result = run(AndroidDefaultPolicy(), BusyLoopApp(10.0), short_config)
        assert result.mean_online_cores < 3.0

    def test_transitions_counted(self, short_config):
        result = run(AndroidDefaultPolicy(), BusyLoopApp(40.0), short_config)
        assert result.dvfs_transitions > 0

    def test_pin_uncore_adds_power(self, short_config):
        unpinned = run(StaticPolicy(1, 300_000), ConstantWorkload(5.0), short_config)
        pinned = run(
            StaticPolicy(1, 300_000), ConstantWorkload(5.0), short_config, pin=True
        )
        assert pinned.mean_power_mw - unpinned.mean_power_mw == pytest.approx(
            800.0, abs=20.0
        )

    def test_energy_consistent_with_mean_power(self, short_config):
        result = run(StaticPolicy(4, 960_000), BusyLoopApp(50.0), short_config)
        measured_ticks = short_config.total_ticks - short_config.warmup_ticks
        expected = result.mean_power_mw * measured_ticks * short_config.tick_seconds
        assert result.energy_mj() == pytest.approx(expected, rel=1e-6)

    def test_simulator_reusable_after_run(self, short_config):
        platform = Platform.from_spec(nexus5_spec())
        sim = Simulator(
            platform, BusyLoopApp(30.0), AndroidDefaultPolicy(), short_config,
            pin_uncore_max=False,
        )
        first = sim.run()
        second = sim.run()
        assert first.mean_power_mw == pytest.approx(second.mean_power_mw)
