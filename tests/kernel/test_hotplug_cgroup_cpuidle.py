"""Hotplug mechanism, bandwidth controller, and cpuidle accounting."""

import pytest

from repro.errors import BandwidthError, HotplugError
from repro.kernel.cgroup import CpuBandwidthController
from repro.kernel.cpuidle import CpuidleStats
from repro.kernel.hotplug import HotplugSubsystem
from repro.soc.core_state import CoreState
from repro.soc.cpu_cluster import CpuCluster


@pytest.fixture
def cluster(opp_table):
    return CpuCluster(4, opp_table)


class TestHotplugSubsystem:
    def test_apply_mask_without_mpdecision(self, cluster):
        hotplug = HotplugSubsystem(cluster, mpdecision_enabled=False)
        effective = hotplug.apply_mask([True, True, False, False])
        assert effective == [True, True, False, False]

    def test_mpdecision_vetoes_offline(self, cluster):
        """Section 2.2.2: mpdecision protects the phone from offlining."""
        hotplug = HotplugSubsystem(cluster, mpdecision_enabled=True)
        effective = hotplug.apply_mask([True, False, False, False])
        assert effective == [True, True, True, True]
        assert hotplug.vetoed_offline_requests == 3

    def test_mpdecision_allows_onlining(self, cluster):
        hotplug = HotplugSubsystem(cluster, mpdecision_enabled=False)
        hotplug.apply_mask([True, False, False, False])
        hotplug.set_mpdecision(True)
        effective = hotplug.apply_mask([True, True, True, True])
        assert effective == [True, True, True, True]

    def test_disable_mpdecision_enables_dcs(self, cluster):
        """The paper's adb-shell step: disable mpdecision, then offline."""
        hotplug = HotplugSubsystem(cluster, mpdecision_enabled=True)
        hotplug.apply_mask([True, False, False, False])
        assert cluster.online_count == 4
        hotplug.set_mpdecision(False)
        hotplug.apply_mask([True, False, False, False])
        assert cluster.online_count == 1

    def test_apply_count(self, cluster):
        hotplug = HotplugSubsystem(cluster, mpdecision_enabled=False)
        hotplug.apply_count(3)
        assert cluster.online_count == 3
        with pytest.raises(HotplugError):
            hotplug.apply_count(0)

    def test_latency_accumulates(self, cluster):
        hotplug = HotplugSubsystem(cluster, mpdecision_enabled=False)
        hotplug.apply_count(1)
        hotplug.apply_count(4)
        assert hotplug.transition_latency_seconds > 0.0
        assert hotplug.transition_count == 6

    def test_wrong_mask_length(self, cluster):
        hotplug = HotplugSubsystem(cluster)
        with pytest.raises(HotplugError):
            hotplug.apply_mask([True])


class TestBandwidthController:
    def test_full_quota_by_default(self):
        assert CpuBandwidthController().quota == 1.0

    def test_set_and_clamp_to_floor(self):
        controller = CpuBandwidthController(min_quota=0.5)
        assert controller.set_quota(0.75) == pytest.approx(0.75)
        assert controller.set_quota(0.2) == pytest.approx(0.5)

    def test_illegal_quota_rejected(self):
        controller = CpuBandwidthController()
        with pytest.raises(BandwidthError):
            controller.set_quota(0.0)
        with pytest.raises(BandwidthError):
            controller.set_quota(1.5)

    def test_quota_us_view(self):
        controller = CpuBandwidthController(period_us=100_000)
        controller.set_quota(0.9)
        assert controller.quota_us == 90_000

    def test_update_count(self):
        controller = CpuBandwidthController()
        controller.set_quota(0.9)
        controller.set_quota(0.9)
        controller.expand_full()
        assert controller.update_count == 2

    def test_reset(self):
        controller = CpuBandwidthController()
        controller.set_quota(0.5)
        controller.reset()
        assert controller.quota == 1.0
        assert controller.update_count == 0


class TestCpuidleStats:
    def test_partial_busy_splits_residency(self, cluster):
        stats = CpuidleStats(4)
        cluster.core(0).account(0.25)
        stats.record(cluster, 1.0)
        assert stats.residency_seconds(0, CoreState.ACTIVE) == pytest.approx(0.25)
        assert stats.residency_seconds(0, CoreState.IDLE) == pytest.approx(0.75)

    def test_offline_residency(self, cluster):
        stats = CpuidleStats(4)
        cluster.set_online_count(2)
        stats.record(cluster, 2.0)
        assert stats.residency_seconds(3, CoreState.OFFLINE) == pytest.approx(2.0)
        assert stats.residency_fraction(3, CoreState.OFFLINE) == pytest.approx(1.0)

    def test_fleet_fraction(self, cluster):
        stats = CpuidleStats(4)
        cluster.set_online_count(2)
        stats.record(cluster, 1.0)
        assert stats.fleet_fraction(CoreState.OFFLINE) == pytest.approx(0.5)

    def test_size_mismatch_rejected(self, cluster):
        stats = CpuidleStats(2)
        with pytest.raises(Exception):
            stats.record(cluster, 1.0)

    def test_reset(self, cluster):
        stats = CpuidleStats(4)
        stats.record(cluster, 1.0)
        stats.reset()
        assert stats.total_seconds == 0.0
        assert stats.fleet_fraction(CoreState.IDLE) == 0.0
