"""Utilization accounting and the delta signal."""

import pytest

from repro.errors import MeterError
from repro.kernel.procstat import ProcStat, TickUtilization


class TestTickUtilization:
    def test_global_averages_online_only(self):
        snapshot = TickUtilization(
            tick=0,
            per_core_percent=(100.0, 50.0, 0.0, 0.0),
            online_mask=(True, True, False, False),
        )
        assert snapshot.global_percent == pytest.approx(75.0)
        assert snapshot.online_count == 2

    def test_all_offline_is_zero(self):
        snapshot = TickUtilization(0, (0.0,), (False,))
        assert snapshot.global_percent == 0.0


class TestProcStat:
    def test_record_and_latest(self):
        stat = ProcStat()
        stat.record(0, [10.0, 20.0], [True, True])
        assert stat.latest.global_percent == pytest.approx(15.0)
        assert stat.previous is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MeterError):
            ProcStat().record(0, [10.0], [True, True])

    def test_out_of_range_percent_rejected(self):
        with pytest.raises(Exception):
            ProcStat().record(0, [120.0], [True])

    def test_delta_between_last_two(self):
        stat = ProcStat()
        stat.record(0, [20.0], [True])
        stat.record(1, [35.0], [True])
        assert stat.delta_global_percent() == pytest.approx(15.0)

    def test_delta_zero_before_two_ticks(self):
        stat = ProcStat()
        assert stat.delta_global_percent() == 0.0
        stat.record(0, [20.0], [True])
        assert stat.delta_global_percent() == 0.0

    def test_mean_over_window(self):
        stat = ProcStat()
        for tick, level in enumerate([10.0, 20.0, 30.0, 40.0]):
            stat.record(tick, [level], [True])
        assert stat.mean_global_percent() == pytest.approx(25.0)
        assert stat.mean_global_percent(last_n=2) == pytest.approx(35.0)

    def test_history_bounded(self):
        stat = ProcStat(history_limit=4)
        for tick in range(10):
            stat.record(tick, [10.0], [True])
        assert stat.latest.tick == 9
        assert stat.mean_global_percent() == pytest.approx(10.0)

    def test_tiny_history_rejected(self):
        with pytest.raises(MeterError):
            ProcStat(history_limit=1)

    def test_reset(self):
        stat = ProcStat()
        stat.record(0, [10.0], [True])
        stat.reset()
        assert stat.latest is None
        assert stat.mean_global_percent() == 0.0
