"""The sysfs knob tree and the trace recorder."""

import pytest

from repro.errors import ConfigError, TraceError
from repro.kernel.sysfs import SysfsTree
from repro.kernel.tracing import TickRecord, TraceRecorder


def record(tick, power=1000.0, fps=None, online=(True, True, True, True)):
    return TickRecord(
        tick=tick,
        time_seconds=tick * 0.02,
        frequencies_khz=(300_000, 960_000, 960_000, 2_265_600),
        online_mask=online,
        busy_fractions=(0.5, 0.5, 0.0, 1.0),
        global_util_percent=50.0,
        quota=0.9,
        power_mw=power,
        cpu_power_mw=power * 0.6,
        temperature_c=30.0,
        fps=fps,
        scaled_load_percent=40.0,
    )


class TestSysfs:
    def test_register_read(self):
        tree = SysfsTree()
        tree.register("sys/devices/cpu/cpu0/cpufreq/scaling_cur_freq", lambda: 300000)
        assert tree.read("/sys/devices/cpu/cpu0/cpufreq/scaling_cur_freq") == "300000"

    def test_write_through_setter(self):
        tree = SysfsTree()
        box = {"governor": "ondemand"}
        tree.register(
            "cpufreq/scaling_governor",
            lambda: box["governor"],
            lambda value: box.__setitem__("governor", value),
        )
        tree.write("cpufreq/scaling_governor", "userspace")
        assert box["governor"] == "userspace"

    def test_read_only_write_rejected(self):
        tree = SysfsTree()
        tree.register("a/b", lambda: 1)
        with pytest.raises(ConfigError):
            tree.write("a/b", "2")

    def test_unknown_path_rejected(self):
        tree = SysfsTree()
        with pytest.raises(ConfigError):
            tree.read("nope")

    def test_duplicate_registration_rejected(self):
        tree = SysfsTree()
        tree.register("a", lambda: 1)
        with pytest.raises(ConfigError):
            tree.register("a", lambda: 2)

    def test_list_prefix(self):
        tree = SysfsTree()
        tree.register("cpu/cpu0/online", lambda: 1)
        tree.register("cpu/cpu1/online", lambda: 1)
        tree.register("other", lambda: 1)
        assert tree.list("cpu") == ["/cpu/cpu0/online", "/cpu/cpu1/online"]
        assert len(tree.list()) == 3

    def test_iteration_matches_list(self):
        tree = SysfsTree()
        tree.register("b/two", lambda: 2)
        tree.register("a/one", lambda: 1, lambda value: None)
        assert list(tree) == ["/a/one", "/b/two"]
        assert len(tree) == 2
        assert all(tree.read(path) in ("1", "2") for path in tree)

    def test_contains(self):
        tree = SysfsTree()
        tree.register("cpu/cpu0/online", lambda: 1)
        assert "cpu/cpu0/online" in tree
        assert "/cpu/cpu0/online" in tree  # normalised like read()
        assert "cpu/cpu1/online" not in tree
        assert 42 not in tree
        assert "" not in tree

    def test_is_writable(self):
        tree = SysfsTree()
        tree.register("ro", lambda: 1)
        tree.register("rw", lambda: 1, lambda value: None)
        assert not tree.is_writable("ro")
        assert tree.is_writable("rw")
        with pytest.raises(ConfigError):
            tree.is_writable("missing")


class TestTickRecord:
    def test_online_count_and_mean_freq(self):
        r = record(0, online=(True, True, False, False))
        assert r.online_count == 2
        assert r.mean_online_frequency_khz == pytest.approx((300_000 + 960_000) / 2)


class TestTraceRecorder:
    def test_appends_in_order(self):
        trace = TraceRecorder()
        trace.append(record(0))
        trace.append(record(1))
        with pytest.raises(TraceError):
            trace.append(record(1))

    def test_warmup_excluded_from_summaries(self):
        trace = TraceRecorder(warmup_ticks=1)
        trace.append(record(0, power=9999.0))
        trace.append(record(1, power=1000.0))
        trace.append(record(2, power=2000.0))
        assert trace.mean_power_mw() == pytest.approx(1500.0)
        assert len(trace.records) == 3
        assert len(trace.measured) == 2

    def test_summary_requires_measured_ticks(self):
        trace = TraceRecorder(warmup_ticks=5)
        trace.append(record(0))
        with pytest.raises(TraceError):
            trace.mean_power_mw()

    def test_means(self):
        trace = TraceRecorder()
        trace.append(record(0, power=1000.0, fps=20.0))
        trace.append(record(1, power=2000.0, fps=10.0))
        assert trace.mean_power_mw() == pytest.approx(1500.0)
        assert trace.mean_fps() == pytest.approx(15.0)
        assert trace.mean_online_cores() == pytest.approx(4.0)
        assert trace.mean_quota() == pytest.approx(0.9)
        assert trace.mean_global_util_percent() == pytest.approx(50.0)
        assert trace.mean_scaled_load_percent() == pytest.approx(40.0)

    def test_fps_none_when_absent(self):
        trace = TraceRecorder()
        trace.append(record(0, fps=None))
        assert trace.mean_fps() is None

    def test_energy(self):
        trace = TraceRecorder()
        trace.append(record(0, power=1000.0))
        trace.append(record(1, power=1000.0))
        assert trace.energy_mj(0.02) == pytest.approx(40.0)

    def test_energy_contract_mean_power_times_duration(self):
        # The documented contract: energy integrates measured (post-warmup)
        # ticks only, each spanning tick_seconds, so it must equal
        # mean_power_mw * measured duration exactly.
        dt = 0.02
        trace = TraceRecorder(warmup_ticks=2)
        for tick, power in enumerate([9000.0, 8000.0, 1000.0, 2000.0, 3000.0]):
            trace.append(record(tick, power=power))
        measured_seconds = len(trace.measured) * dt
        assert trace.energy_mj(dt) == pytest.approx(
            trace.mean_power_mw() * measured_seconds
        )
        # Warmup power never leaks into the integral.
        assert trace.energy_mj(dt) == pytest.approx((1000 + 2000 + 3000) * dt)

    def test_csv_roundtrip_columns(self):
        trace = TraceRecorder()
        trace.append(record(0, fps=12.5))
        csv = trace.to_csv()
        header, row = csv.strip().splitlines()
        assert header.split(",")[0] == "tick"
        assert len(row.split(",")) == len(header.split(","))
        assert "12.50" in row

    def test_csv_roundtrip_includes_scaled_load(self):
        trace = TraceRecorder()
        trace.append(record(0, fps=12.5))
        trace.append(record(1))
        csv = trace.to_csv()
        lines = csv.strip().splitlines()
        header = lines[0].split(",")
        assert "scaled_load_pct" in header
        column = header.index("scaled_load_pct")
        # Round-trip: every record's scaled load survives export.
        for line, r in zip(lines[1:], trace.records):
            assert float(line.split(",")[column]) == pytest.approx(
                r.scaled_load_percent, abs=0.01
            )
