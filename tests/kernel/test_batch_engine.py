"""Scalar-vs-batched parity: the vectorized engine is bit-identical.

The scalar :class:`~repro.kernel.engine.Session` is the live oracle
(the same role ``_legacy_tracing`` plays for the columnar recorder): a
:class:`~repro.kernel.batch_engine.BatchSession` must reproduce its
:class:`~repro.metrics.summary.SessionSummary` exactly — ``==`` on every
field, floats bit for bit, per the contract in ``docs/NUMERICS.md`` —
for every registered policy x workload pair, whether the member
vectorizes or takes the internal scalar fallback.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.errors import BatchError
from repro.kernel.batch_engine import BatchSession, batch_compatibility_key
from repro.kernel.engine import Session
from repro.metrics.summary import summarize
from repro.runner.spec import SessionSpec, TraceRequest
from repro.faults import FaultPlan, ThermalThrottleFault
from repro.scenario import (
    POLICY_REGISTRY,
    WORKLOAD_REGISTRY,
    platform_ref,
    policy_ref,
    workload_ref,
)

PLATFORM = "Nexus 5"

#: Required factory parameters for entries without usable defaults.
POLICY_PARAMS = {"static": {"online_count": 2, "frequency_khz": 1_190_400}}
WORKLOAD_PARAMS = {"game": {"title": "Badland"}}

CONFIG = SimulationConfig(duration_seconds=2.0, seed=3, warmup_seconds=0.4)

PAIRS = [
    (policy, workload)
    for policy in POLICY_REGISTRY.names()
    for workload in WORKLOAD_REGISTRY.names()
]

#: Policies the vector program implements.  ``energy-aware`` is a
#: cross-frequency-domain placement policy and is scalar by design
#: (same deliberate fallback as multi-cluster platform specs).
VECTOR_POLICIES = [
    name for name in POLICY_REGISTRY.names() if name != "energy-aware"
]


def make_spec(policy_name, workload_name, config=CONFIG, **spec_kwargs):
    """A registry-wired spec for one policy x workload pair."""
    return SessionSpec(
        platform=platform_ref(PLATFORM),
        policy=policy_ref(
            policy_name, platform=PLATFORM, **POLICY_PARAMS.get(policy_name, {})
        ),
        workload=workload_ref(
            workload_name, **WORKLOAD_PARAMS.get(workload_name, {})
        ),
        config=config,
        **spec_kwargs,
    )


def scalar_summary(spec):
    """The oracle: one scalar Session run, summarized."""
    from repro.soc.platform import Platform

    return summarize(
        Session(
            Platform.from_spec(spec.resolve_platform_spec()),
            spec.build_workload(),
            spec.build_policy(),
            spec.config,
            pin_uncore_max=spec.pin_uncore_max,
        ).run()
    )


def assert_identical(expected, got, context=""):
    """Field-by-field bit-identity between two summaries."""
    for spec_field in dataclasses.fields(expected):
        a = getattr(expected, spec_field.name)
        b = getattr(got, spec_field.name)
        assert a == b, f"{context}{spec_field.name}: scalar={a!r} batch={b!r}"


class TestRegistryPairParity:
    @pytest.mark.parametrize("policy_name,workload_name", PAIRS)
    def test_batch_summary_bit_identical(self, policy_name, workload_name):
        spec = make_spec(policy_name, workload_name)
        batch = BatchSession([spec])
        assert_identical(
            scalar_summary(spec),
            batch.run()[0],
            context=f"{policy_name}/{workload_name} ",
        )

    @pytest.mark.parametrize("policy_name", VECTOR_POLICIES)
    def test_busyloop_pairs_vectorize(self, policy_name):
        # The whole point of the batch engine: the sweep-shaped pairs
        # must actually take the vector path, not the fallback.
        batch = BatchSession([make_spec(policy_name, "busyloop")])
        assert batch.vectorized_count == 1
        assert batch.fallback_count == 0

    def test_non_busyloop_pairs_fall_back(self):
        batch = BatchSession([make_spec("mobicore", "geekbench")])
        assert batch.vectorized_count == 0
        assert batch.fallback_positions == (0,)

    def test_energy_aware_falls_back_by_design(self):
        # The placement policy reasons across frequency domains; the
        # single-table vector program leaves it to the scalar oracle.
        batch = BatchSession([make_spec("energy-aware", "busyloop")])
        assert batch.vectorized_count == 0
        assert batch.fallback_positions == (0,)


class TestMixedBatch:
    def test_mixed_members_in_spec_order(self):
        specs = []
        for index, policy_name in enumerate(VECTOR_POLICIES):
            specs.append(
                make_spec(
                    policy_name,
                    "busyloop",
                    config=SimulationConfig(
                        duration_seconds=2.0, seed=index, warmup_seconds=0.2
                    ),
                )
            )
        # A fallback member wedged in the middle must not shift anyone.
        specs.insert(
            2,
            make_spec(
                "android-default",
                "geekbench",
                config=SimulationConfig(
                    duration_seconds=2.0, seed=9, warmup_seconds=0.2
                ),
            ),
        )
        batch = BatchSession(specs)
        assert batch.vectorized_count == len(specs) - 1
        assert batch.fallback_count == 1
        results = batch.run()
        assert len(results) == len(specs)
        for index, spec in enumerate(specs):
            assert_identical(
                scalar_summary(spec), results[index], context=f"spec[{index}] "
            )


class TestCompatibilityKey:
    def test_plain_spec_is_batchable(self):
        assert batch_compatibility_key(make_spec("mobicore", "busyloop")) is not None

    def test_varying_seed_keeps_the_key(self):
        a = make_spec(
            "mobicore", "busyloop", config=SimulationConfig(seed=1, duration_seconds=2.0)
        )
        b = make_spec(
            "race-to-idle",
            "busyloop",
            config=SimulationConfig(seed=2, duration_seconds=2.0),
        )
        assert batch_compatibility_key(a) == batch_compatibility_key(b)

    def test_traced_spec_is_rejected(self):
        spec = make_spec("mobicore", "busyloop", trace=TraceRequest())
        assert batch_compatibility_key(spec) is None

    def test_faulted_spec_is_rejected(self):
        plan = FaultPlan(
            (ThermalThrottleFault(at_seconds=0.5, duration_seconds=0.5, steps=2),)
        )
        spec = make_spec("mobicore", "busyloop", faults=plan)
        assert batch_compatibility_key(spec) is None

    def test_keep_columns_spec_is_rejected(self):
        spec = make_spec("mobicore", "busyloop", keep_columns=True)
        assert batch_compatibility_key(spec) is None

    def test_differing_timing_keys_differ(self):
        a = make_spec(
            "mobicore", "busyloop", config=SimulationConfig(duration_seconds=2.0)
        )
        b = make_spec(
            "mobicore", "busyloop", config=SimulationConfig(duration_seconds=4.0)
        )
        assert batch_compatibility_key(a) != batch_compatibility_key(b)

    def test_incompatible_specs_raise(self):
        a = make_spec(
            "mobicore", "busyloop", config=SimulationConfig(duration_seconds=2.0)
        )
        b = make_spec(
            "mobicore", "busyloop", config=SimulationConfig(duration_seconds=4.0)
        )
        with pytest.raises(BatchError):
            BatchSession([a, b])

    def test_empty_batch_raises(self):
        with pytest.raises(BatchError):
            BatchSession([])

    def test_traced_member_raises(self):
        with pytest.raises(BatchError):
            BatchSession([make_spec("mobicore", "busyloop", trace=TraceRequest())])


class TestBatchParityProperty:
    """Hypothesis sweep over the vectorizable parameter space.

    Each example builds a three-member batch — same platform and
    timing, randomized policy, busy-loop intensity, thread count, idle
    gap, and seeds — and checks bit-identical summaries against three
    scalar oracle runs (the contract ``docs/NUMERICS.md`` documents).
    """

    @settings(max_examples=20, deadline=None)
    @given(
        policy_name=st.sampled_from(VECTOR_POLICIES),
        target=st.floats(min_value=0.0, max_value=100.0),
        threads=st.integers(min_value=0, max_value=6),
        idle_gap=st.sampled_from([0.0, 0.04, 0.25]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_random_sweep_points_bit_identical(
        self, policy_name, target, threads, idle_gap, seed
    ):
        config = SimulationConfig(
            duration_seconds=1.0, seed=seed, warmup_seconds=0.2
        )
        specs = [
            SessionSpec(
                platform=platform_ref(PLATFORM),
                policy=policy_ref(
                    policy_name,
                    platform=PLATFORM,
                    **POLICY_PARAMS.get(policy_name, {}),
                ),
                workload=workload_ref(
                    "busyloop",
                    target_load_percent=min(100.0, target + 7.0 * position),
                    num_threads=threads,
                    idle_gap_seconds=idle_gap,
                ),
                config=config,
            )
            for position in range(3)
        ]
        batch = BatchSession(specs)
        assert batch.fallback_count == 0
        results = batch.run()
        for position, spec in enumerate(specs):
            assert_identical(
                scalar_summary(spec),
                results[position],
                context=f"{policy_name} member[{position}] ",
            )
