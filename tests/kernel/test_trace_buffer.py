"""TraceBuffer: staged columnar appends, derived columns, npz blobs, views."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.kernel.trace_buffer import (
    FLUSH_TICKS,
    SCALAR_COLUMNS,
    TraceBuffer,
    sequential_sum,
)
from repro.kernel.tracing import TickRecord, TraceRecorder, TraceView


def row_args(tick, cores=2, fps=None, online=None):
    """One synthetic tick's append() arguments."""
    online = tuple(online) if online is not None else (True,) * cores
    return dict(
        tick=tick,
        time_seconds=tick * 0.02,
        frequencies_khz=tuple(300_000 + 100_000 * (tick + c) for c in range(cores)),
        online_mask=online,
        busy_fractions=tuple(0.1 * (c + 1) for c in range(cores)),
        global_util_percent=50.0 + tick,
        quota=1.0,
        power_mw=1000.0 + tick,
        cpu_power_mw=600.0 + tick,
        temperature_c=30.0 + 0.1 * tick,
        backlog_cycles=float(tick),
        dropped_cycles=0.0,
        fps=fps,
        scaled_load_percent=40.0 + tick,
    )


def filled(n=5, cores=2, online=None):
    buffer = TraceBuffer(num_cores=cores)
    for tick in range(n):
        buffer.append(**row_args(tick, cores=cores, online=online))
    return buffer


class TestSequentialSum:
    def test_empty_is_zero(self):
        assert sequential_sum(np.empty(0)) == 0.0

    def test_matches_python_sum_bit_for_bit(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 2000.0, size=4097)
        assert sequential_sum(values) == sum(values.tolist())


class TestAppend:
    def test_capacity_must_be_positive(self):
        with pytest.raises(TraceError, match="capacity"):
            TraceBuffer(capacity=0)

    def test_out_of_order_tick_rejected(self):
        buffer = filled(3)
        with pytest.raises(TraceError, match="out-of-order tick 2 after 2"):
            buffer.append(**row_args(2))

    def test_len_counts_staged_and_flushed(self):
        buffer = filled(5)
        assert len(buffer) == 5
        buffer.flush()
        assert len(buffer) == 5

    def test_growth_past_initial_capacity(self):
        buffer = TraceBuffer(num_cores=2, capacity=2)
        for tick in range(FLUSH_TICKS + 10):
            buffer.append(**row_args(tick))
        assert len(buffer) == FLUSH_TICKS + 10
        assert buffer.scalar("tick")[-1] == FLUSH_TICKS + 9

    def test_inconsistent_core_width_rejected(self):
        buffer = TraceBuffer()
        buffer.append(**row_args(0, cores=2))
        buffer.append(**row_args(1, cores=3))
        with pytest.raises(TraceError, match="per-core column width"):
            buffer.flush()

    def test_mutating_caller_scratch_lists_never_alters_history(self):
        # The aliasing regression: the engine reuses its per-core scratch
        # state between ticks; recorded history must be a value snapshot.
        buffer = TraceBuffer(num_cores=2)
        freqs, online, busy = [300_000, 400_000], [True, False], [0.5, 0.0]
        args = row_args(0)
        args.update(frequencies_khz=freqs, online_mask=online, busy_fractions=busy)
        buffer.append(**args)
        freqs[0], online[1], busy[0] = 999_999, True, 0.99
        assert buffer.row(0)[2] == (300_000, 400_000)
        assert buffer.row(0)[3] == (True, False)
        assert buffer.row(0)[4] == (0.5, 0.0)


class TestColumns:
    def test_unknown_scalar_rejected(self):
        with pytest.raises(TraceError, match="unknown scalar column 'bogus'"):
            filled().scalar("bogus")

    def test_scalar_values_and_start_offset(self):
        buffer = filled(5)
        assert buffer.scalar("power_mw").tolist() == [1000.0 + t for t in range(5)]
        assert buffer.scalar("power_mw", start=3).tolist() == [1003.0, 1004.0]

    def test_fps_column_holds_nan_for_none(self):
        buffer = TraceBuffer(num_cores=2)
        buffer.append(**row_args(0, fps=30.0))
        buffer.append(**row_args(1, fps=None))
        column = buffer.scalar("fps")
        assert column[0] == 30.0 and np.isnan(column[1])

    def test_every_scalar_column_is_addressable(self):
        buffer = filled(3)
        for name in SCALAR_COLUMNS:
            assert len(buffer.scalar(name)) == 3

    def test_per_core_blocks(self):
        buffer = filled(4, cores=3)
        assert buffer.frequencies().shape == (4, 3)
        assert buffer.online().dtype == bool
        assert buffer.busy(start=2).shape == (2, 3)

    def test_empty_buffer_columns_are_empty(self):
        buffer = TraceBuffer()
        assert len(buffer.scalar("tick")) == 0
        assert buffer.frequencies().size == 0
        assert buffer.num_cores is None
        assert buffer.last_tick is None
        assert buffer.nbytes == 0 and buffer.capacity_bytes == 0


class TestDerivedColumns:
    def test_online_counts_and_mean_frequencies(self):
        buffer = TraceBuffer(num_cores=2)
        args = row_args(0)
        args.update(frequencies_khz=(400_000, 600_000), online_mask=(True, True))
        buffer.append(**args)
        args = row_args(1)
        args.update(frequencies_khz=(400_000, 600_000), online_mask=(False, True))
        buffer.append(**args)
        assert buffer.online_counts().tolist() == [2, 1]
        assert buffer.mean_online_frequencies().tolist() == [500_000.0, 600_000.0]

    def test_all_cores_offline_means_zero_frequency(self):
        buffer = filled(2, online=(False, False))
        assert buffer.mean_online_frequencies().tolist() == [0.0, 0.0]

    def test_derived_cache_tracks_buffer_growth(self):
        buffer = filled(2)
        assert len(buffer.online_counts()) == 2
        buffer.append(**row_args(2))
        assert len(buffer.online_counts()) == 3


class TestRows:
    def test_row_roundtrips_append_arguments(self):
        buffer = TraceBuffer(num_cores=2)
        args = row_args(4, fps=42.5)
        buffer.append(**args)
        assert buffer.row(0) == tuple(args.values())

    def test_negative_index_addresses_from_the_end(self):
        buffer = filled(5)
        assert buffer.row(-1)[0] == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceError, match="row 5 out of range for 5"):
            filled(5).row(5)

    def test_iter_rows_covers_every_tick(self):
        assert [row[0] for row in filled(6).iter_rows()] == list(range(6))


class TestNpzRoundTrip:
    def test_roundtrip_preserves_every_column(self):
        buffer = filled(7, cores=3)
        clone = TraceBuffer.from_npz_bytes(buffer.to_npz_bytes())
        assert len(clone) == 7
        assert clone.last_tick == 6
        np.testing.assert_array_equal(clone.scalar("power_mw"), buffer.scalar("power_mw"))
        np.testing.assert_array_equal(clone.frequencies(), buffer.frequencies())
        np.testing.assert_array_equal(clone.online(), buffer.online())
        np.testing.assert_array_equal(clone.busy(), buffer.busy())

    def test_empty_buffer_roundtrips(self):
        clone = TraceBuffer.from_npz_bytes(TraceBuffer().to_npz_bytes())
        assert len(clone) == 0 and clone.last_tick is None

    def test_garbage_blob_rejected(self):
        with pytest.raises(TraceError, match="unreadable column blob"):
            TraceBuffer.from_npz_bytes(b"definitely not an npz archive")


class TestTraceView:
    def test_view_is_a_lazy_sequence_of_records(self):
        recorder = TraceRecorder(warmup_ticks=1)
        for tick in range(4):
            recorder.record_tick(*tuple(row_args(tick).values()))
        records = recorder.records
        assert isinstance(records, TraceView)
        assert len(records) == 4
        assert len(recorder.measured) == 3
        assert isinstance(records[0], TickRecord)
        assert records[-1].tick == 3
        assert [r.tick for r in records[1:3]] == [1, 2]

    def test_view_memoizes_materialized_records(self):
        recorder = TraceRecorder()
        recorder.record_tick(*tuple(row_args(0).values()))
        assert recorder.records[0] is recorder.records[0]

    def test_view_index_errors_like_a_list(self):
        recorder = TraceRecorder()
        recorder.record_tick(*tuple(row_args(0).values()))
        with pytest.raises(IndexError, match="record 1 out of range"):
            recorder.records[1]

    def test_view_records_carry_preseeded_derived_values(self):
        recorder = TraceRecorder()
        args = row_args(0)
        args.update(frequencies_khz=(400_000, 600_000), online_mask=(True, False))
        recorder.record_tick(*tuple(args.values()))
        record = recorder.records[0]
        assert record.online_count == 1
        assert record.mean_online_frequency_khz == 400_000.0
