"""The cpufreq subsystem: limits, thermal cap, rail unification."""

import pytest

from repro.errors import GovernorError
from repro.kernel.cpufreq import CpufreqSubsystem, FrequencyLimits
from repro.soc.catalog import galaxy_s2_spec, nexus5_spec
from repro.soc.platform import Platform


@pytest.fixture
def cpufreq(platform):
    return CpufreqSubsystem(platform)


class TestLimits:
    def test_defaults_span_table(self, cpufreq, opp_table):
        limits = cpufreq.limits(0)
        assert limits.min_khz == opp_table.min_frequency_khz
        assert limits.max_khz == opp_table.max_frequency_khz

    def test_inverted_limits_rejected(self):
        with pytest.raises(GovernorError):
            FrequencyLimits(2_265_600, 300_000)

    def test_set_limits_validates_opp(self, cpufreq):
        with pytest.raises(GovernorError):
            cpufreq.set_limits(0, 111, 222)

    def test_limits_clamp_targets(self, cpufreq, platform):
        cpufreq.set_limits(0, 300_000, 960_000)
        applied = cpufreq.apply([9e9, None, None, None])
        assert applied[0] == 960_000

    def test_unknown_core_rejected(self, cpufreq):
        with pytest.raises(GovernorError):
            cpufreq.limits(9)


class TestApply:
    def test_none_leaves_unchanged(self, cpufreq, platform, opp_table):
        platform.cluster.core(1).set_frequency(960_000)
        applied = cpufreq.apply([None, None, None, None])
        assert applied[1] == 960_000

    def test_round_up_to_opp(self, cpufreq):
        applied = cpufreq.apply([961_000.0, None, None, None])
        assert applied[0] == 1_036_800

    def test_round_down_option(self, cpufreq):
        applied = cpufreq.apply([961_000.0, None, None, None], round_up=False)
        assert applied[0] == 960_000

    def test_wrong_length_rejected(self, cpufreq):
        with pytest.raises(GovernorError):
            cpufreq.apply([None])

    def test_transition_counting(self, cpufreq):
        cpufreq.apply([960_000.0, None, None, None])
        cpufreq.apply([960_000.0, None, None, None])  # no change, no count
        assert cpufreq.transition_count == 1

    def test_offline_core_accepts_setting(self, cpufreq, platform):
        platform.cluster.set_online_count(1)
        applied = cpufreq.apply([None, 960_000.0, None, None])
        assert applied[1] == 960_000


class TestThermalCap:
    def test_thermal_cap_clamps(self):
        spec = nexus5_spec(throttled=True)
        platform = Platform.from_spec(spec)
        cpufreq = CpufreqSubsystem(platform)
        # Force the throttle: heat the node far beyond the threshold.
        for _ in range(200):
            platform.thermal.step(5000.0, 1.0)
        assert platform.thermal.throttle_steps > 0
        applied = cpufreq.apply([float(spec.opp_table.max_frequency_khz)] * 4)
        assert all(f <= platform.thermal.max_allowed_frequency_khz for f in applied)
        assert applied[0] < spec.opp_table.max_frequency_khz


class TestSharedRail:
    def test_shared_rail_unifies_online_cores(self):
        platform = Platform.from_spec(galaxy_s2_spec())
        cpufreq = CpufreqSubsystem(platform)
        fmax = platform.opp_table.max_frequency_khz
        fmin = platform.opp_table.min_frequency_khz
        applied = cpufreq.apply([float(fmax), float(fmin)])
        assert applied == [fmax, fmax]
