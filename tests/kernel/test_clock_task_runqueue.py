"""Clock, task, and runqueue primitives."""

import pytest

from repro.errors import ConfigError, SchedulerError, WorkloadError
from repro.kernel.clock import SimClock
from repro.kernel.runqueue import RunQueue
from repro.kernel.task import Task, TaskDemand, WorkItem


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock(0.02)
        assert clock.tick == 0
        assert clock.now_seconds == 0.0

    def test_advance(self):
        clock = SimClock(0.02)
        clock.advance()
        clock.advance(4)
        assert clock.tick == 5
        assert clock.now_seconds == pytest.approx(0.1)

    def test_cannot_go_backwards(self):
        with pytest.raises(ConfigError):
            SimClock(0.02).advance(0)

    def test_reset(self):
        clock = SimClock(0.02)
        clock.advance(10)
        clock.reset()
        assert clock.tick == 0


class TestTask:
    def test_defaults(self):
        task = Task(0, "render")
        assert not task.parallel
        assert task.weight == 1.0

    def test_negative_id_rejected(self):
        with pytest.raises(WorkloadError):
            Task(-1, "x")

    def test_zero_weight_rejected(self):
        with pytest.raises(WorkloadError):
            Task(0, "x", weight=0.0)

    def test_demand_non_negative(self):
        with pytest.raises(Exception):
            TaskDemand(Task(0, "x"), -1.0)

    def test_work_item_total(self):
        item = WorkItem(Task(0, "x"), cycles=100.0, from_backlog=50.0)
        assert item.total_cycles == pytest.approx(150.0)


class TestRunQueue:
    def test_negative_core_rejected(self):
        with pytest.raises(SchedulerError):
            RunQueue(-1)

    def test_assign_accumulates(self):
        queue = RunQueue(0)
        queue.assign(Task(0, "a"), 100.0)
        queue.assign(Task(1, "b"), 50.0)
        assert queue.assigned_cycles == pytest.approx(150.0)

    def test_zero_assignment_ignored(self):
        queue = RunQueue(0)
        queue.assign(Task(0, "a"), 0.0)
        assert queue.assignments == []

    def test_execute_within_capacity(self):
        queue = RunQueue(0)
        queue.assign(Task(0, "a"), 100.0)
        busy, executed, leftover = queue.execute(200.0)
        assert busy == pytest.approx(100.0)
        assert executed == {0: pytest.approx(100.0)}
        assert leftover == {}

    def test_execute_over_capacity_in_order(self):
        queue = RunQueue(0)
        queue.assign(Task(0, "first"), 80.0)
        queue.assign(Task(1, "second"), 80.0)
        busy, executed, leftover = queue.execute(100.0)
        assert busy == pytest.approx(100.0)
        assert executed[0] == pytest.approx(80.0)
        assert executed[1] == pytest.approx(20.0)
        assert leftover == {1: pytest.approx(60.0)}

    def test_same_task_multiple_assignments_merge(self):
        queue = RunQueue(0)
        task = Task(0, "a")
        queue.assign(task, 30.0)
        queue.assign(task, 30.0)
        _, executed, _ = queue.execute(100.0)
        assert executed[0] == pytest.approx(60.0)

    def test_clear(self):
        queue = RunQueue(0)
        queue.assign(Task(0, "a"), 10.0)
        queue.clear()
        assert queue.assigned_cycles == 0.0
