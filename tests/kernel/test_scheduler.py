"""Load-balancing scheduler semantics: balance, backlog, parallelism."""

import pytest

from repro.errors import SchedulerError
from repro.kernel.scheduler import LoadBalancingScheduler
from repro.kernel.task import Task, TaskDemand
from repro.soc.cpu_cluster import CpuCluster

DT = 0.02


@pytest.fixture
def cluster(opp_table):
    cluster = CpuCluster(4, opp_table)
    cluster.set_all_frequencies(opp_table.max_frequency_khz)
    return cluster


@pytest.fixture
def scheduler():
    return LoadBalancingScheduler()


def capacity(cluster, dt=DT):
    return cluster.core(0).capacity_cycles(dt)


class TestDispatchBasics:
    def test_bad_dt_rejected(self, scheduler, cluster):
        with pytest.raises(Exception):
            scheduler.dispatch([], cluster, dt_seconds=-1.0)

    def test_zero_online_cores_is_unreachable(self, opp_table):
        """The public API cannot produce a coreless cluster (core 0 pinned)."""
        cluster = CpuCluster(1, opp_table)
        with pytest.raises(Exception):
            cluster.set_online_mask([False])

    def test_empty_demand_all_idle(self, scheduler, cluster):
        result = scheduler.dispatch([], cluster, DT)
        assert result.busy_cycles == [0.0] * 4
        assert result.total_executed == 0.0
        assert result.total_backlog == 0.0

    def test_single_task_one_core(self, scheduler, cluster):
        work = capacity(cluster) * 0.5
        result = scheduler.dispatch(
            [TaskDemand(Task(0, "a"), work)], cluster, DT
        )
        busy = [b for b in result.busy_cycles if b > 0]
        assert len(busy) == 1
        assert busy[0] == pytest.approx(work)

    def test_busy_fraction_relative_to_full_capacity(self, scheduler, cluster):
        work = capacity(cluster) * 0.25
        result = scheduler.dispatch([TaskDemand(Task(0, "a"), work)], cluster, DT)
        assert max(result.busy_fractions) == pytest.approx(0.25)


class TestBalancing:
    def test_equal_tasks_spread_over_cores(self, scheduler, cluster):
        work = capacity(cluster) * 0.5
        demands = [TaskDemand(Task(i, f"t{i}"), work) for i in range(4)]
        result = scheduler.dispatch(demands, cluster, DT)
        assert all(b == pytest.approx(work) for b in result.busy_cycles)

    def test_lpt_places_largest_first(self, scheduler, cluster):
        cap = capacity(cluster)
        demands = [
            TaskDemand(Task(0, "big"), cap * 0.9),
            TaskDemand(Task(1, "small1"), cap * 0.3),
            TaskDemand(Task(2, "small2"), cap * 0.3),
        ]
        result = scheduler.dispatch(demands, cluster, DT)
        # The big task owns a core; the small ones land elsewhere.
        fractions = sorted(result.busy_fractions, reverse=True)
        assert fractions[0] == pytest.approx(0.9)
        assert fractions[1] == pytest.approx(0.3)
        assert fractions[2] == pytest.approx(0.3)

    def test_only_online_cores_used(self, scheduler, cluster):
        cluster.set_online_count(2)
        work = capacity(cluster) * 0.5
        demands = [TaskDemand(Task(i, f"t{i}"), work) for i in range(4)]
        result = scheduler.dispatch(demands, cluster, DT)
        assert result.busy_cycles[2] == 0.0
        assert result.busy_cycles[3] == 0.0
        assert result.busy_fractions[0] == pytest.approx(1.0)

    def test_heterogeneous_frequencies(self, scheduler, cluster, opp_table):
        """A faster core takes proportionally more of a parallel task."""
        cluster.core(0).set_frequency(opp_table.max_frequency_khz)
        for core_id in (1, 2, 3):
            cluster.core(core_id).set_frequency(opp_table.min_frequency_khz)
        work = cluster.total_capacity_cycles(DT) * 0.5
        result = scheduler.dispatch(
            [TaskDemand(Task(0, "p", parallel=True), work)], cluster, DT
        )
        assert result.busy_cycles[0] > result.busy_cycles[1]


class TestSingleThreadBound:
    def test_serial_task_cannot_exceed_one_core(self, scheduler, cluster):
        """One thread can never use more than one core per tick."""
        work = capacity(cluster) * 3.0
        result = scheduler.dispatch([TaskDemand(Task(0, "a"), work)], cluster, DT)
        assert result.total_executed == pytest.approx(capacity(cluster))
        assert result.total_backlog == pytest.approx(work - capacity(cluster))

    def test_parallel_task_uses_all_cores(self, scheduler, cluster):
        work = capacity(cluster) * 3.0
        result = scheduler.dispatch(
            [TaskDemand(Task(0, "p", parallel=True), work)], cluster, DT
        )
        assert result.total_executed == pytest.approx(work)
        assert result.total_backlog == 0.0


class TestBacklog:
    def test_backlog_carries_to_next_tick(self, scheduler, cluster):
        work = capacity(cluster) * 1.5
        scheduler.dispatch([TaskDemand(Task(0, "a"), work)], cluster, DT)
        assert scheduler.total_backlog_cycles == pytest.approx(work - capacity(cluster))
        result = scheduler.dispatch([], cluster, DT)
        assert result.total_executed == pytest.approx(work - capacity(cluster))
        assert scheduler.total_backlog_cycles == 0.0

    def test_backlog_drains_before_fresh_demand(self, scheduler, cluster):
        cap = capacity(cluster)
        cluster.set_online_count(1)
        task = Task(0, "a")
        scheduler.dispatch([TaskDemand(task, cap * 2)], cluster, DT)
        result = scheduler.dispatch([TaskDemand(task, cap)], cluster, DT)
        # the carried cap drains; the fresh cap becomes the new backlog
        assert result.backlog_by_task[0] == pytest.approx(cap)

    def test_backlog_capped_and_dropped(self, scheduler, cluster):
        cap_limit = (
            cluster.opp_table.max_frequency_khz * 1000 * DT * scheduler.backlog_cap_ticks
        )
        huge = cap_limit * 10
        result = scheduler.dispatch(
            [TaskDemand(Task(0, "a"), huge)], cluster, DT
        )
        assert result.dropped_cycles > 0.0
        assert scheduler.total_backlog_cycles <= cap_limit + 1.0

    def test_reset_clears_backlog(self, scheduler, cluster):
        scheduler.dispatch(
            [TaskDemand(Task(0, "a"), capacity(cluster) * 2)], cluster, DT
        )
        scheduler.reset()
        assert scheduler.total_backlog_cycles == 0.0


class TestQuota:
    def test_quota_limits_execution(self, scheduler, cluster):
        work = capacity(cluster)
        result = scheduler.dispatch(
            [TaskDemand(Task(0, "a"), work)], cluster, DT, quota=0.5
        )
        assert result.total_executed == pytest.approx(work * 0.5)
        assert max(result.busy_fractions) == pytest.approx(0.5)

    def test_busy_fraction_capped_by_quota(self, scheduler, cluster):
        work = capacity(cluster) * 10
        result = scheduler.dispatch(
            [TaskDemand(Task(0, "a"), work)], cluster, DT, quota=0.8
        )
        assert max(result.busy_fractions) == pytest.approx(0.8)
