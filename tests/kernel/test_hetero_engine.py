"""Heterogeneous topologies through the kernel layer and the batch runner."""

import pytest

from repro.config import SimulationConfig
from repro.kernel.batch_engine import batch_compatibility_key
from repro.kernel.cpufreq import CpufreqSubsystem
from repro.kernel.engine import Session
from repro.kernel.hotplug import HotplugSubsystem
from repro.metrics.summary import summarize
from repro.obs.bus import TracepointBus
from repro.runner.runner import SessionRunner
from repro.runner.spec import SessionSpec
from repro.scenario import policy_ref, workload_ref
from repro.soc.catalog import odroid_xu3_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp


@pytest.fixture
def xu3():
    return Platform.from_spec(odroid_xu3_spec())


def hetero_session(policy_name="energy-aware", seconds=2.0, bus=None):
    platform = Platform.from_spec(odroid_xu3_spec())
    policy = policy_ref(policy_name, platform="Odroid-XU3").resolve()
    workload = BusyLoopApp(50.0, num_threads=2, idle_gap_seconds=0.0)
    config = SimulationConfig(duration_seconds=seconds, seed=3, warmup_seconds=0.4)
    return Session(platform, workload, policy, config, trace=bus)


class TestHeteroCpufreq:
    def test_targets_quantise_per_domain(self, xu3):
        cpufreq = CpufreqSubsystem(xu3)
        # 300 MHz is little's fmin but below big's whole ladder.
        applied = cpufreq.apply([300_000.0] * 8)
        little_table = xu3.topology.clusters[0].opp_table
        big_table = xu3.topology.clusters[1].opp_table
        assert applied[:4] == [300_000] * 4
        assert applied[4:] == [big_table.min_frequency_khz] * 4
        assert all(f in little_table for f in applied[:4])
        assert all(f in big_table for f in applied[4:])

    def test_shared_rail_unifies_within_domain_only(self, xu3):
        cpufreq = CpufreqSubsystem(xu3)
        little_table = xu3.topology.clusters[0].opp_table
        big_table = xu3.topology.clusters[1].opp_table
        # Mixed targets inside each shared-rail domain unify to the
        # domain max — not to one global frequency.
        applied = cpufreq.apply(
            [300_000.0, 1_200_000.0, 300_000.0, 300_000.0]
            + [800_000.0, 2_000_000.0, 800_000.0, 800_000.0]
        )
        assert applied[:4] == [1_200_000] * 4
        assert applied[4:] == [2_000_000] * 4
        assert little_table.max_frequency_khz == 1_200_000
        assert big_table.max_frequency_khz == 2_000_000

    def test_limits_are_per_domain(self, xu3):
        cpufreq = CpufreqSubsystem(xu3)
        assert cpufreq.limits(0).max_khz == 1_200_000
        assert cpufreq.limits(4).max_khz == 2_000_000


class TestHeteroTraceEvents:
    def collect(self, category):
        bus = TracepointBus()
        session = hetero_session(seconds=1.0, bus=bus)
        session.run()
        return [e for e in bus.events if e.category == category]

    def test_freq_events_carry_cluster(self):
        events = self.collect("cpufreq")
        assert events, "expected frequency transitions"
        clusters = {(e.core, e.cluster) for e in events}
        for core, cluster in clusters:
            assert cluster == (0 if core < 4 else 1)
        assert any("cluster" in e.payload() for e in events)

    def test_hotplug_events_carry_cluster(self):
        events = self.collect("hotplug")
        assert events, "expected hotplug transitions"
        for event in events:
            assert event.cluster == (0 if event.core < 4 else 1)

    def test_homogeneous_events_default_cluster_zero(self, platform):
        bus = TracepointBus()
        hotplug = HotplugSubsystem(platform.topology)
        hotplug.attach_trace(bus)
        hotplug.set_mpdecision(False)
        hotplug.apply_mask([True, True, False, False])
        events = [e for e in bus.events if e.category == "hotplug"]
        assert events and all(e.cluster == 0 for e in events)


class TestHeteroEngine:
    def test_session_runs_and_observes_domains(self):
        session = hetero_session(seconds=1.0)
        summary = summarize(session.run())
        assert summary.mean_power_mw > 0
        assert summary.mean_online_cores >= 1.0

    def test_mobicore_runs_on_hetero(self):
        summary = summarize(hetero_session("mobicore", seconds=1.0).run())
        assert summary.mean_power_mw > 0


def hetero_spec(seed, policy="energy-aware", platform="Odroid-XU3"):
    return SessionSpec(
        platform=platform,
        policy=policy_ref(policy, platform=platform),
        workload=workload_ref("busyloop", target_load_percent=45.0, num_threads=2),
        config=SimulationConfig(duration_seconds=1.5, seed=seed, warmup_seconds=0.3),
    )


def homo_spec(seed, policy="mobicore", platform="Nexus 5"):
    return SessionSpec(
        platform=platform,
        policy=policy_ref(policy, platform=platform),
        workload=workload_ref("busyloop", target_load_percent=45.0),
        config=SimulationConfig(duration_seconds=1.5, seed=seed, warmup_seconds=0.3),
    )


class TestHeteroBatchFallback:
    def test_multi_cluster_specs_are_not_batchable(self):
        assert batch_compatibility_key(hetero_spec(0)) is None
        assert batch_compatibility_key(homo_spec(0)) is not None

    def test_mixed_sweep_vectorizes_homogeneous_only(self):
        """Satellite: a sweep mixing big.LITTLE and homogeneous specs
        vectorizes the homogeneous members and serially executes the
        rest — with results identical to a plain serial run."""
        specs = [
            homo_spec(0),
            hetero_spec(0),
            homo_spec(1),
            hetero_spec(1, policy="race-to-idle"),
            homo_spec(2),
        ]
        expected = SessionRunner(jobs=1).run(specs)
        report = SessionRunner(jobs=1, batch=True).run_report(specs)
        assert report.summaries == expected
        details = [outcome.detail for outcome in report.outcomes]
        # Homogeneous members shared one vector program...
        assert details[0].startswith("batched(")
        assert details[2].startswith("batched(")
        assert details[4].startswith("batched(")
        # ...while the big.LITTLE members took the scalar path.
        assert details[1] == ""
        assert details[3] == ""
