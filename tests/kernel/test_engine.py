"""The engine split: KernelStack lifecycle and the incremental Session."""

import pytest

from repro.errors import ExperimentError
from repro.kernel.engine import KernelStack, Session
from repro.kernel.simulator import Simulator
from repro.policies.android_default import AndroidDefaultPolicy
from repro.policies.base import PolicyDecision
from repro.policies.static import StaticPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp


def fresh_session(config, policy=None, workload=None):
    platform = Platform.from_spec(nexus5_spec())
    return Session(
        platform,
        workload if workload is not None else BusyLoopApp(40.0),
        policy if policy is not None else AndroidDefaultPolicy(),
        config,
        pin_uncore_max=False,
    )


class TestKernelStack:
    def test_apply_routes_to_every_mechanism(self, platform):
        stack = KernelStack(platform)
        stack.apply(
            PolicyDecision(
                target_frequencies_khz=[960_000] * 4,
                online_mask=[True, True, False, False],
                quota=0.5,
            )
        )
        assert list(platform.cluster.online_mask) == [True, True, False, False]
        assert all(
            core.frequency_khz == 960_000 for core in platform.cluster.online_cores
        )
        assert stack.bandwidth.quota == 0.5

    def test_reset_zeroes_transition_counters(self, platform, tiny_config):
        stack = KernelStack(platform)
        session = Session(
            platform,
            BusyLoopApp(40.0),
            AndroidDefaultPolicy(),
            tiny_config,
            pin_uncore_max=False,
            stack=stack,
        )
        session.run()
        assert stack.dvfs_transitions > 0
        stack.reset()
        assert stack.dvfs_transitions == 0
        assert stack.hotplug_transitions == 0

    def test_reset_restores_boot_state(self, platform):
        stack = KernelStack(platform)
        stack.apply(
            PolicyDecision(online_mask=[True, False, False, False], quota=0.25)
        )
        stack.reset()
        assert all(platform.cluster.online_mask)
        assert stack.bandwidth.quota == 1.0


class TestSessionStepping:
    def test_step_auto_starts(self, tiny_config):
        session = fresh_session(tiny_config)
        assert not session.started
        record = session.step()
        assert session.started
        assert record.tick == 0
        assert session.ticks_run == 1

    def test_finished_after_all_ticks_and_step_raises(self, tiny_config):
        session = fresh_session(tiny_config)
        for _ in range(tiny_config.total_ticks):
            session.step()
        assert session.finished
        with pytest.raises(ExperimentError):
            session.step()

    def test_result_before_start_raises(self, tiny_config):
        session = fresh_session(tiny_config)
        with pytest.raises(ExperimentError):
            session.result()

    def test_stepping_equals_run(self, short_config):
        """Driving tick by tick is the same computation as run()."""
        stepped = fresh_session(short_config)
        while not stepped.finished:
            stepped.step()
        ran = fresh_session(short_config)
        a, b = stepped.result(), ran.run()
        assert a.trace.to_csv() == b.trace.to_csv()
        assert a.dvfs_transitions == b.dvfs_transitions
        assert a.hotplug_transitions == b.hotplug_transitions

    def test_restart_resets_tick_counter(self, tiny_config):
        session = fresh_session(tiny_config)
        session.run()
        session.start()
        assert session.ticks_run == 0
        assert not session.finished


class TestPerSessionAccounting:
    def test_second_run_counts_its_own_transitions(self, short_config):
        """Regression: transition counters used to accumulate across
        runs, so a reused Simulator reported ever-growing churn."""
        platform = Platform.from_spec(nexus5_spec())
        sim = Simulator(
            platform, BusyLoopApp(40.0), AndroidDefaultPolicy(), short_config,
            pin_uncore_max=False,
        )
        first = sim.run()
        second = sim.run()
        assert first.dvfs_transitions > 0
        assert second.dvfs_transitions == first.dvfs_transitions
        assert second.hotplug_transitions == first.hotplug_transitions

    def test_results_keep_their_own_cpuidle(self, tiny_config):
        """Each run's result holds its own residency ledger, not an alias
        of the live stack's."""
        session = fresh_session(tiny_config, policy=StaticPolicy(2, 960_000))
        first = session.run()
        second = session.run()
        assert first.cpuidle is not second.cpuidle
        assert first.cpuidle.total_seconds == second.cpuidle.total_seconds


class TestFacade:
    def test_simulator_exposes_stack_members(self, short_config):
        platform = Platform.from_spec(nexus5_spec())
        sim = Simulator(
            platform, BusyLoopApp(30.0), StaticPolicy(4, 960_000), short_config
        )
        assert sim.platform is platform
        assert sim.cpufreq is sim.session.stack.cpufreq
        assert sim.hotplug is sim.session.stack.hotplug
        assert sim.bandwidth is sim.session.stack.bandwidth
        assert sim.procstat is sim.session.stack.procstat

    def test_simulator_run_matches_session_run(self, short_config):
        platform_a = Platform.from_spec(nexus5_spec())
        via_facade = Simulator(
            platform_a, BusyLoopApp(40.0), AndroidDefaultPolicy(), short_config,
            pin_uncore_max=False,
        ).run()
        direct = fresh_session(short_config).run()
        assert via_facade.trace.to_csv() == direct.trace.to_csv()
