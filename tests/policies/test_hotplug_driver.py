"""The default hotplug driver's threshold and hysteresis behaviour."""

import pytest

from repro.errors import HotplugError
from repro.policies.hotplug_driver import DefaultHotplugDriver


def drive(driver, total, online, num_cores=4, ticks=1):
    count = online
    for _ in range(ticks):
        count = driver.target_count(total, count, num_cores)
    return count


class TestValidation:
    def test_bad_headroom(self):
        with pytest.raises(HotplugError):
            DefaultHotplugDriver(down_headroom=0.0)

    def test_bad_holds(self):
        with pytest.raises(HotplugError):
            DefaultHotplugDriver(hold_up_ticks=0)

    def test_bad_online_count(self):
        with pytest.raises(HotplugError):
            DefaultHotplugDriver().target_count(50.0, 0, 4)


class TestOnlining:
    def test_onlines_after_hold(self):
        driver = DefaultHotplugDriver(hold_up_ticks=2)
        assert driver.target_count(100.0, 1, 4) == 1  # first hot tick
        assert driver.target_count(100.0, 1, 4) == 2  # second: online

    def test_saturated_demand_grows_to_all_cores(self):
        driver = DefaultHotplugDriver(hold_up_ticks=1)
        count = 1
        for _ in range(10):
            count = driver.target_count(400.0, count, 4)
        assert count == 4

    def test_never_exceeds_num_cores(self):
        driver = DefaultHotplugDriver(hold_up_ticks=1)
        assert driver.target_count(400.0, 4, 4) == 4

    def test_hold_interrupted_by_calm_tick(self):
        driver = DefaultHotplugDriver(hold_up_ticks=2)
        driver.target_count(100.0, 1, 4)
        driver.target_count(50.0, 1, 4)  # calm: resets the counter
        assert driver.target_count(100.0, 1, 4) == 1


class TestOfflining:
    def test_offlines_after_hold(self):
        driver = DefaultHotplugDriver(
            hold_down_ticks=3, down_headroom=0.9, up_threshold=80.0
        )
        count = 4
        for _ in range(2):
            count = driver.target_count(10.0, count, 4)
            assert count == 4
        count = driver.target_count(10.0, count, 4)
        assert count == 3

    def test_never_below_one(self):
        driver = DefaultHotplugDriver(hold_down_ticks=1)
        count = 2
        for _ in range(10):
            count = driver.target_count(0.0, count, 4)
        assert count == 1

    def test_no_offline_when_demand_needs_cores(self):
        """Removing a core must leave headroom; 300% needs all four."""
        driver = DefaultHotplugDriver(hold_down_ticks=1)
        assert drive(driver, 300.0, 4, ticks=20) == 4


class TestStability:
    def test_mid_band_holds_count(self):
        driver = DefaultHotplugDriver()
        assert drive(driver, 150.0, 3, ticks=50) == 3

    def test_reset_clears_counters(self):
        driver = DefaultHotplugDriver(hold_up_ticks=2)
        driver.target_count(100.0, 1, 4)
        driver.reset()
        assert driver.target_count(100.0, 1, 4) == 1

    def test_frequency_invariance(self):
        """The driver sees fmax-normalised load: same demand, same answer,
        regardless of the frequency the cores happen to run at (the
        caller normalises)."""
        driver_a = DefaultHotplugDriver(hold_up_ticks=1)
        driver_b = DefaultHotplugDriver(hold_up_ticks=1)
        assert driver_a.target_count(200.0, 2, 4) == driver_b.target_count(
            200.0, 2, 4
        )
