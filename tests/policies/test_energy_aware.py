"""The EAS-style energy-aware placement policy, unit and end to end."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.kernel.engine import Session
from repro.metrics.summary import summarize
from repro.policies.base import SystemObservation
from repro.policies.energy_aware import EnergyAwarePolicy
from repro.scenario import POLICY_REGISTRY, policy_ref
from repro.soc.catalog import get_phone_spec, nexus5_spec, odroid_xu3_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp


@pytest.fixture
def xu3_spec():
    return odroid_xu3_spec()


@pytest.fixture
def policy(xu3_spec):
    return EnergyAwarePolicy.for_platform_spec(xu3_spec)


def observe(spec, loads, frequencies=None, online=None, tick=0):
    """A SystemObservation for *spec* with the given per-core loads."""
    clusters = spec.cluster_specs()
    cluster_ids = []
    tables = tuple(c.opp_table for c in clusters)
    for index, cluster in enumerate(clusters):
        cluster_ids.extend([index] * cluster.num_cores)
    num_cores = len(cluster_ids)
    if frequencies is None:
        frequencies = [
            tables[cluster_ids[i]].min_frequency_khz for i in range(num_cores)
        ]
    if online is None:
        online = [True] * num_cores
    visible = [
        load if on else 0.0 for load, on in zip(loads, online)
    ]
    online_loads = [l for l, on in zip(visible, online) if on]
    return SystemObservation(
        tick=tick,
        dt_seconds=0.02,
        per_core_load_percent=visible,
        global_util_percent=sum(online_loads) / max(len(online_loads), 1),
        delta_util_percent=0.0,
        frequencies_khz=frequencies,
        online_mask=online,
        quota=1.0,
        opp_table=spec.opp_table,
        cluster_ids=tuple(cluster_ids),
        cluster_opp_tables=tables,
    )


class TestEnergyAwareUnit:
    def test_validation(self, xu3_spec):
        with pytest.raises(ConfigError):
            EnergyAwarePolicy(())
        with pytest.raises(ConfigError):
            EnergyAwarePolicy.for_platform_spec(xu3_spec, switch_margin_percent=-1.0)
        with pytest.raises(ConfigError):
            EnergyAwarePolicy.for_platform_spec(xu3_spec, min_residency_ticks=-1)

    def test_core_count_mismatch_rejected(self, policy):
        with pytest.raises(ConfigError):
            policy.decide(observe(nexus5_spec(), [0.0] * 4))

    def test_idle_demand_parks_on_one_little_core(self, policy, xu3_spec):
        decision = policy.decide(observe(xu3_spec, [0.0] * 8))
        assert decision.online_mask[0] is True
        assert sum(decision.online_mask) == 1
        little_fmin = xu3_spec.clusters[0].opp_table.min_frequency_khz
        assert decision.target_frequencies_khz[0] == float(little_fmin)

    def test_moderate_demand_prefers_little_cores(self, policy, xu3_spec):
        # Four little cores half-busy at their fmax: sustained but small.
        little_fmax = xu3_spec.clusters[0].opp_table.max_frequency_khz
        obs = observe(
            xu3_spec,
            [50.0] * 4 + [0.0] * 4,
            frequencies=[little_fmax] * 4
            + [xu3_spec.clusters[1].opp_table.min_frequency_khz] * 4,
        )
        decision = policy.decide(obs)
        assert not any(decision.online_mask[4:]), "big cluster should stay parked"
        assert decision.reason.startswith("eas:")

    def test_heavy_demand_wakes_big_cores(self, policy, xu3_spec):
        little_fmax = xu3_spec.clusters[0].opp_table.max_frequency_khz
        big_fmax = xu3_spec.clusters[1].opp_table.max_frequency_khz
        obs = observe(
            xu3_spec,
            [100.0] * 8,
            frequencies=[little_fmax] * 4 + [big_fmax] * 4,
        )
        decision = policy.decide(obs)
        assert any(decision.online_mask[4:]), "saturation must bring big cores up"

    def test_hysteresis_holds_placement(self, xu3_spec):
        policy = EnergyAwarePolicy.for_platform_spec(
            xu3_spec, min_residency_ticks=1000, switch_margin_percent=0.0
        )
        little_fmin = xu3_spec.clusters[0].opp_table.min_frequency_khz
        first = policy.decide(observe(xu3_spec, [5.0] * 8))
        # Demand rises but stays feasible on the held placement: within
        # the residency window the mask must not move.
        held = policy.decide(
            observe(
                xu3_spec,
                [30.0, 0.0, 0.0, 0.0] + [0.0] * 4,
                frequencies=[little_fmin] * 8,
                online=list(first.online_mask),
                tick=1,
            )
        )
        assert list(held.online_mask) == list(first.online_mask)

    def test_homogeneous_platform_degenerates(self):
        spec = nexus5_spec()
        policy = EnergyAwarePolicy.for_platform_spec(spec)
        decision = policy.decide(observe(spec, [0.0] * 4))
        assert sum(decision.online_mask) == 1
        assert decision.target_frequencies_khz[0] == float(
            spec.opp_table.min_frequency_khz
        )

    def test_registered_with_platform_injection(self):
        assert "energy-aware" in POLICY_REGISTRY
        policy = policy_ref("energy-aware", platform="Galaxy S6").resolve()
        assert policy.name == "energy-aware"
        assert len(policy.cluster_specs) == 2


class TestEnergyAwareEndToEnd:
    def run_policy(self, policy, spec=None, target=55.0):
        """A sustained spinning busyloop session (no idle gap)."""
        spec = spec or odroid_xu3_spec()
        platform = Platform.from_spec(spec)
        workload = BusyLoopApp(target, num_threads=2, idle_gap_seconds=0.0)
        config = SimulationConfig(
            tick_seconds=0.02, duration_seconds=4.0, seed=7, warmup_seconds=0.5
        )
        session = Session(platform, workload, policy, config)
        return summarize(session.run())

    def test_beats_naive_all_big_placement(self):
        """The tentpole claim: model-driven placement beats race-to-idle
        (everything online at fmax — the naive all-big placement) on a
        registered spinning workload, on a registered big.LITTLE board."""
        from repro.policies.single_mechanism import RaceToIdlePolicy

        spec = get_phone_spec("Odroid-XU3")
        eas = self.run_policy(
            EnergyAwarePolicy.for_platform_spec(spec), spec=spec
        )
        naive = self.run_policy(RaceToIdlePolicy(), spec=spec)
        assert eas.energy_mj < naive.energy_mj
        assert eas.mean_cpu_power_mw < naive.mean_cpu_power_mw
        # And not by a hair: the little cluster at a sensible OPP is
        # several times cheaper than eight cores parked at fmax.
        assert eas.mean_cpu_power_mw < 0.5 * naive.mean_cpu_power_mw

    def test_work_is_conserved(self):
        spec = odroid_xu3_spec()
        summary = self.run_policy(EnergyAwarePolicy.for_platform_spec(spec), spec=spec)
        # The placement carries the demand: mean load sits near the
        # headroom target rather than saturating.
        assert summary.mean_load_percent < 95.0
