"""Whole-system policies: observation plumbing and decisions."""

import pytest

from repro.errors import ConfigError
from repro.policies import (
    AndroidDefaultPolicy,
    DcsOnlyPolicy,
    DvfsOnlyPolicy,
    PolicyDecision,
    RaceToIdlePolicy,
    StaticPolicy,
    SystemObservation,
)


def observation(opp_table, loads, freqs=None, online=None, delta=0.0, quota=1.0):
    n = len(loads)
    if freqs is None:
        freqs = (opp_table.min_frequency_khz,) * n
    if online is None:
        online = (True,) * n
    active = [l for l, on in zip(loads, online) if on]
    return SystemObservation(
        tick=0,
        dt_seconds=0.02,
        per_core_load_percent=tuple(loads),
        global_util_percent=sum(active) / len(active) if active else 0.0,
        delta_util_percent=delta,
        frequencies_khz=tuple(freqs),
        online_mask=tuple(online),
        quota=quota,
        opp_table=opp_table,
    )


class TestSystemObservation:
    def test_scaled_load(self, opp_table):
        obs = observation(
            opp_table,
            loads=(100.0, 0.0, 0.0, 0.0),
            freqs=(opp_table.max_frequency_khz,) + (opp_table.min_frequency_khz,) * 3,
        )
        assert obs.scaled_load_percent(0) == pytest.approx(100.0)
        fraction = opp_table.min_frequency_khz / opp_table.max_frequency_khz
        assert obs.scaled_load_percent(1) == pytest.approx(0.0)
        assert obs.total_scaled_load_percent == pytest.approx(100.0)
        assert obs.global_scaled_load_percent == pytest.approx(25.0)

    def test_online_count(self, opp_table):
        obs = observation(opp_table, (10.0,) * 4, online=(True, True, False, False))
        assert obs.online_count == 2
        assert obs.num_cores == 4


class TestStaticPolicy:
    def test_pins_point(self, opp_table):
        policy = StaticPolicy(2, 960_000)
        decision = policy.decide(observation(opp_table, (50.0,) * 4))
        assert decision.online_mask == [True, True, False, False]
        assert decision.target_frequencies_khz == [960_000.0] * 4

    def test_non_opp_rejected(self, opp_table):
        policy = StaticPolicy(2, 961_001)
        with pytest.raises(ConfigError):
            policy.decide(observation(opp_table, (50.0,) * 4))

    def test_too_many_cores_rejected(self, opp_table):
        policy = StaticPolicy(8, 960_000)
        with pytest.raises(ConfigError):
            policy.decide(observation(opp_table, (50.0,) * 4))


class TestAndroidDefault:
    def test_high_load_goes_to_fmax(self, opp_table):
        policy = AndroidDefaultPolicy()
        decision = policy.decide(observation(opp_table, (95.0,) * 4))
        assert decision.target_frequencies_khz[0] == float(
            opp_table.max_frequency_khz
        )

    def test_nohz_idle_core_keeps_frequency(self, opp_table):
        policy = AndroidDefaultPolicy()
        decision = policy.decide(
            observation(
                opp_table,
                loads=(95.0, 0.0, 0.0, 0.0),
                freqs=(opp_table.max_frequency_khz,) * 4,
            )
        )
        assert decision.target_frequencies_khz[1] is None

    def test_quota_always_full(self, opp_table):
        policy = AndroidDefaultPolicy()
        decision = policy.decide(observation(opp_table, (50.0,) * 4))
        assert decision.quota == 1.0

    def test_hotplug_disabled_variant(self, opp_table):
        policy = AndroidDefaultPolicy(enable_hotplug=False)
        decision = policy.decide(observation(opp_table, (1.0,) * 4))
        assert decision.online_mask is None

    def test_offline_core_gets_no_target(self, opp_table):
        policy = AndroidDefaultPolicy()
        decision = policy.decide(
            observation(opp_table, (50.0, 50.0, 0.0, 0.0), online=(True, True, False, False))
        )
        assert decision.target_frequencies_khz[2] is None

    def test_newly_onlined_core_gets_target(self, opp_table):
        policy = AndroidDefaultPolicy(
        )
        policy.hotplug.hold_up_ticks = 1
        obs = observation(
            opp_table,
            loads=(100.0, 0.0, 0.0, 0.0),
            freqs=(opp_table.max_frequency_khz,) + (opp_table.min_frequency_khz,) * 3,
            online=(True, False, False, False),
        )
        decision = policy.decide(obs)
        assert decision.online_mask[1]
        assert decision.target_frequencies_khz[1] is not None

    def test_grows_governor_list(self, opp_table):
        policy = AndroidDefaultPolicy(num_cores=1)
        decision = policy.decide(observation(opp_table, (50.0,) * 4))
        assert len(decision.target_frequencies_khz) == 4

    def test_validate_decision_shape(self, opp_table):
        policy = AndroidDefaultPolicy()
        obs = observation(opp_table, (50.0,) * 4)
        bad = PolicyDecision(target_frequencies_khz=[1.0])
        with pytest.raises(ConfigError):
            policy.validate_decision(bad, obs)


class TestSingleMechanism:
    def test_dvfs_only_never_touches_mask(self, opp_table):
        policy = DvfsOnlyPolicy()
        decision = policy.decide(observation(opp_table, (1.0,) * 4))
        assert decision.online_mask is None

    def test_dcs_only_fixed_frequency(self, opp_table):
        policy = DcsOnlyPolicy(frequency_khz=960_000)
        decision = policy.decide(observation(opp_table, (50.0,) * 4))
        assert decision.target_frequencies_khz == [960_000.0] * 4

    def test_dcs_only_defaults_to_fmax(self, opp_table):
        policy = DcsOnlyPolicy()
        decision = policy.decide(observation(opp_table, (50.0,) * 4))
        assert decision.target_frequencies_khz == [
            float(opp_table.max_frequency_khz)
        ] * 4

    def test_dcs_only_non_opp_rejected(self, opp_table):
        policy = DcsOnlyPolicy(frequency_khz=111)
        with pytest.raises(ConfigError):
            policy.decide(observation(opp_table, (50.0,) * 4))

    def test_race_to_idle_everything_on_max(self, opp_table):
        policy = RaceToIdlePolicy()
        decision = policy.decide(observation(opp_table, (1.0,) * 4))
        assert decision.online_mask == [True] * 4
        assert decision.target_frequencies_khz == [
            float(opp_table.max_frequency_khz)
        ] * 4
