"""The frame pipeline and the GeekBench-like benchmark."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import WorkloadContext
from repro.workloads.frames import FramePipeline
from repro.workloads.geekbench import (
    DEFAULT_PHASES,
    GeekbenchPhase,
    GeekbenchWorkload,
)

DT = 0.02


@pytest.fixture
def context(opp_table):
    return WorkloadContext(num_cores=4, opp_table=opp_table, dt_seconds=DT, seed=1)


class TestFramePipeline:
    def test_demand_at_target_fps(self):
        pipeline = FramePipeline(frame_cost_cycles=1e8, target_fps=60.0)
        assert pipeline.demand_cycles(DT) == pytest.approx(1e8 * 60 * DT)

    def test_full_execution_hits_target(self):
        pipeline = FramePipeline(frame_cost_cycles=1e6, target_fps=60.0)
        for _ in range(50):
            pipeline.record(1e6 * 60 * DT, DT)
        assert pipeline.mean_fps == pytest.approx(60.0, abs=1.0)

    def test_half_execution_halves_fps(self):
        pipeline = FramePipeline(frame_cost_cycles=1e6, target_fps=60.0)
        for _ in range(100):
            pipeline.record(1e6 * 30 * DT, DT)
        assert pipeline.mean_fps == pytest.approx(30.0, abs=1.0)

    def test_partial_frames_carry(self):
        pipeline = FramePipeline(frame_cost_cycles=100.0, target_fps=60.0)
        pipeline.record(50.0, DT)
        assert pipeline.completed_frames == 0
        pipeline.record(50.0, DT)
        assert pipeline.completed_frames == 1

    def test_fps_capped_at_target(self):
        pipeline = FramePipeline(frame_cost_cycles=1.0, target_fps=60.0)
        fps = pipeline.record(1e9, DT)
        assert fps == 60.0

    def test_reset(self):
        pipeline = FramePipeline(frame_cost_cycles=100.0)
        pipeline.record(1000.0, DT)
        pipeline.reset()
        assert pipeline.completed_frames == 0
        assert pipeline.last_tick_fps == 0.0

    def test_negative_execution_rejected(self):
        with pytest.raises(WorkloadError):
            FramePipeline(100.0).record(-1.0, DT)


class TestGeekbench:
    def test_default_rotation_interleaves(self):
        modes = [phase.multicore for phase in DEFAULT_PHASES]
        assert True in modes and False in modes
        # no two consecutive phases share a mode (interleaved)
        assert all(a != b for a, b in zip(modes, modes[1:]))

    def test_phase_lookup_repeats(self, context):
        workload = GeekbenchWorkload()
        workload.prepare(context)
        rotation_ticks = int(sum(p.duration_seconds for p in DEFAULT_PHASES) / DT)
        assert workload.phase_at(0).name == workload.phase_at(rotation_ticks).name

    def test_single_core_phase_demands_one_thread(self, context):
        workload = GeekbenchWorkload()
        workload.prepare(context)
        single_tick = 0  # sc-crypto first
        demands = workload.demand(single_tick)
        assert len(demands) == 1

    def test_multicore_phase_demands_all_threads(self, context):
        workload = GeekbenchWorkload()
        workload.prepare(context)
        mc_tick = int(1.2 / DT)  # inside mc-crypto
        assert workload.phase_at(mc_tick).multicore
        assert len(workload.demand(mc_tick)) == 4

    def test_score_scales_with_execution(self, context):
        fast = GeekbenchWorkload()
        fast.prepare(context)
        slow = GeekbenchWorkload()
        slow.prepare(context)
        for tick in range(100):
            fast.record_execution(tick, {0: 4e7})
            slow.record_execution(tick, {0: 1e7})
        assert fast.score() > slow.score()

    def test_memory_roofline_discounts_high_rates(self, context):
        """Twice the raw rate yields less than twice the effective score
        in a memory-intense phase."""
        phases = (GeekbenchPhase("mem", True, 1.0, 0.8),)
        low = GeekbenchWorkload(phases=phases, memory_bandwidth_cps=4.5e9)
        low.prepare(context)
        high = GeekbenchWorkload(phases=phases, memory_bandwidth_cps=4.5e9)
        high.prepare(context)
        low.record_execution(0, {0: 4.5e9 * DT})
        high.record_execution(0, {0: 9.0e9 * DT})
        assert high.score() < 2 * low.score()

    def test_empty_phases_rejected(self):
        with pytest.raises(WorkloadError):
            GeekbenchWorkload(phases=())

    def test_metrics_keys(self, context):
        workload = GeekbenchWorkload()
        workload.prepare(context)
        workload.record_execution(0, {0: 1e7})
        metrics = workload.metrics()
        assert set(metrics) == {"score", "effective_cycles", "raw_cycles"}
        assert metrics["effective_cycles"] <= metrics["raw_cycles"]
