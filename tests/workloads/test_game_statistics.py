"""Statistical intent of the game profiles (what Figures 10-13 rely on)."""

import numpy as np
import pytest

from repro.workloads.base import WorkloadContext
from repro.workloads.games import GAME_PROFILES, game_workload

DT = 0.02
TICKS = 3000  # one minute of demand


@pytest.fixture(scope="module")
def demand_stats(opp_table=None):
    from repro.soc.calibration import nexus5_opp_table

    table = nexus5_opp_table()
    stats = {}
    for name in GAME_PROFILES:
        totals = []
        for seed in (1, 2):
            workload = game_workload(name)
            workload.prepare(WorkloadContext(4, table, DT, seed))
            core_max = workload.context.core_max_cycles_per_tick
            per_tick = []
            for tick in range(TICKS):
                demanded = sum(d.cycles for d in workload.demand(tick))
                per_tick.append(demanded / (4 * core_max) * 100.0)
            totals.append(np.array(per_tick))
        series = np.concatenate(totals)
        stats[name] = {
            "mean": float(series.mean()),
            "std": float(series.std()),
            "cv": float(series.std() / series.mean()),
        }
    return stats


class TestDemandLevels:
    def test_all_games_demand_more_than_platform_half(self, demand_stats):
        """Every game's raw demand (render at 60 fps) is substantial."""
        for name, stat in demand_stats.items():
            assert stat["mean"] > 50.0, name

    def test_racing_games_are_the_heavy_ones(self, demand_stats):
        """The two racing titles carry the heaviest sustained demand."""
        by_mean = sorted(
            demand_stats, key=lambda n: demand_stats[n]["mean"], reverse=True
        )
        assert set(by_mean[:2]) == {"Real Racing 3", "Asphalt 8"}

    def test_demand_ordering_matches_power_ordering(self, demand_stats):
        """Asphalt 8 and Real Racing 3 are the heavy games."""
        heavy = {"Real Racing 3", "Asphalt 8"}
        light = {"Badland", "Angry Birds"}
        heaviest_two = sorted(
            demand_stats, key=lambda n: demand_stats[n]["mean"], reverse=True
        )[:2]
        assert set(heaviest_two) <= heavy | {"Subway Surf"}
        lightest = min(demand_stats, key=lambda n: demand_stats[n]["mean"])
        assert lightest in light | {"Subway Surf"}


class TestDynamicity:
    def test_real_racing_is_the_steadiest(self, demand_stats):
        """Section 6: RR3's fixed demand leaves MobiCore no room."""
        cvs = {name: stat["cv"] for name, stat in demand_stats.items()}
        assert min(cvs, key=cvs.get) == "Real Racing 3"

    def test_subway_surf_is_the_most_dynamic(self, demand_stats):
        """Section 6: SS's bursts are where the default wastes the most."""
        cvs = {name: stat["cv"] for name, stat in demand_stats.items()}
        assert max(cvs, key=cvs.get) == "Subway Surf"

    def test_all_games_have_bounded_variation(self, demand_stats):
        for name, stat in demand_stats.items():
            assert stat["cv"] < 1.0, name
