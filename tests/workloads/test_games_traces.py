"""The five game workloads and trace record/replay."""

import pytest

from repro.errors import TraceError, WorkloadError
from repro.workloads.base import WorkloadContext
from repro.workloads.games import GAME_PROFILES, GameProfile, game_workload
from repro.workloads.traces import DemandTrace, TraceWorkload

DT = 0.02


@pytest.fixture
def context(opp_table):
    return WorkloadContext(num_cores=4, opp_table=opp_table, dt_seconds=DT, seed=7)


class TestGameCatalog:
    def test_five_games(self):
        assert len(GAME_PROFILES) == 5

    def test_paper_titles(self):
        for name in (
            "Real Racing 3",
            "Subway Surf",
            "Badland",
            "Angry Birds",
            "Asphalt 8",
        ):
            assert game_workload(name).name == name

    def test_unknown_game_rejected(self):
        with pytest.raises(WorkloadError):
            game_workload("Doom")

    def test_real_racing_is_steady(self):
        profile = GAME_PROFILES["Real Racing 3"]
        assert profile.burst_start_prob == 0.0

    def test_subway_surf_is_burstiest(self):
        burstiness = {
            name: profile.burst_start_prob * profile.burst_add_percent
            for name, profile in GAME_PROFILES.items()
        }
        assert max(burstiness, key=burstiness.get) == "Subway Surf"

    def test_fps_ceilings_in_games_band(self, opp_table):
        """Every game's one-core-at-fmax FPS ceiling sits near 15-23."""
        fmax_cps = opp_table.max_frequency_khz * 1000.0
        for profile in GAME_PROFILES.values():
            ceiling = fmax_cps / profile.frame_cost_cycles
            assert 15.0 <= ceiling <= 25.0


class TestGameWorkload:
    def test_tasks_are_render_plus_workers(self, context):
        workload = game_workload("Badland")
        workload.prepare(context)
        tasks = workload.tasks()
        assert tasks[0].name.endswith("render")
        assert len(tasks) == 1 + GAME_PROFILES["Badland"].worker_count

    def test_render_demand_constant(self, context):
        workload = game_workload("Badland")
        workload.prepare(context)
        first = workload.demand(0)[0]
        second = workload.demand(1)[0]
        assert first.cycles == pytest.approx(second.cycles)

    def test_execution_drives_fps(self, context):
        workload = game_workload("Badland")
        workload.prepare(context)
        cost = workload.profile.frame_cost_cycles
        for tick in range(100):
            workload.record_execution(tick, {0: cost * 20 * DT})
        assert workload.metrics()["mean_fps"] == pytest.approx(20.0, abs=0.5)

    def test_metrics(self, context):
        workload = game_workload("Angry Birds")
        workload.prepare(context)
        workload.record_execution(0, {0: 1e7})
        metrics = workload.metrics()
        assert "mean_fps" in metrics and "completed_frames" in metrics

    def test_seeded_determinism(self, opp_table):
        def demands(seed):
            workload = game_workload("Subway Surf")
            workload.prepare(WorkloadContext(4, opp_table, DT, seed))
            return [
                tuple((d.task.task_id, d.cycles) for d in workload.demand(t))
                for t in range(50)
            ]

        assert demands(1) == demands(1)
        assert demands(1) != demands(2)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            GameProfile(name="bad", frame_cost_cycles=1e8, worker_count=-1,
                        worker_mean_percent=10.0)


class TestDemandTrace:
    def test_capture_and_replay_identical(self, context, opp_table):
        source = game_workload("Badland")
        trace = DemandTrace.capture(source, context, ticks=40)
        replay = TraceWorkload(trace)
        replay.prepare(
            WorkloadContext(4, opp_table, DT, seed=999)  # seed is irrelevant
        )
        fresh = game_workload("Badland")
        fresh.prepare(context)
        for tick in range(40):
            expected = {d.task.task_id: d.cycles for d in fresh.demand(tick)}
            actual = {d.task.task_id: d.cycles for d in replay.demand(tick)}
            assert actual == pytest.approx(expected)

    def test_replay_past_end_is_idle(self, context):
        trace = DemandTrace.capture(game_workload("Badland"), context, ticks=5)
        replay = TraceWorkload(trace)
        replay.prepare(context)
        assert replay.demand(100) == []

    def test_replay_loops_when_asked(self, context):
        trace = DemandTrace.capture(game_workload("Badland"), context, ticks=5)
        replay = TraceWorkload(trace, loop=True)
        replay.prepare(context)
        assert replay.demand(5) is not None
        first = {d.task.task_id: d.cycles for d in replay.demand(0)}
        looped = {d.task.task_id: d.cycles for d in replay.demand(5)}
        assert looped == pytest.approx(first)

    def test_csv_roundtrip(self, context):
        trace = DemandTrace.capture(game_workload("Angry Birds"), context, ticks=20)
        parsed = DemandTrace.from_csv(trace.to_csv())
        assert len(parsed) == len(trace)
        assert parsed.source_name == trace.source_name
        for tick in range(len(trace)):
            assert parsed.demand_at(tick) == pytest.approx(trace.demand_at(tick))

    def test_bad_csv_rejected(self):
        with pytest.raises(TraceError):
            DemandTrace.from_csv("")

    def test_unknown_task_rejected(self):
        with pytest.raises(TraceError):
            DemandTrace(tasks=[], ticks=[{0: 1.0}])

    def test_capture_needs_ticks(self, context):
        with pytest.raises(TraceError):
            DemandTrace.capture(game_workload("Badland"), context, ticks=0)
