"""The busy-loop kernel app and the synthetic pattern generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import WorkloadContext
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.synthetic import (
    BurstWorkload,
    ConstantWorkload,
    RampWorkload,
    SineWorkload,
    StepWorkload,
)

DT = 0.02


@pytest.fixture
def context(opp_table):
    return WorkloadContext(num_cores=4, opp_table=opp_table, dt_seconds=DT, seed=1)


def total_demand(workload, tick):
    return sum(d.cycles for d in workload.demand(tick))


class TestWorkloadContext:
    def test_capacities(self, context, opp_table):
        one = opp_table.max_frequency_khz * 1000 * DT
        assert context.core_max_cycles_per_tick == pytest.approx(one)
        assert context.platform_max_cycles_per_tick == pytest.approx(4 * one)

    def test_rng_deterministic(self, context):
        assert context.rng().random() == context.rng().random()

    def test_validation(self, opp_table):
        with pytest.raises(WorkloadError):
            WorkloadContext(0, opp_table, DT, 1)


class TestBusyLoop:
    def test_unprepared_raises(self):
        with pytest.raises(WorkloadError):
            BusyLoopApp(50.0).demand(0)

    def test_global_mode_targets_platform_fraction(self, context):
        app = BusyLoopApp(50.0, idle_gap_seconds=0.0)
        app.prepare(context)
        assert total_demand(app, 0) == pytest.approx(
            0.5 * context.platform_max_cycles_per_tick
        )

    def test_one_thread_per_core_by_default(self, context):
        app = BusyLoopApp(50.0)
        app.prepare(context)
        assert len(app.tasks()) == 4

    def test_reference_mode_targets_pinned_capacity(self, context):
        app = BusyLoopApp(
            60.0, num_threads=1, idle_gap_seconds=0.0, reference_frequency_khz=300_000
        )
        app.prepare(context)
        assert total_demand(app, 0) == pytest.approx(0.6 * 300_000e3 * DT)

    def test_idle_gap_produces_idle_ticks(self, context):
        app = BusyLoopApp(50.0, idle_gap_seconds=0.040, cycle_seconds=1.0)
        app.prepare(context)
        ticks_per_cycle = int(1.0 / DT)
        demands = [total_demand(app, t) for t in range(ticks_per_cycle)]
        idle_ticks = sum(1 for d in demands if d == 0)
        assert idle_ticks == 2  # 40 ms at 20 ms ticks

    def test_idle_gap_compensated_in_average(self, context):
        app = BusyLoopApp(50.0, idle_gap_seconds=0.040, cycle_seconds=1.0)
        app.prepare(context)
        ticks_per_cycle = int(1.0 / DT)
        mean = sum(total_demand(app, t) for t in range(ticks_per_cycle)) / ticks_per_cycle
        assert mean == pytest.approx(0.5 * context.platform_max_cycles_per_tick, rel=0.01)

    def test_gap_longer_than_cycle_rejected(self):
        with pytest.raises(WorkloadError):
            BusyLoopApp(50.0, idle_gap_seconds=2.0, cycle_seconds=1.0)

    def test_records_execution(self, context):
        app = BusyLoopApp(50.0)
        app.prepare(context)
        app.record_execution(0, {0: 1000.0})
        assert app.metrics()["executed_cycles"] == pytest.approx(1000.0)


class TestSyntheticPatterns:
    def test_constant(self, context):
        workload = ConstantWorkload(25.0)
        workload.prepare(context)
        assert workload.level_percent(0) == 25.0
        assert workload.level_percent(999) == 25.0

    def test_step_sequence(self, context):
        workload = StepWorkload([(1.0, 10.0), (1.0, 80.0)])
        workload.prepare(context)
        assert workload.level_percent(0) == 10.0
        assert workload.level_percent(60) == 80.0
        assert workload.level_percent(100) == 10.0  # loops

    def test_step_needs_steps(self):
        with pytest.raises(WorkloadError):
            StepWorkload([])

    def test_ramp(self, context):
        workload = RampWorkload(0.0, 100.0, ramp_seconds=1.0)
        workload.prepare(context)
        assert workload.level_percent(0) == pytest.approx(0.0)
        assert workload.level_percent(25) == pytest.approx(50.0)
        assert workload.level_percent(200) == pytest.approx(100.0)  # holds

    def test_sine_oscillates_around_mean(self, context):
        workload = SineWorkload(50.0, 20.0, period_seconds=1.0)
        workload.prepare(context)
        levels = [workload.level_percent(t) for t in range(50)]
        assert max(levels) == pytest.approx(70.0, abs=1.0)
        assert min(levels) == pytest.approx(30.0, abs=1.0)
        assert sum(levels) / len(levels) == pytest.approx(50.0, abs=1.0)

    def test_burst_levels(self, context):
        workload = BurstWorkload(10.0, 90.0, burst_start_prob=0.2, mean_burst_ticks=5)
        workload.prepare(context)
        levels = {workload.level_percent(t) for t in range(300)}
        assert levels == {10.0, 90.0}

    def test_burst_deterministic_per_seed(self, opp_table):
        def levels(seed):
            workload = BurstWorkload(10.0, 90.0, burst_start_prob=0.2)
            workload.prepare(WorkloadContext(4, opp_table, DT, seed))
            return [workload.level_percent(t) for t in range(100)]

        assert levels(1) == levels(1)
        assert levels(1) != levels(2)

    def test_demand_clamped_to_platform(self, context):
        workload = SineWorkload(90.0, 20.0, period_seconds=1.0)
        workload.prepare(context)
        for tick in range(100):
            assert total_demand(workload, tick) <= (
                context.platform_max_cycles_per_tick + 1e-6
            )
