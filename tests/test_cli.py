"""The command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.scenario import Scenario, ScenarioMatrix
from repro.config import SimulationConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
PAPER_EVAL = REPO_ROOT / "examples" / "scenarios" / "paper_eval.json"


def short_scenario(**overrides):
    values = dict(
        workload="busyloop",
        workload_params={"target_load_percent": 30.0},
        config=SimulationConfig(duration_seconds=5.0, warmup_seconds=1.0),
        pin_uncore_max=False,
    )
    values.update(overrides)
    return Scenario(**values)


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("table1", "fig3", "fig9a", "fig13"):
            assert experiment_id in out


class TestRun:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth reduction" in out
        assert "quota" in out

    def test_unknown_id_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSpecs:
    def test_single_phone(self, capsys):
        assert main(["specs", "Nexus 5"]) == 0
        out = capsys.readouterr().out
        assert "Snapdragon 800" in out

    def test_all_phones(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Nexus S" in out and "LG G3" in out

    def test_unknown_phone(self, capsys):
        assert main(["specs", "iPhone"]) == 2
        assert "unknown phone" in capsys.readouterr().err


class TestCompare:
    def test_busyloop_comparison(self, capsys):
        code = main(
            ["compare", "--workload", "busyloop:30", "--duration", "5", "--warmup", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "power saving" in out
        assert "mobicore" in out

    def test_game_comparison_reports_fps(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "game:Badland",
                "--duration",
                "5",
                "--warmup",
                "1",
                "--pin-uncore",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FPS" in out
        assert "fps ratio" in out

    def test_unknown_workload_kind(self, capsys):
        assert main(["compare", "--workload", "doom:3"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_game_without_title(self, capsys):
        assert main(["compare", "--workload", "game:"]) == 2
        assert "needs a title" in capsys.readouterr().err

    def test_jobs_and_cache_dir(self, capsys, tmp_path):
        argv = [
            "compare", "--workload", "busyloop:30", "--duration", "5",
            "--warmup", "1", "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 2  # both sessions cached
        assert main(argv) == 0  # warm re-run, served from the cache
        assert capsys.readouterr().out == cold


class TestScenarios:
    def test_list_shows_registered_keys(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for key in ("mobicore", "game:asphalt8", "Nexus 5", "busyloop"):
            assert key in out

    def test_validate_the_committed_paper_matrix(self, capsys):
        assert main(["scenarios", "validate", str(PAPER_EVAL)]) == 0
        assert "20 scenarios valid" in capsys.readouterr().out

    def test_validate_reports_unknown_names(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        document = json.loads(Scenario().to_json())
        document["policy"] = "not-a-policy"
        path.write_text(json.dumps(document), encoding="utf-8")
        assert main(["scenarios", "validate", str(path)]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_expand_prints_grid_points_and_cache_keys(self, capsys):
        assert main(["scenarios", "expand", str(PAPER_EVAL)]) == 0
        out = capsys.readouterr().out
        assert "game:asphalt8 x mobicore" in out
        assert "cache key" in out

    def test_run_single_scenario_writes_summaries(self, capsys, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(short_scenario().to_json(), encoding="utf-8")
        out_file = tmp_path / "summaries.json"
        code = main(["scenarios", "run", str(path), "--out", str(out_file)])
        assert code == 0
        assert "busyloop/android-default@0" in capsys.readouterr().out
        summaries = json.loads(out_file.read_text(encoding="utf-8"))
        assert len(summaries) == 1
        assert summaries[0]["policy"].startswith("android-default")

    def test_run_matrix_with_only_selects_indices(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        matrix = ScenarioMatrix(base=short_scenario(), axes={"seed": [1, 2, 3]})
        path.write_text(matrix.to_json(), encoding="utf-8")
        assert main(["scenarios", "run", str(path), "--only", "1"]) == 0
        out = capsys.readouterr().out
        assert "busyloop/android-default@2" in out
        assert "@1" not in out and "@3" not in out

    def test_run_only_out_of_range_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(short_scenario().to_json(), encoding="utf-8")
        assert main(["scenarios", "run", str(path), "--only", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["scenarios", "validate", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestScenarioFlags:
    def test_compare_accepts_a_scenario_document(self, capsys, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(short_scenario().to_json(), encoding="utf-8")
        assert main(["compare", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "power saving" in out
        assert "mobicore" in out

    def test_compare_rejects_matrix_documents(self, capsys, tmp_path):
        path = tmp_path / "grid.json"
        matrix = ScenarioMatrix(base=short_scenario(), axes={"seed": [1, 2]})
        path.write_text(matrix.to_json(), encoding="utf-8")
        assert main(["compare", "--scenario", str(path)]) == 2
        assert "single-scenario" in capsys.readouterr().err

    def test_run_accepts_a_scenario_document(self, capsys, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(short_scenario().to_json(), encoding="utf-8")
        assert main(["run", "--scenario", str(path)]) == 0
        assert "busyloop/android-default@0" in capsys.readouterr().out

    def test_run_without_ids_or_scenario_fails_cleanly(self, capsys):
        assert main(["run"]) == 2
        assert "experiment ids" in capsys.readouterr().err


class TestTrace:
    def trace_args(self, out, fmt="perfetto", extra=()):
        return [
            "trace", "run", "--workload", "busyloop:40", "--duration", "2",
            "--warmup", "0.5", "--policies", "android", "--format", fmt,
            "--out", str(out), *extra,
        ]

    def test_perfetto_export_and_summary(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(self.trace_args(out)) == 0
        run_output = capsys.readouterr().out
        assert "busyloop:40/android" in run_output
        assert "wrote perfetto trace" in run_output
        assert out.exists()
        assert main(["trace", "summary", str(out)]) == 0
        summary_output = capsys.readouterr().out
        assert "cpufreq" in summary_output
        assert "total" in summary_output

    def test_jsonl_with_filters_and_stats(self, capsys, tmp_path):
        out = tmp_path / "trace.jsonl"
        extra = ("--events", "cpufreq,hotplug", "--ring", "500", "--stats",
                 "--jobs", "2", "--workload", "busyloop:70")
        assert main(self.trace_args(out, fmt="jsonl", extra=extra)) == 0
        run_output = capsys.readouterr().out
        assert "sessions executed" in run_output
        assert "ticks/second" in run_output
        assert main(["trace", "summary", str(out)]) == 0
        summary_output = capsys.readouterr().out
        assert "cpufreq:frequency_transition" in summary_output
        assert "counters:tick" not in summary_output  # filtered out

    def test_csv_format(self, capsys, tmp_path):
        out = tmp_path / "trace.csv"
        assert main(self.trace_args(out, fmt="csv")) == 0
        capsys.readouterr()
        header = out.read_text(encoding="utf-8").splitlines()[0]
        assert header == "ts_us,session,category,name,payload"
        assert main(["trace", "summary", str(out)]) == 0
        assert "policy:decision" in capsys.readouterr().out

    def test_unknown_policy_fails_cleanly(self, capsys, tmp_path):
        argv = self.trace_args(tmp_path / "t.json")
        argv[argv.index("android")] = "performance"
        assert main(argv) == 2
        assert "unknown policy" in capsys.readouterr().err


class TestStatsFlag:
    def test_compare_stats(self, capsys):
        argv = [
            "compare", "--workload", "busyloop:30", "--duration", "5",
            "--warmup", "1", "--stats",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sessions executed" in out
        assert "ticks simulated" in out
        assert "memo hits" in out
        assert "wall time (s)" in out
        assert "trace bytes recorded" in out
        assert "peak recorder memory" in out

    def test_stats_table_always_renders_robustness_rows(self, capsys):
        """Clean runs still show the failure counters, as zeros."""
        argv = [
            "compare", "--workload", "busyloop:30", "--duration", "5",
            "--warmup", "1", "--stats",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for row in ("disk cache hits", "retries", "timeouts",
                    "corrupt cache entries", "failed specs"):
            assert row in out, row


class TestStatusAndMetrics:
    def sweep(self, tmp_path):
        status_dir = tmp_path / "status"
        argv = [
            "compare", "--workload", "busyloop:30", "--duration", "5",
            "--warmup", "1", "--jobs", "2", "--status-dir", str(status_dir),
        ]
        assert main(argv) == 0
        return status_dir

    def test_sweep_writes_heartbeat_and_metrics_files(self, capsys, tmp_path):
        status_dir = self.sweep(tmp_path)
        capsys.readouterr()
        assert (status_dir / "heartbeat.jsonl").exists()
        assert (status_dir / "metrics.json").exists()

    def test_status_renders_the_finished_sweep(self, capsys, tmp_path):
        status_dir = self.sweep(tmp_path)
        capsys.readouterr()
        assert main(["status", str(status_dir)]) == 0
        out = capsys.readouterr().out
        assert "2/2 settled" in out
        assert "finished" in out
        assert "2 ok" in out

    def test_metrics_emits_valid_prometheus_text(self, capsys, tmp_path):
        from repro.obs.metrics_plane import parse_prometheus_text

        status_dir = self.sweep(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(status_dir)]) == 0
        out = capsys.readouterr().out
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in parse_prometheus_text(out)
        )
        assert samples[("repro_runner_sessions_executed_total", ())] == 2.0

    def test_metrics_json_format_round_trips(self, capsys, tmp_path):
        status_dir = self.sweep(tmp_path)
        capsys.readouterr()
        assert main(["metrics", str(status_dir), "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["repro_runner_sessions_executed_total"]["samples"] == [
            {"labels": {}, "value": 2.0}
        ]

    def test_status_without_a_sweep_fails_cleanly(self, capsys, tmp_path):
        assert main(["status", str(tmp_path)]) == 2
        assert "heartbeat" in capsys.readouterr().err

    def test_metrics_without_a_sweep_fails_cleanly(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path)]) == 2
        assert "metrics" in capsys.readouterr().err
