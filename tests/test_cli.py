"""The command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("table1", "fig3", "fig9a", "fig13"):
            assert experiment_id in out


class TestRun:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth reduction" in out
        assert "quota" in out

    def test_unknown_id_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSpecs:
    def test_single_phone(self, capsys):
        assert main(["specs", "Nexus 5"]) == 0
        out = capsys.readouterr().out
        assert "Snapdragon 800" in out

    def test_all_phones(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Nexus S" in out and "LG G3" in out

    def test_unknown_phone(self, capsys):
        assert main(["specs", "iPhone"]) == 2
        assert "unknown phone" in capsys.readouterr().err


class TestCompare:
    def test_busyloop_comparison(self, capsys):
        code = main(
            ["compare", "--workload", "busyloop:30", "--duration", "5", "--warmup", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "power saving" in out
        assert "mobicore" in out

    def test_game_comparison_reports_fps(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "game:Badland",
                "--duration",
                "5",
                "--warmup",
                "1",
                "--pin-uncore",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FPS" in out
        assert "fps ratio" in out

    def test_unknown_workload_kind(self, capsys):
        assert main(["compare", "--workload", "doom:3"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_game_without_title(self, capsys):
        assert main(["compare", "--workload", "game:"]) == 2
        assert "needs a title" in capsys.readouterr().err

    def test_jobs_and_cache_dir(self, capsys, tmp_path):
        argv = [
            "compare", "--workload", "busyloop:30", "--duration", "5",
            "--warmup", "1", "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 2  # both sessions cached
        assert main(argv) == 0  # warm re-run, served from the cache
        assert capsys.readouterr().out == cold


class TestTrace:
    def trace_args(self, out, fmt="perfetto", extra=()):
        return [
            "trace", "run", "--workload", "busyloop:40", "--duration", "2",
            "--warmup", "0.5", "--policies", "android", "--format", fmt,
            "--out", str(out), *extra,
        ]

    def test_perfetto_export_and_summary(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(self.trace_args(out)) == 0
        run_output = capsys.readouterr().out
        assert "busyloop:40/android" in run_output
        assert "wrote perfetto trace" in run_output
        assert out.exists()
        assert main(["trace", "summary", str(out)]) == 0
        summary_output = capsys.readouterr().out
        assert "cpufreq" in summary_output
        assert "total" in summary_output

    def test_jsonl_with_filters_and_stats(self, capsys, tmp_path):
        out = tmp_path / "trace.jsonl"
        extra = ("--events", "cpufreq,hotplug", "--ring", "500", "--stats",
                 "--jobs", "2", "--workload", "busyloop:70")
        assert main(self.trace_args(out, fmt="jsonl", extra=extra)) == 0
        run_output = capsys.readouterr().out
        assert "sessions executed" in run_output
        assert "ticks/second" in run_output
        assert main(["trace", "summary", str(out)]) == 0
        summary_output = capsys.readouterr().out
        assert "cpufreq:frequency_transition" in summary_output
        assert "counters:tick" not in summary_output  # filtered out

    def test_csv_format(self, capsys, tmp_path):
        out = tmp_path / "trace.csv"
        assert main(self.trace_args(out, fmt="csv")) == 0
        capsys.readouterr()
        header = out.read_text(encoding="utf-8").splitlines()[0]
        assert header == "ts_us,session,category,name,payload"
        assert main(["trace", "summary", str(out)]) == 0
        assert "policy:decision" in capsys.readouterr().out

    def test_unknown_policy_fails_cleanly(self, capsys, tmp_path):
        argv = self.trace_args(tmp_path / "t.json")
        argv[argv.index("android")] = "performance"
        assert main(argv) == 2
        assert "unknown policy" in capsys.readouterr().err


class TestStatsFlag:
    def test_compare_stats(self, capsys):
        argv = [
            "compare", "--workload", "busyloop:30", "--duration", "5",
            "--warmup", "1", "--stats",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sessions executed" in out
        assert "ticks simulated" in out
        assert "memo hits" in out
        assert "wall time (s)" in out
