"""The command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("table1", "fig3", "fig9a", "fig13"):
            assert experiment_id in out


class TestRun:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth reduction" in out
        assert "quota" in out

    def test_unknown_id_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSpecs:
    def test_single_phone(self, capsys):
        assert main(["specs", "Nexus 5"]) == 0
        out = capsys.readouterr().out
        assert "Snapdragon 800" in out

    def test_all_phones(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Nexus S" in out and "LG G3" in out

    def test_unknown_phone(self, capsys):
        assert main(["specs", "iPhone"]) == 2
        assert "unknown phone" in capsys.readouterr().err


class TestCompare:
    def test_busyloop_comparison(self, capsys):
        code = main(
            ["compare", "--workload", "busyloop:30", "--duration", "5", "--warmup", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "power saving" in out
        assert "mobicore" in out

    def test_game_comparison_reports_fps(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "game:Badland",
                "--duration",
                "5",
                "--warmup",
                "1",
                "--pin-uncore",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FPS" in out
        assert "fps ratio" in out

    def test_unknown_workload_kind(self, capsys):
        assert main(["compare", "--workload", "doom:3"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_game_without_title(self, capsys):
        assert main(["compare", "--workload", "game:"]) == 2
        assert "needs a title" in capsys.readouterr().err

    def test_jobs_and_cache_dir(self, capsys, tmp_path):
        argv = [
            "compare", "--workload", "busyloop:30", "--duration", "5",
            "--warmup", "1", "--jobs", "2", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 2  # both sessions cached
        assert main(argv) == 0  # warm re-run, served from the cache
        assert capsys.readouterr().out == cold
