"""Experiment store tests: index, backfill, merge, shard, gc."""
