"""ExperimentStore: backfill migration, queries, merge, sharding, gc.

The store is a *view* over the v3 result cache: the acceptance bar is
that opening a warm cache as a store recomputes nothing and reads back
bit-identical summaries, that the sqlite index and a raw blob scan can
never disagree, and that shard stores merge into exactly the rows an
unsharded run would have produced.
"""

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import RunnerError, StoreError
from repro.runner import SessionRunner, SessionSpec
from repro.runner.cache import ResultCache
from repro.scenario import (
    Scenario,
    ScenarioMatrix,
    policy_ref,
    shard_scenarios,
    workload_ref,
)
from repro.scenario.compile import compile_scenario
from repro.store import (
    AXIS_COLUMNS,
    QUERYABLE_COLUMNS,
    ExperimentStore,
    StoreQuery,
    index_row_from_document,
)

CFG = SimulationConfig(duration_seconds=2.0, seed=0, warmup_seconds=0.5)


def sweep_specs(seeds=(0, 1), policies=("android-default", "mobicore")):
    """A small real policy x seed grid (cheap 2 s sessions)."""
    specs = []
    for seed in seeds:
        for policy in policies:
            kwargs = {"platform": "Nexus 5"} if policy == "mobicore" else {}
            specs.append(
                SessionSpec(
                    platform="Nexus 5",
                    policy=policy_ref(policy, **kwargs),
                    workload=workload_ref("busyloop", target_load_percent=40.0),
                    config=CFG.with_seed(seed),
                )
            )
    return specs


@pytest.fixture
def warm_cache(tmp_path):
    """A v3 cache populated by a real runner, plus what it computed."""
    runner = SessionRunner(jobs=1, cache_dir=tmp_path)
    specs = sweep_specs()
    summaries = runner.run(specs)
    return tmp_path, specs, summaries


class TestWarmCacheMigration:
    """Satellite: a warm v3 cache opens as a store with zero recomputes."""

    def test_backfill_indexes_every_entry_without_recompute(self, warm_cache):
        root, specs, summaries = warm_cache
        with ExperimentStore(root) as store:
            assert store.counters.backfilled == len(specs)
            assert store.counters.ingests == 0
            assert len(store) == len(specs)
            assert set(store.keys()) == {spec.cache_key() for spec in specs}

    def test_backfilled_summaries_are_bit_identical(self, warm_cache):
        root, specs, summaries = warm_cache
        with ExperimentStore(root) as store:
            by_key = {
                spec.cache_key(): summary
                for spec, summary in zip(specs, summaries)
            }
            read = store.summaries()
        assert len(read) == len(specs)
        # summaries() orders by key; every row must equal the live result
        # field for field (dataclass equality covers every float bit).
        for spec_key, summary in zip(sorted(by_key), read):
            assert summary == by_key[spec_key]

    def test_store_backed_rerun_recomputes_nothing(self, warm_cache):
        root, specs, summaries = warm_cache
        runner = SessionRunner(jobs=1, store_dir=root)
        assert runner.run(specs) == summaries
        assert runner.last_stats.sessions_executed == 0
        assert runner.last_stats.cache_hits == len(specs)
        assert runner.last_stats.store_hits == len(specs)

    def test_backfill_is_lazy_not_repeated(self, warm_cache):
        root, specs, _ = warm_cache
        with ExperimentStore(root):
            pass
        with ExperimentStore(root) as again:
            assert again.counters.backfilled == 0
            assert len(again) == len(specs)


class TestLiveIngest:
    def test_store_dir_runner_indexes_as_it_caches(self, tmp_path):
        runner = SessionRunner(jobs=1, store_dir=tmp_path)
        specs = sweep_specs(seeds=(0,))
        runner.run(specs)
        assert runner.store.counters.ingests == len(specs)
        rows = runner.store.query(StoreQuery(columns=AXIS_COLUMNS))
        assert {row["policy"] for row in rows} == {"android-default", "mobicore"}
        assert {row["platform"] for row in rows} == {"Nexus 5"}
        assert {row["workload"] for row in rows} == {"busyloop"}
        assert {row["seed"] for row in rows} == {0}
        assert {row["fault_plan"] for row in rows} == {""}

    def test_store_dir_and_cache_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(RunnerError):
            SessionRunner(cache_dir=tmp_path / "a", store_dir=tmp_path / "b")

    def test_index_row_requires_summary_and_spec(self):
        with pytest.raises(StoreError):
            index_row_from_document("deadbeef", {"version": 3})


class TestQuery:
    @pytest.fixture
    def store(self, warm_cache):
        root, _, _ = warm_cache
        with ExperimentStore(root) as store:
            yield store

    def test_query_equals_blob_scan(self, store):
        for query in (
            StoreQuery(),
            StoreQuery(policy="mobicore"),
            StoreQuery(seed=1),
            StoreQuery(columns=QUERYABLE_COLUMNS),
        ):
            assert store.query(query) == store.scan(query)

    def test_axis_filters_compose(self, store):
        rows = store.query(StoreQuery(policy="mobicore", seed=1))
        assert len(rows) == 1
        assert rows[0]["policy"] == "mobicore"
        assert rows[0]["seed"] == 1

    def test_projection_controls_columns(self, store):
        rows = store.query(StoreQuery(columns=("key", "energy_mj")))
        assert rows and all(set(row) == {"key", "energy_mj"} for row in rows)

    def test_unknown_column_is_a_typed_error(self):
        with pytest.raises(StoreError):
            StoreQuery(columns=("key", "no_such_column"))

    def test_non_int_seed_is_a_typed_error(self):
        with pytest.raises(StoreError):
            StoreQuery(seed="zero")

    def test_rows_come_back_in_key_order(self, store):
        keys = [row["key"] for row in store.query(StoreQuery(columns=("key",)))]
        assert keys == sorted(keys)


class TestMerge:
    def split_stores(self, tmp_path):
        """Two single-policy shard stores plus their union's specs."""
        specs = sweep_specs()
        halves = (specs[0::2], specs[1::2])
        roots = (tmp_path / "shard0", tmp_path / "shard1")
        for root, half in zip(roots, halves):
            SessionRunner(jobs=1, store_dir=root).run(half)
        return roots, specs

    def test_merge_unions_shards(self, tmp_path):
        (left, right), specs = self.split_stores(tmp_path)
        with ExperimentStore(tmp_path / "merged") as merged:
            assert merged.merge(left) == 2
            assert merged.merge(right) == 2
            assert set(merged.keys()) == {spec.cache_key() for spec in specs}

    def test_merge_is_idempotent(self, tmp_path):
        (left, _), _ = self.split_stores(tmp_path)
        with ExperimentStore(tmp_path / "merged") as merged:
            assert merged.merge(left) == 2
            assert merged.merge(left) == 0

    def test_checksum_conflict_is_a_typed_error(self, tmp_path):
        (left, right), _ = self.split_stores(tmp_path)
        with ExperimentStore(left) as store:
            key = store.keys()[0]
        # Forge a conflicting entry in a third store: same cache key,
        # different summary payload (checksum recomputed so the entry
        # itself is valid — only the cross-store claim is inconsistent).
        from repro.runner.cache import summary_checksum

        evil_root = tmp_path / "evil"
        evil_root.mkdir()
        document = json.loads((left / f"{key}.json").read_text())
        document["summary"]["mean_power_mw"] += 1.0
        document["checksum"] = summary_checksum(document["summary"])
        (evil_root / f"{key}.json").write_text(
            json.dumps(document, sort_keys=True)
        )
        with ExperimentStore(tmp_path / "merged") as merged:
            merged.merge(left)
            with pytest.raises(StoreError):
                merged.merge(evil_root)

    def test_merge_copies_blobs_not_just_rows(self, tmp_path):
        (left, _), _ = self.split_stores(tmp_path)
        with ExperimentStore(tmp_path / "merged") as merged:
            merged.merge(left)
            # scan() reads blobs only: rows present there prove the
            # entry files came across, not merely index rows.
            assert merged.scan() == merged.query(StoreQuery())


class TestShardedSweepParity:
    """The acceptance gate: shard 0/2 + 1/2 merged == unsharded, row for row."""

    def matrix(self):
        return ScenarioMatrix(
            base=Scenario(
                platform="Nexus 5",
                workload="busyloop",
                workload_params={"target_load_percent": 40.0},
                config=CFG,
            ),
            axes={
                "seed": (0, 1),
                "policy": ("android-default", "mobicore"),
            },
        )

    def test_shards_partition_the_expansion_exactly(self):
        scenarios = self.matrix().expand()
        shards = [shard_scenarios(scenarios, i, 3) for i in range(3)]
        flattened = [
            scenario for index in range(len(scenarios))
            for scenario in [scenarios[index]]
        ]
        assert sorted(
            (scenario.describe() for shard in shards for scenario in shard)
        ) == sorted(scenario.describe() for scenario in flattened)
        assert sum(len(shard) for shard in shards) == len(scenarios)

    def test_round_robin_interleaves_the_fast_axis(self):
        # A 3-value fast axis over 2 shards: round-robin gives each
        # shard a mix of seeds (a contiguous split would not).  When
        # the shard count divides the fast axis, slices alias instead —
        # the partition stays exact either way.
        matrix = ScenarioMatrix(
            base=self.matrix().base,
            axes={"policy": ("android-default", "mobicore"), "seed": (0, 1, 2)},
        )
        scenarios = matrix.expand()
        for index in range(2):
            shard = shard_scenarios(scenarios, index, 2)
            assert len({scenario.config.seed for scenario in shard}) == 3

    def test_merged_shard_stores_equal_the_unsharded_store(self, tmp_path):
        scenarios = self.matrix().expand()
        specs = [compile_scenario(scenario) for scenario in scenarios]

        SessionRunner(jobs=1, store_dir=tmp_path / "unsharded").run(specs)
        for index in range(2):
            shard = shard_scenarios(scenarios, index, 2)
            SessionRunner(jobs=1, store_dir=tmp_path / f"shard{index}").run(
                [compile_scenario(scenario) for scenario in shard]
            )
        with ExperimentStore(tmp_path / "merged") as merged:
            merged.merge(tmp_path / "shard0")
            merged.merge(tmp_path / "shard1")
            merged_rows = merged.query(StoreQuery(columns=QUERYABLE_COLUMNS))
            merged_summaries = merged.summaries()
        with ExperimentStore(tmp_path / "unsharded") as reference:
            assert merged_rows == reference.query(
                StoreQuery(columns=QUERYABLE_COLUMNS)
            )
            assert merged_summaries == reference.summaries()


class TestGc:
    def test_clean_store_gc_removes_nothing(self, warm_cache):
        root, _, _ = warm_cache
        with ExperimentStore(root) as store:
            report = store.gc()
        assert report.removed_files == 0
        assert report.pruned_rows == 0

    def test_orphan_blob_and_stale_temp_are_swept(self, warm_cache):
        root, _, _ = warm_cache
        (root / ("ab" * 32 + ".npz")).write_bytes(b"orphan")
        (root / ".deadbeef0000.12345.tmp").write_bytes(b"partial")
        with ExperimentStore(root) as store:
            report = store.gc()
        assert len(report.dangling_blobs) == 1
        assert len(report.stale_temp) == 1
        assert not list(root.glob("*.npz"))
        assert not list(root.glob(".*.tmp"))

    def test_vanished_entry_prunes_its_index_row(self, warm_cache):
        root, specs, _ = warm_cache
        with ExperimentStore(root) as store:
            victim = store.keys()[0]
        (root / f"{victim}.json").unlink()
        with ExperimentStore(root) as store:
            assert victim in store  # the stale row is still indexed...
            report = store.gc()
            assert report.pruned_rows == 1
            assert victim not in store  # ...until gc prunes it.
            assert len(store) == len(specs) - 1

    def test_corrupt_columns_entry_leaves_no_dangling_blob(self, tmp_path):
        """Satellite: quarantine a v3-with-columns entry; gc finds no orphan.

        Damage the entry of a run that cached a column blob, let the
        cache quarantine it (entry *and* sibling ``.npz`` move), then
        assert the store's gc sweep sees nothing dangling left behind.
        """
        spec = sweep_specs(seeds=(0,), policies=("android-default",))[0]
        spec = SessionSpec(
            platform=spec.platform,
            policy=spec.policy,
            workload=spec.workload,
            config=spec.config,
            keep_columns=True,
        )
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        cache = ResultCache(tmp_path)
        key = spec.cache_key()
        assert cache.columns_path(key).exists()

        entry = cache.path(key)
        entry.write_text(entry.read_text()[:-20])  # truncate: corrupt
        assert cache.quarantine(key) is not None
        assert not cache.columns_path(key).exists()

        with ExperimentStore(tmp_path) as store:
            report = store.gc()
            assert report.dangling_blobs == ()
            assert key not in store
        # The quarantined pair is swept (corpses are disposable)...
        assert len(report.quarantined) == 2
        # ...and nothing in the root references the vanished run.
        assert not list(tmp_path.glob("*.npz"))


class TestStoreMetricsBridge:
    """A store-backed runner feeds the repro_store_* counter families."""

    def test_live_ingests_reach_the_registry(self, tmp_path):
        from repro.obs.metrics_plane import MetricsRegistry

        registry = MetricsRegistry()
        runner = SessionRunner(jobs=1, store_dir=tmp_path, metrics=registry)
        specs = sweep_specs(seeds=(0,))
        runner.run(specs)
        assert registry.get("repro_store_ingests_total").value() == len(specs)
        # A fresh store on the same dir backfills nothing, so that
        # family stays zero — the runs were indexed live.
        assert registry.get("repro_store_backfilled_total").value() == 0

    def test_all_store_families_are_declared(self, tmp_path):
        from repro.obs.metrics_plane import MetricsRegistry

        registry = MetricsRegistry()
        runner = SessionRunner(jobs=1, store_dir=tmp_path, metrics=registry)
        runner.run(sweep_specs(seeds=(0,), policies=("android-default",)))
        exported = registry.names()
        for family in (
            "repro_store_ingests_total",
            "repro_store_backfilled_total",
            "repro_store_queries_total",
            "repro_store_merged_rows_total",
            "repro_store_gc_removed_total",
        ):
            assert family in exported
