"""The ``repro store`` command group and the sharded-run CLI flags.

Exercises the full operator loop end to end through ``main()``: run a
matrix sharded into two stores, merge, then query / ls / gc the result
— asserting the merged store answers queries identically to an
unsharded run of the same matrix.
"""

import csv
import io
import json

import pytest

from repro.cli import main

MATRIX = {
    "base": {
        "platform": "Nexus 5",
        "workload": "busyloop",
        "workload_params": {"target_load_percent": 40.0},
        "config": {"duration_seconds": 2.0, "warmup_seconds": 0.5},
    },
    "axes": {
        "seed": [0, 1],
        "policy": ["android-default", "mobicore"],
    },
}


@pytest.fixture
def matrix_file(tmp_path):
    path = tmp_path / "matrix.json"
    path.write_text(json.dumps(MATRIX))
    return str(path)


def run_matrix(matrix_file, store_dir, shard=None):
    argv = ["scenarios", "run", matrix_file, "--store-dir", str(store_dir)]
    if shard:
        argv += ["--shard", shard]
    assert main(argv) == 0


def query_json(capsys, store_dir, *flags):
    capsys.readouterr()  # drain whatever the commands before printed
    assert main(["store", "query", str(store_dir), "--format", "json", *flags]) == 0
    return json.loads(capsys.readouterr().out)


class TestStoreCommands:
    def test_sharded_runs_merge_to_the_unsharded_answer(
        self, tmp_path, matrix_file, capsys
    ):
        run_matrix(matrix_file, tmp_path / "unsharded")
        run_matrix(matrix_file, tmp_path / "shard0", shard="0/2")
        run_matrix(matrix_file, tmp_path / "shard1", shard="1/2")
        assert (
            main(
                [
                    "store",
                    "merge",
                    str(tmp_path / "merged"),
                    str(tmp_path / "shard0"),
                    str(tmp_path / "shard1"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adopted 2 runs" in out
        assert "4 runs total" in out
        merged = query_json(capsys, tmp_path / "merged")
        unsharded = query_json(capsys, tmp_path / "unsharded")
        assert merged == unsharded
        assert len(merged) == 4

    def test_query_filters_and_projects(self, tmp_path, matrix_file, capsys):
        run_matrix(matrix_file, tmp_path / "store")
        rows = query_json(
            capsys,
            tmp_path / "store",
            "--policy",
            "mobicore",
            "--seed",
            "1",
            "--columns",
            "key,policy,seed,mean_power_mw",
        )
        assert len(rows) == 1
        assert set(rows[0]) == {"key", "policy", "seed", "mean_power_mw"}
        assert rows[0]["policy"] == "mobicore"
        assert rows[0]["seed"] == 1

    def test_query_csv_round_trips(self, tmp_path, matrix_file, capsys):
        run_matrix(matrix_file, tmp_path / "store")
        capsys.readouterr()
        assert (
            main(["store", "query", str(tmp_path / "store"), "--format", "csv"]) == 0
        )
        reader = csv.DictReader(io.StringIO(capsys.readouterr().out))
        rows = list(reader)
        assert len(rows) == 4
        assert {row["policy"] for row in rows} == {"android-default", "mobicore"}

    def test_query_table_truncates_keys(self, tmp_path, matrix_file, capsys):
        run_matrix(matrix_file, tmp_path / "store")
        capsys.readouterr()
        assert main(["store", "query", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "4 runs" in out
        # Full 64-hex keys stay out of the table format.
        assert not any(len(word) == 64 for word in out.split())

    def test_unknown_column_fails_cleanly(self, tmp_path, matrix_file, capsys):
        run_matrix(matrix_file, tmp_path / "store")
        assert (
            main(
                [
                    "store",
                    "query",
                    str(tmp_path / "store"),
                    "--columns",
                    "no_such_column",
                ]
            )
            == 2
        )
        assert "no_such_column" in capsys.readouterr().err

    def test_ls_summarises_axes(self, tmp_path, matrix_file, capsys):
        run_matrix(matrix_file, tmp_path / "store")
        capsys.readouterr()
        assert main(["store", "ls", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "indexed runs" in out and "4" in out
        assert "android-default, mobicore" in out

    def test_gc_round_trip(self, tmp_path, matrix_file, capsys):
        run_matrix(matrix_file, tmp_path / "store")
        (tmp_path / "store" / ("ff" * 32 + ".npz")).write_bytes(b"orphan")
        assert main(["store", "gc", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "dangling column blobs" in out
        # The sweep is effective and queries still answer afterwards.
        assert not list((tmp_path / "store").glob("*.npz"))
        assert len(query_json(capsys, tmp_path / "store")) == 4

    def test_merge_conflict_fails_cleanly(self, tmp_path, matrix_file, capsys):
        from repro.runner.cache import summary_checksum

        run_matrix(matrix_file, tmp_path / "store")
        evil = tmp_path / "evil"
        evil.mkdir()
        entry = next((tmp_path / "store").glob("*.json"))
        document = json.loads(entry.read_text())
        document["summary"]["mean_power_mw"] += 1.0
        document["checksum"] = summary_checksum(document["summary"])
        (evil / entry.name).write_text(json.dumps(document, sort_keys=True))
        assert (
            main(
                [
                    "store",
                    "merge",
                    str(tmp_path / "merged"),
                    str(tmp_path / "store"),
                    str(evil),
                ]
            )
            == 2
        )
        assert "checksum" in capsys.readouterr().err.lower()


class TestShardFlag:
    def test_bad_shard_fails_cleanly(self, tmp_path, matrix_file, capsys):
        assert (
            main(["scenarios", "run", matrix_file, "--shard", "2/2"]) == 2
        )
        assert "shard" in capsys.readouterr().err

    def test_store_and_cache_dir_conflict_fails_cleanly(
        self, tmp_path, matrix_file, capsys
    ):
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    matrix_file,
                    "--store-dir",
                    str(tmp_path / "a"),
                    "--cache-dir",
                    str(tmp_path / "b"),
                ]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err
