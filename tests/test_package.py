"""The public package surface."""

import importlib

import pytest

import repro


SUBPACKAGES = [
    "repro.soc",
    "repro.kernel",
    "repro.governors",
    "repro.policies",
    "repro.core",
    "repro.workloads",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points(self):
        assert callable(repro.nexus5_spec)
        assert callable(repro.game_workload)
        platform = repro.Platform.from_spec(repro.nexus5_spec())
        assert repro.MobiCorePolicy.for_platform(platform).name == "mobicore"


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} needs a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_cli_importable(self):
        from repro.cli import build_parser, main

        parser = build_parser()
        assert parser.prog == "repro"
        assert callable(main)


class TestDocumentation:
    def test_every_public_module_has_docstring(self):
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            if path.name == "__main__.py":
                continue
            text = path.read_text()
            assert text.lstrip().startswith(('"""', 'r"""')), (
                f"{path.relative_to(root)} is missing a module docstring"
            )
