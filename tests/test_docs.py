"""Documentation snippets must run: README, tutorial, failure modes.

Extracts every ```python fence and executes them sequentially in one
shared namespace per document (each document builds on its earlier
snippets), so the docs can never drift from the API.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: pathlib.Path):
    return FENCE.findall(path.read_text())


def shrink_durations(code: str) -> str:
    """Keep doc sessions honest but quick."""
    code = code.replace("duration_seconds=120.0", "duration_seconds=6.0")
    code = code.replace("duration_seconds=60.0", "duration_seconds=6.0")
    return code


class TestReadme:
    def test_quickstart_block_runs(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README has no python fence"
        namespace = {}
        exec(shrink_durations(blocks[0]), namespace)
        assert 0.0 <= namespace["saving"] < 0.5


class TestTutorial:
    def test_all_blocks_run_in_order(self, capsys):
        blocks = python_blocks(ROOT / "docs" / "TUTORIAL.md")
        assert len(blocks) >= 8, "tutorial lost its snippets"
        namespace = {}
        for block in blocks:
            exec(shrink_durations(block), namespace)
        # spot-check the narrative's claims from the shared namespace
        assert namespace["summary"].mean_power_mw > 0
        assert namespace["saving"].n == 3
        # §8: the corrupted cache entry was quarantined and recomputed
        assert namespace["recovered"].outcomes[0].status == "degraded"
        out = capsys.readouterr().out
        assert "47.0" in out        # the static-power anchor printout
        assert "14" in out          # the OPP count printout
        assert "degraded" in out    # the §8 recovery printout


class TestFailureModes:
    def test_every_mode_example_runs(self, capsys):
        """FAILURE_MODES.md is a contract; its examples must hold."""
        blocks = python_blocks(ROOT / "docs" / "FAILURE_MODES.md")
        assert len(blocks) >= 7, "failure-mode contract lost its examples"
        namespace = {}
        for block in blocks:
            exec(shrink_durations(block), namespace)
        out = capsys.readouterr().out
        assert "jobs must be >= 1" in out   # the mode-5 fail-fast printout
