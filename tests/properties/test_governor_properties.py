"""Property-based invariants shared by every registered governor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.governors import GOVERNOR_REGISTRY, create_governor
from repro.governors.base import GovernorInput
from repro.soc.calibration import nexus5_opp_table

TABLE = nexus5_opp_table()

loads = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
frequencies = st.sampled_from(TABLE.frequencies_khz)
governor_names = st.sampled_from(sorted(GOVERNOR_REGISTRY))


def observe(load, current):
    return GovernorInput(
        load_percent=load, current_khz=current, opp_table=TABLE, dt_seconds=0.02
    )


class TestUniversalGovernorInvariants:
    @settings(max_examples=150, deadline=None)
    @given(name=governor_names, load=loads, current=frequencies)
    def test_selection_is_always_a_table_entry(self, name, load, current):
        governor = create_governor(name)
        chosen = governor.select(observe(load, current))
        assert chosen in TABLE

    @settings(max_examples=100, deadline=None)
    @given(
        name=governor_names,
        sequence=st.lists(st.tuples(loads, frequencies), min_size=1, max_size=30),
    )
    def test_stateful_sequences_never_crash(self, name, sequence):
        governor = create_governor(name)
        current = TABLE.min_frequency_khz
        for load, _ in sequence:
            current = governor.select(observe(load, current))
            assert TABLE.min_frequency_khz <= current <= TABLE.max_frequency_khz

    @settings(max_examples=60, deadline=None)
    @given(name=governor_names, load=loads, current=frequencies)
    def test_reset_then_select_matches_fresh_instance(self, name, load, current):
        """reset() returns a governor to constructor state."""
        warmed = create_governor(name)
        for _ in range(5):
            warmed.select(observe(93.0, TABLE.max_frequency_khz))
        warmed.reset()
        fresh = create_governor(name)
        assert warmed.select(observe(load, current)) == fresh.select(
            observe(load, current)
        )


class TestOndemandSpecificProperties:
    @settings(max_examples=60, deadline=None)
    @given(load=st.floats(min_value=80.0, max_value=100.0), current=frequencies)
    def test_threshold_always_jumps_to_max(self, load, current):
        governor = create_governor("ondemand")
        assert governor.select(observe(load, current)) == TABLE.max_frequency_khz

    @settings(max_examples=60, deadline=None)
    @given(load=st.floats(min_value=0.0, max_value=79.9), current=frequencies)
    def test_below_threshold_never_exceeds_current(self, load, current):
        governor = create_governor("ondemand", sampling_down_factor=1)
        assert governor.select(observe(load, current)) <= current
