"""Property-based invariants of the OPP table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.opp import OppTable


@st.composite
def opp_tables(draw):
    frequencies = draw(
        st.lists(
            st.integers(min_value=100_000, max_value=3_000_000),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    vmin = draw(st.floats(min_value=0.5, max_value=1.0))
    vmax = draw(st.floats(min_value=vmin, max_value=1.5))
    return OppTable.linear(frequencies, vmin, vmax)


targets = st.floats(min_value=0.0, max_value=5_000_000.0, allow_nan=False)


class TestTableInvariants:
    @given(table=opp_tables())
    def test_sorted_and_voltage_monotone(self, table):
        frequencies = table.frequencies_khz
        assert list(frequencies) == sorted(frequencies)
        voltages = [opp.voltage for opp in table]
        assert all(b >= a for a, b in zip(voltages, voltages[1:]))

    @given(table=opp_tables(), target=targets)
    def test_floor_at_most_target_or_min(self, table, target):
        chosen = table.floor(target)
        if target >= table.min_frequency_khz:
            assert chosen.frequency_khz <= target
        else:
            assert chosen.frequency_khz == table.min_frequency_khz

    @given(table=opp_tables(), target=targets)
    def test_ceil_at_least_target_or_max(self, table, target):
        chosen = table.ceil(target)
        if target <= table.max_frequency_khz:
            assert chosen.frequency_khz >= target
        else:
            assert chosen.frequency_khz == table.max_frequency_khz

    @given(table=opp_tables(), target=targets)
    def test_floor_le_ceil(self, table, target):
        assert table.floor(target).frequency_khz <= table.ceil(target).frequency_khz

    @given(table=opp_tables(), target=targets)
    def test_floor_ceil_are_adjacent_or_equal(self, table, target):
        floor_index = table.index_of(table.floor(target).frequency_khz)
        ceil_index = table.index_of(table.ceil(target).frequency_khz)
        assert ceil_index - floor_index in (0, 1)

    @given(table=opp_tables())
    def test_lookups_are_idempotent(self, table):
        for opp in table:
            assert table.floor(opp.frequency_khz) == opp
            assert table.ceil(opp.frequency_khz) == opp

    @given(table=opp_tables())
    def test_span_fraction_bounds(self, table):
        for opp in table:
            fraction = table.span_fraction(opp.frequency_khz)
            assert 0.0 <= fraction <= 1.0
