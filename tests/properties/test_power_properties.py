"""Property-based invariants of the power model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.calibration import nexus5_opp_table, nexus5_power_params
from repro.soc.power_model import CpuPowerModel

TABLE = nexus5_opp_table()
MODEL = CpuPowerModel(nexus5_power_params(), TABLE)

frequencies = st.sampled_from(TABLE.frequencies_khz)
busy = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
cores = st.integers(min_value=1, max_value=4)


class TestPowerInvariants:
    @given(frequency=frequencies, fraction=busy, n=cores)
    def test_power_is_positive(self, frequency, fraction, n):
        assert MODEL.predict_total_mw(n, frequency, fraction) > 0.0

    @given(frequency=frequencies, n=cores)
    def test_monotone_in_busy_fraction(self, frequency, n):
        low = MODEL.predict_total_mw(n, frequency, 0.2)
        high = MODEL.predict_total_mw(n, frequency, 0.8)
        assert high >= low

    @given(fraction=busy, n=cores)
    def test_monotone_in_frequency(self, fraction, n):
        values = [
            MODEL.predict_total_mw(n, opp.frequency_khz, fraction) for opp in TABLE
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @given(frequency=frequencies, fraction=busy)
    def test_monotone_in_cores(self, frequency, fraction):
        values = [MODEL.predict_total_mw(n, frequency, fraction) for n in range(1, 5)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @given(frequency=frequencies, fraction=busy, n=cores)
    def test_cpu_power_below_total(self, frequency, fraction, n):
        total = MODEL.predict_total_mw(n, frequency, fraction)
        cpu = MODEL.predict_cpu_mw(n, frequency, fraction)
        assert 0.0 < cpu < total

    @given(frequency=frequencies, fraction=busy, n=cores,
           seconds=st.floats(min_value=0.0, max_value=600.0))
    def test_energy_scales_linearly_with_time(self, frequency, fraction, n, seconds):
        one = MODEL.energy_global_dvfs_mj(n, frequency, fraction, 1.0)
        many = MODEL.energy_global_dvfs_mj(n, frequency, fraction, seconds)
        assert many == pytest.approx(one * seconds, rel=1e-9, abs=1e-6)

    @given(frequency=frequencies)
    def test_static_power_within_anchor_band(self, frequency):
        """Every OPP's leakage sits between the two measured anchors."""
        value = MODEL.static_power_mw(TABLE.at(frequency))
        assert 47.0 - 1e-6 <= value <= 120.0 + 1e-6
