"""Property-based invariants of policies and the quota controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import QuotaController
from repro.core.frequency_law import reevaluate_frequency
from repro.core.mobicore import MobiCorePolicy
from repro.policies.android_default import AndroidDefaultPolicy
from repro.policies.base import SystemObservation
from repro.soc.calibration import nexus5_opp_table, nexus5_power_params

TABLE = nexus5_opp_table()

loads = st.tuples(*([st.floats(min_value=0.0, max_value=100.0)] * 4))
deltas = st.floats(min_value=-100.0, max_value=100.0)
frequencies = st.sampled_from(TABLE.frequencies_khz)


def observation(per_core, freqs, delta=0.0, quota=1.0):
    return SystemObservation(
        tick=1,
        dt_seconds=0.02,
        per_core_load_percent=per_core,
        global_util_percent=sum(per_core) / len(per_core),
        delta_util_percent=delta,
        frequencies_khz=(freqs,) * 4 if isinstance(freqs, int) else freqs,
        online_mask=(True,) * 4,
        quota=quota,
        opp_table=TABLE,
    )


class TestQuotaInvariant:
    @given(
        utils=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60)
    )
    def test_quota_always_in_bounds(self, utils):
        controller = QuotaController()
        previous = utils[0]
        for util in utils:
            quota = controller.update(util, util - previous)
            assert controller.min_quota - 1e-12 <= quota <= 1.0
            previous = util

    @given(util=st.floats(min_value=40.0, max_value=100.0), delta=deltas)
    def test_high_load_always_full_quota(self, util, delta):
        controller = QuotaController(load_threshold=40.0)
        controller.update(20.0, -5.0)  # shrink first
        assert controller.update(util, delta) == 1.0


class TestEq9Invariants:
    @given(
        ondemand=frequencies,
        k=st.floats(min_value=0.0, max_value=100.0),
        n=st.integers(min_value=1, max_value=4),
    )
    def test_result_is_opp_and_never_above_ondemand_choice_ceiling(self, ondemand, k, n):
        chosen = reevaluate_frequency(ondemand, k, n, 4, TABLE)
        assert chosen in TABLE
        # the active-mean fraction is capped at 1, so the result can be at
        # most one quantisation step above the ondemand choice
        assert chosen <= TABLE.ceil(ondemand).frequency_khz

    @given(ondemand=frequencies, n=st.integers(min_value=1, max_value=4))
    def test_monotone_in_utilization(self, ondemand, n):
        previous = 0
        for k in (0.0, 25.0, 50.0, 75.0, 100.0):
            chosen = reevaluate_frequency(ondemand, k, n, 4, TABLE)
            assert chosen >= previous
            previous = chosen


class TestPolicyDecisionInvariants:
    @settings(max_examples=50, deadline=None)
    @given(per_core=loads, freqs=frequencies, delta=deltas)
    def test_mobicore_decisions_well_formed(self, per_core, freqs, delta):
        policy = MobiCorePolicy(
            power_params=nexus5_power_params(), opp_table=TABLE, num_cores=4
        )
        policy.reset()
        decision = policy.decide(observation(per_core, freqs, delta))
        assert decision.online_mask[0]  # boot core stays
        assert 1 <= sum(decision.online_mask) <= 4
        assert 0.0 < decision.quota <= 1.0
        for core_id, online in enumerate(decision.online_mask):
            if online:
                target = decision.target_frequencies_khz[core_id]
                assert target is not None
                assert TABLE.min_frequency_khz <= target <= TABLE.max_frequency_khz

    @settings(max_examples=50, deadline=None)
    @given(per_core=loads, freqs=frequencies)
    def test_android_default_decisions_well_formed(self, per_core, freqs):
        policy = AndroidDefaultPolicy()
        policy.reset()
        decision = policy.decide(observation(per_core, freqs))
        assert decision.quota == 1.0
        if decision.online_mask is not None:
            assert decision.online_mask[0]
        for target in decision.target_frequencies_khz:
            if target is not None:
                assert TABLE.min_frequency_khz <= target <= TABLE.max_frequency_khz
