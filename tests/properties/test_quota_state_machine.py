"""Stateful property test: the quota controller under arbitrary inputs.

A hypothesis rule-based machine feeds the Table 2 controller random
utilization trajectories, boosts, and resets, checking the safety
invariants after every step: the quota stays in [floor, 1], a high load
or a burst always restores the full bandwidth, and shrinks only ever
move by the scaling factor.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.bandwidth import QuotaController


class QuotaMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.controller = QuotaController()
        self.last_quota = self.controller.quota

    def _update(self, utilization, delta):
        before = self.controller.quota
        after = self.controller.update(utilization, delta)
        # a single update changes the quota by at most one scaling step
        # downward, or restores it fully upward
        if after < before:
            assert after == pytest.approx(
                max(before * self.controller.scaling_factor, self.controller.min_quota)
            )
        elif after > before:
            assert after == 1.0
        self.last_quota = after

    @rule(
        utilization=st.floats(min_value=0.0, max_value=39.9),
        delta=st.floats(min_value=-50.0, max_value=50.0),
    )
    def low_load_update(self, utilization, delta):
        self._update(utilization, delta)
        if delta > self.controller.up_threshold:
            assert self.controller.quota == 1.0

    @rule(
        utilization=st.floats(min_value=40.0, max_value=100.0),
        delta=st.floats(min_value=-50.0, max_value=50.0),
    )
    def high_load_update(self, utilization, delta):
        self._update(utilization, delta)
        assert self.controller.quota == 1.0

    @rule()
    def boost(self):
        assert self.controller.boost() == 1.0

    @rule()
    def reset(self):
        self.controller.reset()
        assert self.controller.quota == 1.0

    @invariant()
    def quota_in_bounds(self):
        assert self.controller.min_quota - 1e-12 <= self.controller.quota <= 1.0


TestQuotaMachine = QuotaMachine.TestCase
TestQuotaMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
