"""Stateful property test: the cluster under arbitrary operation sequences.

A hypothesis rule-based machine performs random hotplug and DVFS
operations on a cluster and checks the structural invariants after every
step: core 0 online, at least one core online, every frequency a table
entry, utilization consistent with the online mask.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import HotplugError
from repro.soc.calibration import nexus5_opp_table, nexus5_power_params
from repro.soc.cpu_cluster import CpuCluster
from repro.soc.power_model import CpuPowerModel

TABLE = nexus5_opp_table()
MODEL = CpuPowerModel(nexus5_power_params(), TABLE)


class ClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = CpuCluster(4, TABLE)

    @rule(count=st.integers(min_value=1, max_value=4))
    def set_online_count(self, count):
        self.cluster.set_online_count(count)

    @rule(
        mask=st.tuples(
            st.just(True), st.booleans(), st.booleans(), st.booleans()
        )
    )
    def set_online_mask(self, mask):
        self.cluster.set_online_mask(list(mask))

    @rule(
        core_id=st.integers(min_value=0, max_value=3),
        frequency=st.sampled_from(TABLE.frequencies_khz),
    )
    def set_core_frequency(self, core_id, frequency):
        self.cluster.core(core_id).set_frequency(frequency)

    @rule(frequency=st.sampled_from(TABLE.frequencies_khz))
    def global_dvfs(self, frequency):
        self.cluster.set_all_frequencies(frequency)

    @rule(
        core_id=st.integers(min_value=0, max_value=3),
        busy=st.floats(min_value=0.0, max_value=1.0),
    )
    def account_busy(self, core_id, busy):
        core = self.cluster.core(core_id)
        if core.is_online:
            core.account(busy)
        else:
            core.account(0.0)

    @rule()
    def reject_core0_offline(self):
        with pytest.raises(HotplugError):
            self.cluster.set_online_mask([False, True, True, True])

    @rule()
    def reset(self):
        self.cluster.reset()

    @invariant()
    def core0_always_online(self):
        assert self.cluster.core(0).is_online

    @invariant()
    def at_least_one_online(self):
        assert self.cluster.online_count >= 1

    @invariant()
    def frequencies_are_table_entries(self):
        for frequency in self.cluster.frequencies_khz:
            assert frequency in TABLE

    @invariant()
    def offline_cores_report_zero_busy(self):
        for core in self.cluster.cores:
            if not core.is_online:
                assert core.busy_fraction == 0.0

    @invariant()
    def utilization_within_bounds(self):
        assert 0.0 <= self.cluster.global_utilization_percent() <= 100.0

    @invariant()
    def power_model_always_evaluates(self):
        breakdown = MODEL.breakdown(self.cluster)
        assert breakdown.total_mw >= MODEL.params.platform_base_mw


TestClusterMachine = ClusterMachine.TestCase
TestClusterMachine.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
