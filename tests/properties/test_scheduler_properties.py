"""Property-based invariants of the load-balancing scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import LoadBalancingScheduler
from repro.kernel.task import Task, TaskDemand
from repro.soc.calibration import nexus5_opp_table
from repro.soc.cpu_cluster import CpuCluster

DT = 0.02
TABLE = nexus5_opp_table()


@st.composite
def demand_sets(draw):
    count = draw(st.integers(min_value=0, max_value=8))
    demands = []
    for task_id in range(count):
        cycles = draw(st.floats(min_value=0.0, max_value=3e8))
        parallel = draw(st.booleans())
        demands.append(
            TaskDemand(Task(task_id, f"t{task_id}", parallel=parallel), cycles)
        )
    return demands


@st.composite
def clusters(draw):
    cluster = CpuCluster(4, TABLE)
    frequency = draw(st.sampled_from(TABLE.frequencies_khz))
    cluster.set_all_frequencies(frequency)
    online = draw(st.integers(min_value=1, max_value=4))
    cluster.set_online_count(online)
    return cluster


class TestConservation:
    @settings(max_examples=60, deadline=None)
    @given(demands=demand_sets(), cluster=clusters(),
           quota=st.floats(min_value=0.2, max_value=1.0))
    def test_work_is_conserved(self, demands, cluster, quota):
        """executed + backlog + dropped == demanded (cycle conservation)."""
        scheduler = LoadBalancingScheduler()
        result = scheduler.dispatch(demands, cluster, DT, quota=quota)
        demanded = sum(d.cycles for d in demands)
        accounted = result.total_executed + result.total_backlog + result.dropped_cycles
        assert accounted == pytest.approx(demanded, rel=1e-9, abs=1e-3)

    @settings(max_examples=60, deadline=None)
    @given(demands=demand_sets(), cluster=clusters(),
           quota=st.floats(min_value=0.2, max_value=1.0))
    def test_no_core_exceeds_quota_capacity(self, demands, cluster, quota):
        scheduler = LoadBalancingScheduler()
        result = scheduler.dispatch(demands, cluster, DT, quota=quota)
        for core in cluster.cores:
            capacity = core.capacity_cycles(DT, quota)
            assert result.busy_cycles[core.core_id] <= capacity + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(demands=demand_sets(), cluster=clusters())
    def test_offline_cores_stay_idle(self, demands, cluster):
        scheduler = LoadBalancingScheduler()
        result = scheduler.dispatch(demands, cluster, DT)
        for core in cluster.cores:
            if not core.is_online:
                assert result.busy_cycles[core.core_id] == 0.0
                assert result.busy_fractions[core.core_id] == 0.0

    @settings(max_examples=60, deadline=None)
    @given(demands=demand_sets(), cluster=clusters())
    def test_executed_never_negative(self, demands, cluster):
        scheduler = LoadBalancingScheduler()
        result = scheduler.dispatch(demands, cluster, DT)
        assert all(v >= 0.0 for v in result.executed_by_task.values())
        assert all(v >= 0.0 for v in result.backlog_by_task.values())
        assert result.dropped_cycles >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(demands=demand_sets(), cluster=clusters())
    def test_feasible_parallel_work_completes(self, demands, cluster):
        """When total demand fits total capacity and every serial task
        fits one core, everything executes this tick."""
        scheduler = LoadBalancingScheduler()
        total_capacity = cluster.total_capacity_cycles(DT)
        core_capacity = min(
            core.capacity_cycles(DT) for core in cluster.online_cores
        )
        total = sum(d.cycles for d in demands)
        serial_fits = all(
            d.cycles <= core_capacity for d in demands if not d.task.parallel
        )
        if total <= total_capacity * 0.9 and serial_fits and len(demands) <= len(
            cluster.online_cores
        ):
            result = scheduler.dispatch(demands, cluster, DT)
            assert result.total_executed == pytest.approx(total, rel=1e-9, abs=1e-3)
