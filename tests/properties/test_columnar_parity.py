"""Property parity: the columnar recorder is bit-identical to the legacy one.

Random tick streams go through both the frozen pre-refactor
:class:`~repro.kernel._legacy_tracing.LegacyTraceRecorder` and the
columnar :class:`~repro.kernel.tracing.TraceRecorder`; every summary
statistic and the CSV export must match **exactly** (``==`` on floats,
not approx) — the refactor's core contract, written down as prose in
``docs/NUMERICS.md``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel._legacy_tracing import LegacyTickRecord, LegacyTraceRecorder
from repro.kernel.tracing import TraceRecorder

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def tick_streams(draw):
    cores = draw(st.integers(min_value=1, max_value=4))
    count = draw(st.integers(min_value=1, max_value=40))
    warmup = draw(st.integers(min_value=0, max_value=count - 1))
    rows = []
    tick = -1
    for _ in range(count):
        tick += draw(st.integers(min_value=1, max_value=3))
        rows.append(
            (
                tick,
                tick * 0.02,
                tuple(
                    draw(st.integers(min_value=100_000, max_value=3_000_000))
                    for _ in range(cores)
                ),
                tuple(draw(st.booleans()) for _ in range(cores)),
                tuple(
                    draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(cores)
                ),
                draw(st.floats(min_value=0.0, max_value=100.0)),
                draw(st.floats(min_value=0.0, max_value=1.0)),
                draw(finite),
                draw(finite),
                draw(st.floats(min_value=-20.0, max_value=150.0)),
                draw(finite),
                draw(finite),
                draw(st.one_of(st.none(), st.floats(min_value=0.0, max_value=240.0))),
                draw(st.floats(min_value=0.0, max_value=100.0)),
            )
        )
    return rows, warmup


def summaries(recorder, tick_seconds=0.02):
    return (
        recorder.mean_power_mw(),
        recorder.mean_cpu_power_mw(),
        recorder.mean_online_cores(),
        recorder.mean_frequency_khz(),
        recorder.mean_global_util_percent(),
        recorder.mean_scaled_load_percent(),
        recorder.mean_quota(),
        recorder.mean_fps(),
        recorder.max_temperature_c(),
        recorder.energy_mj(tick_seconds),
    )


class TestColumnarParity:
    @settings(max_examples=60, deadline=None)
    @given(stream=tick_streams())
    def test_summaries_and_csv_bit_identical(self, stream):
        rows, warmup = stream
        legacy = LegacyTraceRecorder(warmup_ticks=warmup)
        columnar = TraceRecorder(warmup_ticks=warmup)
        for row in rows:
            legacy.append(LegacyTickRecord(*row))
            columnar.record_tick(*row)
        assert summaries(columnar) == summaries(legacy)
        assert columnar.to_csv() == legacy.to_csv()

    @settings(max_examples=30, deadline=None)
    @given(stream=tick_streams())
    def test_lazy_records_match_legacy_records(self, stream):
        rows, warmup = stream
        legacy = LegacyTraceRecorder(warmup_ticks=warmup)
        columnar = TraceRecorder(warmup_ticks=warmup)
        for row in rows:
            legacy.append(LegacyTickRecord(*row))
            columnar.record_tick(*row)
        for ours, theirs in zip(columnar.records, legacy.records):
            assert ours.tick == theirs.tick
            assert ours.frequencies_khz == tuple(theirs.frequencies_khz)
            assert ours.online_mask == tuple(theirs.online_mask)
            assert ours.busy_fractions == tuple(theirs.busy_fractions)
            assert ours.fps == theirs.fps
            assert ours.online_count == theirs.online_count
            assert ours.mean_online_frequency_khz == theirs.mean_online_frequency_khz
