"""Property-based round trips: demand traces and frame accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.frames import FramePipeline
from repro.workloads.traces import DemandTrace, _TraceTask


@st.composite
def traces(draw):
    task_count = draw(st.integers(min_value=1, max_value=5))
    tasks = [
        _TraceTask(task_id=i, name=f"task-{i}", parallel=draw(st.booleans()))
        for i in range(task_count)
    ]
    tick_count = draw(st.integers(min_value=1, max_value=20))
    ticks = []
    for _ in range(tick_count):
        row = {}
        for task in tasks:
            if draw(st.booleans()):
                row[task.task_id] = round(
                    draw(st.floats(min_value=0.0, max_value=1e8)), 1
                )
        ticks.append(row)
    return DemandTrace(tasks, ticks, source_name="property")


class TestTraceRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(trace=traces())
    def test_csv_round_trip_preserves_demands(self, trace):
        parsed = DemandTrace.from_csv(trace.to_csv())
        assert len(parsed) == len(trace)
        for tick in range(len(trace)):
            assert parsed.demand_at(tick) == pytest.approx(trace.demand_at(tick))

    @settings(max_examples=40, deadline=None)
    @given(trace=traces())
    def test_csv_round_trip_preserves_tasks(self, trace):
        parsed = DemandTrace.from_csv(trace.to_csv())
        assert parsed.tasks == trace.tasks
        assert parsed.source_name == trace.source_name


class TestFrameConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        executed=st.lists(
            st.floats(min_value=0.0, max_value=5e7), min_size=1, max_size=60
        ),
        cost=st.floats(min_value=1e5, max_value=1e7),
    )
    def test_frames_never_exceed_cycles_over_cost(self, executed, cost):
        """Completed frames equal executed cycles // cost, cumulatively."""
        pipeline = FramePipeline(frame_cost_cycles=cost, target_fps=60.0)
        for cycles in executed:
            pipeline.record(cycles, 0.02)
        total = sum(executed)
        assert pipeline.completed_frames <= total / cost + 1e-9
        assert pipeline.completed_frames >= total / cost - 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        executed=st.lists(
            st.floats(min_value=0.0, max_value=5e7), min_size=1, max_size=60
        )
    )
    def test_mean_fps_never_exceeds_target(self, executed):
        pipeline = FramePipeline(frame_cost_cycles=1e5, target_fps=60.0)
        for cycles in executed:
            pipeline.record(cycles, 0.02)
        assert pipeline.mean_fps <= 60.0
