"""Unit-convention helpers."""

import pytest

from repro.errors import UnitsError
from repro import units


class TestFrequencyConstructors:
    def test_khz_rounds_to_int(self):
        assert units.khz(300_000.4) == 300_000

    def test_mhz_scales(self):
        assert units.mhz(300) == 300_000

    def test_ghz_scales(self):
        assert units.ghz(2.2656) == 2_265_600

    def test_zero_rejected(self):
        with pytest.raises(UnitsError):
            units.khz(0)

    def test_negative_rejected(self):
        with pytest.raises(UnitsError):
            units.mhz(-1)

    def test_khz_to_mhz_roundtrip(self):
        assert units.khz_to_mhz(units.mhz(422.4)) == pytest.approx(422.4)

    def test_khz_to_ghz_roundtrip(self):
        assert units.khz_to_ghz(units.ghz(1.5)) == pytest.approx(1.5)


class TestClamp:
    def test_inside_unchanged(self):
        assert units.clamp(5.0, 0.0, 10.0) == 5.0

    def test_below_clamps(self):
        assert units.clamp(-1.0, 0.0, 10.0) == 0.0

    def test_above_clamps(self):
        assert units.clamp(11.0, 0.0, 10.0) == 10.0

    def test_empty_interval_rejected(self):
        with pytest.raises(UnitsError):
            units.clamp(1.0, 2.0, 1.0)


class TestValidators:
    def test_require_positive_accepts(self):
        assert units.require_positive(1.0, "x") == 1.0

    def test_require_positive_rejects_zero(self):
        with pytest.raises(UnitsError):
            units.require_positive(0.0, "x")

    def test_require_non_negative_accepts_zero(self):
        assert units.require_non_negative(0.0, "x") == 0.0

    def test_require_non_negative_rejects(self):
        with pytest.raises(UnitsError):
            units.require_non_negative(-0.1, "x")

    def test_require_fraction_bounds(self):
        assert units.require_fraction(0.0, "x") == 0.0
        assert units.require_fraction(1.0, "x") == 1.0
        with pytest.raises(UnitsError):
            units.require_fraction(1.01, "x")

    def test_require_percent_bounds(self):
        assert units.require_percent(100.0, "x") == 100.0
        with pytest.raises(UnitsError):
            units.require_percent(-0.1, "x")

    def test_percent_fraction_roundtrip(self):
        assert units.percent_to_fraction(40.0) == pytest.approx(0.4)
        assert units.fraction_to_percent(0.4) == pytest.approx(40.0)

    def test_validator_message_names_quantity(self):
        with pytest.raises(UnitsError, match="voltage"):
            units.require_positive(-1.0, "voltage")
