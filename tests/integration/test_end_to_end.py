"""Cross-module integration: whole sessions, failure injection, invariants."""

import pytest

from repro import (
    AndroidDefaultPolicy,
    BusyLoopApp,
    GeekbenchWorkload,
    MobiCorePolicy,
    Platform,
    SimulationConfig,
    Simulator,
    StaticPolicy,
    game_workload,
    nexus5_spec,
    summarize,
)
from repro.policies import DcsOnlyPolicy, DvfsOnlyPolicy, RaceToIdlePolicy
from repro.soc.catalog import galaxy_s2_spec
from repro.workloads import StepWorkload

CFG = SimulationConfig(duration_seconds=8.0, seed=5, warmup_seconds=2.0)


def run(policy_factory, workload, spec=None, config=CFG, pin=False):
    platform = Platform.from_spec(spec if spec is not None else nexus5_spec())
    policy = policy_factory(platform)
    return Simulator(platform, workload, policy, config, pin_uncore_max=pin).run()


class TestPublicApiSession:
    def test_readme_quickstart_flow(self):
        baseline = run(lambda p: AndroidDefaultPolicy(), game_workload("Subway Surf"), pin=True)
        mobicore = run(MobiCorePolicy.for_platform, game_workload("Subway Surf"), pin=True)
        saving = 1 - mobicore.mean_power_mw / baseline.mean_power_mw
        assert 0.0 <= saving < 0.3
        assert mobicore.mean_fps > 10.0

    def test_summaries_from_any_policy(self):
        for factory in (
            lambda p: AndroidDefaultPolicy(),
            MobiCorePolicy.for_platform,
            lambda p: StaticPolicy(2, 960_000),
            lambda p: DvfsOnlyPolicy(),
            lambda p: DcsOnlyPolicy(),
            lambda p: RaceToIdlePolicy(),
        ):
            summary = summarize(run(factory, BusyLoopApp(35.0)))
            assert summary.mean_power_mw > 0


class TestPolicyOrdering:
    def test_race_to_idle_is_most_expensive(self):
        """Section 4.1.2's claim, end to end: race-to-idle loses to
        MobiCore (and to the default) on a light workload."""
        racing = run(lambda p: RaceToIdlePolicy(), BusyLoopApp(25.0))
        default = run(lambda p: AndroidDefaultPolicy(), BusyLoopApp(25.0))
        mobicore = run(MobiCorePolicy.for_platform, BusyLoopApp(25.0))
        assert mobicore.mean_power_mw < default.mean_power_mw < racing.mean_power_mw

    def test_hybrid_beats_single_mechanisms_at_light_load(self):
        """MobiCore (DVFS+DCS+quota) undercuts DVFS-only and DCS-only."""
        dvfs_only = run(lambda p: DvfsOnlyPolicy(), BusyLoopApp(20.0))
        dcs_only = run(lambda p: DcsOnlyPolicy(), BusyLoopApp(20.0))
        mobicore = run(MobiCorePolicy.for_platform, BusyLoopApp(20.0))
        assert mobicore.mean_power_mw < dvfs_only.mean_power_mw
        assert mobicore.mean_power_mw < dcs_only.mean_power_mw

    def test_performance_governor_tracks_static_fmax(self):
        static = run(lambda p: StaticPolicy(4, 2_265_600), BusyLoopApp(60.0))
        performance = run(
            lambda p: AndroidDefaultPolicy(governor_name="performance",
                                           enable_hotplug=False),
            BusyLoopApp(60.0),
        )
        assert performance.mean_power_mw == pytest.approx(
            static.mean_power_mw, rel=0.02
        )

    def test_powersave_governor_cheapest_dvfs(self):
        powersave = run(
            lambda p: AndroidDefaultPolicy(governor_name="powersave",
                                           enable_hotplug=False),
            BusyLoopApp(30.0),
        )
        ondemand = run(
            lambda p: AndroidDefaultPolicy(enable_hotplug=False), BusyLoopApp(30.0)
        )
        assert powersave.mean_power_mw < ondemand.mean_power_mw


class TestDynamicBehaviour:
    def test_burst_response_recovers_capacity(self):
        """After a step to heavy load, MobiCore must deliver the work."""
        workload = StepWorkload([(3.0, 5.0), (5.0, 85.0)])
        result = run(MobiCorePolicy.for_platform, workload)
        last = result.trace.measured[-25:]
        mean_scaled = sum(r.scaled_load_percent for r in last) / len(last)
        assert mean_scaled > 60.0  # the 85% step is being served

    def test_quota_drops_on_light_phases(self):
        workload = StepWorkload([(4.0, 60.0), (4.0, 8.0)])
        result = run(MobiCorePolicy.for_platform, workload)
        final = result.trace.measured[-20:]
        assert min(r.quota for r in final) < 1.0

    def test_shared_rail_platform_runs_end_to_end(self):
        result = run(
            lambda p: AndroidDefaultPolicy(num_cores=2),
            BusyLoopApp(50.0),
            spec=galaxy_s2_spec(),
        )
        assert result.mean_power_mw > 0
        # shared rail: both online cores always at one frequency
        for record in result.trace.measured:
            online_freqs = {
                f for f, on in zip(record.frequencies_khz, record.online_mask) if on
            }
            assert len(online_freqs) == 1


class TestFailureInjection:
    def test_overload_never_crashes_and_reports_backlog(self):
        """Demand far beyond platform capacity: drops are accounted."""
        result = run(MobiCorePolicy.for_platform, GeekbenchWorkload())
        total_dropped = sum(r.dropped_cycles for r in result.trace.records)
        assert total_dropped >= 0.0
        assert result.mean_power_mw > 0

    def test_zero_demand_session(self):
        from repro.workloads import ConstantWorkload

        result = run(MobiCorePolicy.for_platform, ConstantWorkload(0.0))
        assert result.mean_load_percent == pytest.approx(0.0, abs=1.0)
        assert result.mean_online_cores == pytest.approx(1.0, abs=0.1)

    def test_throttled_platform_respects_cap(self):
        spec = nexus5_spec(throttled=True)
        result = run(
            lambda p: StaticPolicy(4, spec.opp_table.max_frequency_khz),
            BusyLoopApp(100.0),
            spec=spec,
            config=SimulationConfig(duration_seconds=60.0, seed=1, warmup_seconds=30.0),
        )
        # sustained full stress must have engaged the cap
        final = result.trace.measured[-10:]
        assert all(
            r.mean_online_frequency_khz < spec.opp_table.max_frequency_khz
            for r in final
        )

    def test_single_core_platform(self):
        from repro.soc.catalog import nexus_s_spec

        result = run(
            lambda p: AndroidDefaultPolicy(num_cores=1),
            BusyLoopApp(50.0),
            spec=nexus_s_spec(),
        )
        assert result.mean_online_cores == pytest.approx(1.0)


class TestCrossPolicyAccounting:
    def test_dvfs_transitions_higher_for_dynamic_policy(self):
        static = run(lambda p: StaticPolicy(4, 960_000), BusyLoopApp(40.0))
        dynamic = run(lambda p: AndroidDefaultPolicy(), BusyLoopApp(40.0))
        assert dynamic.dvfs_transitions > static.dvfs_transitions

    def test_cpuidle_residency_sums_to_session(self):
        result = run(lambda p: AndroidDefaultPolicy(), BusyLoopApp(40.0))
        from repro.soc.core_state import CoreState

        total = sum(
            result.cpuidle.fleet_fraction(state) for state in CoreState
        )
        assert total == pytest.approx(1.0, rel=1e-6)
