"""Session-level governor behaviour: the section 2.2.1 taxonomy, measured.

Each stock governor's qualitative description is checked on full
simulated sessions: ondemand is reliable but power-hungry, conservative
is smoother, interactive is the most aggressive, powersave/performance
bound the range.
"""

import pytest

from repro.config import SimulationConfig
from repro.kernel.simulator import Simulator
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.synthetic import BurstWorkload, SineWorkload

CFG = SimulationConfig(duration_seconds=10.0, seed=4, warmup_seconds=2.0)


def run(governor_name, workload):
    platform = Platform.from_spec(nexus5_spec())
    policy = AndroidDefaultPolicy(governor_name=governor_name, enable_hotplug=False)
    return Simulator(platform, workload, policy, CFG, pin_uncore_max=False).run()


@pytest.fixture(scope="module")
def sine_sessions():
    return {
        name: run(name, SineWorkload(40.0, 20.0, period_seconds=4.0))
        for name in ("ondemand", "conservative", "interactive", "powersave",
                     "performance", "schedutil")
    }


class TestPowerOrdering:
    def test_performance_is_the_ceiling(self, sine_sessions):
        top = sine_sessions["performance"].mean_power_mw
        for name, session in sine_sessions.items():
            assert session.mean_power_mw <= top + 1.0, name

    def test_powersave_is_the_floor(self, sine_sessions):
        bottom = sine_sessions["powersave"].mean_power_mw
        for name, session in sine_sessions.items():
            assert session.mean_power_mw >= bottom - 1.0, name

    def test_dynamic_governors_sit_between(self, sine_sessions):
        floor = sine_sessions["powersave"].mean_power_mw
        ceiling = sine_sessions["performance"].mean_power_mw
        for name in ("ondemand", "conservative", "interactive", "schedutil"):
            assert floor < sine_sessions[name].mean_power_mw < ceiling

    def test_schedutil_undercuts_ondemand(self, sine_sessions):
        """No jump-to-max waste: the modern governor is cheaper."""
        assert (
            sine_sessions["schedutil"].mean_power_mw
            < sine_sessions["ondemand"].mean_power_mw
        )


class TestResponsiveness:
    def test_powersave_starves_the_demand(self, sine_sessions):
        """Pinning fmin cannot execute a 40% fmax-relative load."""
        executed = sine_sessions["powersave"].trace.mean_scaled_load_percent()
        wanted = sine_sessions["performance"].trace.mean_scaled_load_percent()
        assert executed < wanted * 0.6

    def test_dynamic_governors_deliver_the_work(self, sine_sessions):
        wanted = sine_sessions["performance"].trace.mean_scaled_load_percent()
        for name in ("ondemand", "interactive", "conservative", "schedutil"):
            delivered = sine_sessions[name].trace.mean_scaled_load_percent()
            assert delivered >= wanted * 0.95, name

    def test_interactive_reaches_higher_frequencies_on_bursts(self):
        """'a much more aggressive CPU speed scaling' than conservative."""
        bursts = lambda: BurstWorkload(
            10.0, 85.0, burst_start_prob=0.05, mean_burst_ticks=8
        )
        interactive = run("interactive", bursts())
        conservative = run("conservative", bursts())
        assert interactive.mean_frequency_khz > conservative.mean_frequency_khz

    def test_conservative_changes_frequency_in_small_steps(self):
        """Smooth stepping: no tick jumps more than ~2 ladder steps."""
        session = run("conservative", SineWorkload(40.0, 25.0, period_seconds=4.0))
        table = nexus5_spec().opp_table
        previous = None
        for record in session.trace.records:
            index = table.index_of(record.frequencies_khz[0])
            if previous is not None:
                assert abs(index - previous) <= 2
            previous = index

    def test_ondemand_jumps_straight_to_fmax(self):
        """The defining ondemand behaviour, visible in a session trace."""
        session = run("ondemand", BusyLoopApp(95.0))
        table = nexus5_spec().opp_table
        frequencies = [r.frequencies_khz[0] for r in session.trace.records]
        first_max = frequencies.index(table.max_frequency_khz)
        assert first_max <= 3  # reaches fmax within the first few ticks
