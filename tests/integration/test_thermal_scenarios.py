"""Thermal failure-injection scenarios: throttle engage, recover, interact."""

import pytest

from repro.config import SimulationConfig
from repro.core.mobicore import MobiCorePolicy
from repro.kernel.simulator import Simulator
from repro.policies.static import StaticPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.synthetic import StepWorkload


def run(spec, workload, policy, seconds, warmup=0.0, seed=0):
    platform = Platform.from_spec(spec)
    config = SimulationConfig(
        duration_seconds=seconds, seed=seed, warmup_seconds=warmup
    )
    return Simulator(platform, workload, policy, config, pin_uncore_max=False).run()


class TestThrottleEngagement:
    def test_sustained_stress_throttles(self):
        spec = nexus5_spec(throttled=True)
        result = run(
            spec,
            BusyLoopApp(100.0),
            StaticPolicy(4, spec.opp_table.max_frequency_khz),
            seconds=60.0,
            warmup=30.0,
        )
        final = result.trace.measured[-10:]
        assert all(
            r.mean_online_frequency_khz < spec.opp_table.max_frequency_khz
            for r in final
        )
        # power under throttle sits below the unthrottled full-stress anchor
        assert result.mean_power_mw < 2403.0

    def test_temperature_stays_near_threshold(self):
        """The throttle is a regulator: temperature hovers at the cap."""
        spec = nexus5_spec(throttled=True)
        result = run(
            spec,
            BusyLoopApp(100.0),
            StaticPolicy(4, spec.opp_table.max_frequency_khz),
            seconds=90.0,
            warmup=45.0,
        )
        peak = result.trace.max_temperature_c()
        assert peak <= spec.thermal.throttle_temp_c + 2.0

    def test_recovery_after_load_drops(self):
        spec = nexus5_spec(throttled=True)
        workload = StepWorkload([(40.0, 100.0), (40.0, 5.0)])
        result = run(
            spec,
            workload,
            StaticPolicy(4, spec.opp_table.max_frequency_khz),
            seconds=80.0,
        )
        final = result.trace.records[-5:]
        # after the quiet phase the node has cooled well below the cap
        assert all(r.temperature_c < spec.thermal.throttle_temp_c for r in final)

    def test_unthrottled_variant_never_caps(self):
        spec = nexus5_spec(throttled=False)
        result = run(
            spec,
            BusyLoopApp(100.0),
            StaticPolicy(4, spec.opp_table.max_frequency_khz),
            seconds=60.0,
            warmup=30.0,
        )
        final = result.trace.measured[-10:]
        assert all(
            r.mean_online_frequency_khz == spec.opp_table.max_frequency_khz
            for r in final
        )


class TestThrottleWithDynamicPolicies:
    def test_mobicore_runs_cooler_than_static_fmax(self):
        spec = nexus5_spec(throttled=True)
        static = run(
            spec,
            BusyLoopApp(60.0),
            StaticPolicy(4, spec.opp_table.max_frequency_khz),
            seconds=60.0,
            warmup=30.0,
        )
        platform_spec = nexus5_spec(throttled=True)
        mobicore = run(
            platform_spec,
            BusyLoopApp(60.0),
            MobiCorePolicy(
                power_params=platform_spec.power_params,
                opp_table=platform_spec.opp_table,
                num_cores=platform_spec.num_cores,
            ),
            seconds=60.0,
            warmup=30.0,
        )
        assert mobicore.trace.max_temperature_c() < static.trace.max_temperature_c()

    def test_session_progresses_under_throttle(self):
        """Throttling slows but never deadlocks a dynamic session."""
        spec = nexus5_spec(throttled=True)
        result = run(
            spec,
            BusyLoopApp(90.0),
            MobiCorePolicy(
                power_params=spec.power_params,
                opp_table=spec.opp_table,
                num_cores=spec.num_cores,
            ),
            seconds=60.0,
            warmup=10.0,
        )
        assert result.workload_metrics["executed_cycles"] > 0
        assert result.trace.mean_scaled_load_percent() > 30.0
