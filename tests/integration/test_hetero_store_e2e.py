"""big.LITTLE end to end: CLI sweep → experiment store → comparison.

The acceptance path for the topology refactor: a registered
heterogeneous platform runs through ``repro scenarios run`` into an
experiment store, the store answers queries about it, and
``comparison_rows_from_store`` rebuilds the energy-aware vs naive
placement A/B without re-running anything.
"""

import json

import pytest

from repro.analysis.comparison import comparison_rows_from_store
from repro.cli import main

MATRIX = {
    "base": {
        "platform": "Odroid-XU3",
        "workload": "busyloop",
        "workload_params": {
            "target_load_percent": 30.0,
            "num_threads": 2,
            "idle_gap_seconds": 0.0,
        },
        "config": {"duration_seconds": 2.0, "warmup_seconds": 0.5},
    },
    "axes": {
        "seed": [0, 1],
        "policy": ["race-to-idle", "energy-aware"],
    },
}


@pytest.fixture
def store_dir(tmp_path):
    matrix = tmp_path / "matrix.json"
    matrix.write_text(json.dumps(MATRIX))
    store = tmp_path / "store"
    assert main(["scenarios", "run", str(matrix), "--store-dir", str(store)]) == 0
    return store


class TestHeteroStoreEndToEnd:
    def test_store_query_sees_the_hetero_sweep(self, store_dir, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "store",
                    "query",
                    str(store_dir),
                    "--format",
                    "json",
                    "--platform",
                    "Odroid-XU3",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4
        assert {row["policy"] for row in rows} == {"race-to-idle", "energy-aware"}
        assert all(row["platform"] == "Odroid-XU3" for row in rows)

    def test_comparison_from_store_shows_energy_aware_saving(self, store_dir):
        rows = comparison_rows_from_store(
            store_dir, baseline="race-to-idle", candidate="energy-aware"
        )
        assert len(rows) == 2  # one pair per seed
        for row in rows:
            assert row.baseline.platform == "Odroid-XU3"
            # Model-driven placement beats the naive everything-at-fmax
            # baseline on the spinning workload — and decisively so.
            assert row.power_saving_percent > 20.0
