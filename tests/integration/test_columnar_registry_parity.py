"""Registry-wide parity: columnar summaries match the legacy recorder
for every registered policy x workload combination.

Each pair runs one short session on the columnar engine, then replays
the recorded row stream through the frozen pre-refactor
:class:`~repro.kernel._legacy_tracing.LegacyTraceRecorder`.  Summary
statistics and CSV exports must be bit-identical — ``==``, not approx.
"""

import pytest

from repro.config import SimulationConfig
from repro.kernel._legacy_tracing import LegacyTickRecord, LegacyTraceRecorder
from repro.kernel.engine import Session
from repro.scenario import (
    POLICY_REGISTRY,
    WORKLOAD_REGISTRY,
    policy_ref,
    workload_ref,
)
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform

PLATFORM = "Nexus 5"

#: Required factory parameters for entries without usable defaults.
POLICY_PARAMS = {"static": {"online_count": 2, "frequency_khz": 1_190_400}}
WORKLOAD_PARAMS = {"game": {"title": "Badland"}}

CONFIG = SimulationConfig(duration_seconds=2.0, seed=3, warmup_seconds=0.4)

PAIRS = [
    (policy, workload)
    for policy in POLICY_REGISTRY.names()
    for workload in WORKLOAD_REGISTRY.names()
]


def summaries(recorder):
    return (
        recorder.mean_power_mw(),
        recorder.mean_cpu_power_mw(),
        recorder.mean_online_cores(),
        recorder.mean_frequency_khz(),
        recorder.mean_global_util_percent(),
        recorder.mean_scaled_load_percent(),
        recorder.mean_quota(),
        recorder.mean_fps(),
        recorder.max_temperature_c(),
        recorder.energy_mj(CONFIG.tick_seconds),
    )


@pytest.mark.parametrize("policy_name,workload_name", PAIRS)
def test_summaries_match_legacy_for_registry_pair(policy_name, workload_name):
    policy = policy_ref(
        policy_name, platform=PLATFORM, **POLICY_PARAMS.get(policy_name, {})
    ).resolve()
    workload = workload_ref(
        workload_name, **WORKLOAD_PARAMS.get(workload_name, {})
    ).resolve()
    session = Session(Platform.from_spec(nexus5_spec()), workload, policy, CONFIG)
    trace = session.run().trace

    legacy = LegacyTraceRecorder(warmup_ticks=trace.warmup_ticks)
    for row in trace.buffer.iter_rows():
        legacy.append(LegacyTickRecord(*row))

    assert summaries(trace) == summaries(legacy)
    assert trace.to_csv() == legacy.to_csv()
