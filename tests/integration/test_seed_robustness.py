"""Seed robustness: the evaluation's qualitative findings hold across seeds.

The figure drivers use seeds (1, 2, 3); these tests re-check the
headline orderings on a disjoint seed set so the reproduction is not an
artifact of one random draw.
"""

import pytest

from repro.analysis.comparison import PolicyComparison
from repro.config import SimulationConfig
from repro.core.mobicore import MobiCorePolicy
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.games import game_workload

FRESH_SEEDS = (11, 12)
CFG = SimulationConfig(duration_seconds=25.0, seed=0, warmup_seconds=2.0)


@pytest.fixture(scope="module")
def comparison():
    spec = nexus5_spec()
    return PolicyComparison(
        spec,
        baseline_factory=AndroidDefaultPolicy,
        candidate_factory=lambda: MobiCorePolicy(
            power_params=spec.power_params,
            opp_table=spec.opp_table,
            num_cores=spec.num_cores,
        ),
        config=CFG,
        pin_uncore_max=True,
    )


@pytest.fixture(scope="module")
def fresh_rows(comparison):
    rows = {}
    for game in ("Real Racing 3", "Subway Surf"):
        per_seed = comparison.compare_seeds(
            lambda game=game: game_workload(game), FRESH_SEEDS
        )
        rows[game] = per_seed
    return rows


def mean_saving(per_seed):
    return sum(row.power_saving_percent for row in per_seed) / len(per_seed)


class TestOrderingAcrossSeeds:
    def test_subway_surf_beats_real_racing(self, fresh_rows):
        """The extreme games keep their ordering on unseen seeds."""
        assert mean_saving(fresh_rows["Subway Surf"]) > mean_saving(
            fresh_rows["Real Racing 3"]
        )

    def test_mobicore_never_clearly_worse(self, fresh_rows):
        for per_seed in fresh_rows.values():
            for row in per_seed:
                assert row.power_saving_percent > -1.5

    def test_fps_ratio_band_holds(self, fresh_rows):
        for per_seed in fresh_rows.values():
            for row in per_seed:
                assert 0.7 <= row.fps_ratio <= 1.02

    def test_mobicore_uses_fewer_cores(self, fresh_rows):
        for per_seed in fresh_rows.values():
            for row in per_seed:
                assert (
                    row.candidate.mean_online_cores
                    <= row.baseline.mean_online_cores + 0.05
                )
