"""The topology refactor's parity contract, pinned bit for bit.

``tests/data/golden_single_cluster.json`` was captured on the
pre-topology code (one hard-coded cluster per platform): one busyloop
session per (platform, policy) pair over the whole registered fleet,
with every float summary field stored as ``float.hex`` and the runner
cache key alongside.  This test re-runs the exact same sessions on the
current code and demands **bit identity** — same cache keys (so every
pre-refactor on-disk cache and store stays warm) and same summaries to
the last ulp (see ``docs/NUMERICS.md``).

If this test fails after an intentional numerics change, the golden
must be re-captured *from the seed commit*, not from the new code.
"""

import json
from pathlib import Path

import pytest

from repro.config import SimulationConfig
from repro.kernel.engine import Session
from repro.metrics.summary import summarize
from repro.scenario import Scenario, compile_scenario
from repro.soc.platform import Platform

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_single_cluster.json"

#: The float summary fields pinned by the golden, hex-encoded.
HEX_FIELDS = (
    "mean_power_mw",
    "mean_cpu_power_mw",
    "energy_mj",
    "mean_frequency_khz",
    "mean_online_cores",
    "mean_load_percent",
    "load_std_percent",
)


def load_golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def golden_points():
    return sorted(load_golden())


@pytest.mark.parametrize("point", golden_points())
def test_single_cluster_sessions_are_bit_identical(point):
    platform_name, policy_name = point.split("|")
    golden = load_golden()[point]
    scenario = Scenario(
        platform=platform_name,
        policy=policy_name,
        workload="busyloop",
        workload_params={"target_load_percent": 55.0, "num_threads": 2},
        config=SimulationConfig(
            tick_seconds=0.020, duration_seconds=6.0, seed=7, warmup_seconds=1.0
        ),
    )
    spec = compile_scenario(scenario)

    # Content addresses must not move: a cache or store populated before
    # the topology refactor must stay warm after it.
    assert spec.cache_key() == golden["cache_key"], (
        f"{point}: cache key drifted — pre-refactor caches would go cold"
    )

    session = Session(
        Platform.from_spec(spec.resolve_platform_spec()),
        spec.build_workload(),
        spec.build_policy(),
        spec.config,
        pin_uncore_max=spec.pin_uncore_max,
    )
    summary = summarize(session.run())
    for field in HEX_FIELDS:
        actual = getattr(summary, field).hex()
        assert actual == golden[field], (
            f"{point}: {field} drifted from the seed "
            f"({actual} != {golden[field]})"
        )
    assert summary.dvfs_transitions == golden["dvfs_transitions"], point
    assert summary.hotplug_transitions == golden["hotplug_transitions"], point


def test_golden_covers_the_seed_fleet():
    """The golden spans every seed platform and the Nexus 5 ablations."""
    points = golden_points()
    platforms = {point.split("|")[0] for point in points}
    assert len(points) == 15
    assert "Nexus 5" in platforms and len(platforms) == 6
    nexus5_policies = {
        point.split("|")[1] for point in points if point.startswith("Nexus 5|")
    }
    assert nexus5_policies == {
        "android-default",
        "mobicore",
        "race-to-idle",
        "dvfs-only",
        "dcs-only",
    }
