"""Trace replay fidelity: a captured trace reproduces the original session."""

import pytest

from repro.config import SimulationConfig
from repro.kernel.simulator import Simulator
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.base import WorkloadContext
from repro.workloads.games import game_workload
from repro.workloads.traces import DemandTrace, TraceWorkload

CFG = SimulationConfig(duration_seconds=6.0, seed=9, warmup_seconds=1.0)


def run(workload):
    platform = Platform.from_spec(nexus5_spec())
    return Simulator(
        platform, workload, AndroidDefaultPolicy(), CFG, pin_uncore_max=True
    ).run()


class TestReplayFidelity:
    def test_replayed_session_is_bit_identical(self, opp_table):
        """Capture a game's demand, replay it: the whole session trace
        (power, frequencies, cores, FPS-free columns) matches."""
        context = WorkloadContext(
            num_cores=4, opp_table=opp_table, dt_seconds=CFG.tick_seconds, seed=CFG.seed
        )
        captured = DemandTrace.capture(
            game_workload("Angry Birds"), context, ticks=CFG.total_ticks
        )

        original = run(game_workload("Angry Birds"))
        replayed = run(TraceWorkload(captured))

        for a, b in zip(original.trace.records, replayed.trace.records):
            assert a.frequencies_khz == b.frequencies_khz
            assert a.online_mask == b.online_mask
            assert a.power_mw == pytest.approx(b.power_mw, abs=1e-6)
            assert a.global_util_percent == pytest.approx(
                b.global_util_percent, abs=1e-9
            )

    def test_csv_round_tripped_trace_still_replays(self, opp_table):
        context = WorkloadContext(
            num_cores=4, opp_table=opp_table, dt_seconds=CFG.tick_seconds, seed=CFG.seed
        )
        captured = DemandTrace.capture(
            game_workload("Badland"), context, ticks=CFG.total_ticks
        )
        parsed = DemandTrace.from_csv(captured.to_csv())

        direct = run(TraceWorkload(captured))
        roundtripped = run(TraceWorkload(parsed))
        # CSV stores cycles to 0.1; power stays equal to float display noise
        assert roundtripped.mean_power_mw == pytest.approx(
            direct.mean_power_mw, rel=1e-4
        )

    def test_replay_is_policy_independent_input(self, opp_table):
        """The same trace drives different policies -- the controlled-
        variable property the A/B harness relies on."""
        from repro.core.mobicore import MobiCorePolicy

        context = WorkloadContext(
            num_cores=4, opp_table=opp_table, dt_seconds=CFG.tick_seconds, seed=CFG.seed
        )
        captured = DemandTrace.capture(
            game_workload("Badland"), context, ticks=CFG.total_ticks
        )
        platform = Platform.from_spec(nexus5_spec())
        mobicore = Simulator(
            platform,
            TraceWorkload(captured),
            MobiCorePolicy.for_platform(platform),
            CFG,
            pin_uncore_max=True,
        ).run()
        baseline = run(TraceWorkload(captured))
        assert mobicore.mean_power_mw < baseline.mean_power_mw
