"""The shipped examples must run (the fast ones, as subprocesses)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"


def run_example(name, *args, timeout=120):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_adb_shell_demo(self):
        result = run_example("adb_shell_demo.py")
        assert result.returncode == 0, result.stderr
        assert "mpdecision" in result.stdout
        assert "quota: 0.90" in result.stdout

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "MobiCore power saving" in result.stdout
        assert "FPS ratio" in result.stdout

    def test_custom_platform(self):
        result = run_example("custom_platform.py")
        assert result.returncode == 0, result.stderr
        assert "Octa 2016" in result.stdout
        assert "power saving on the custom device" in result.stdout

    def test_gaming_evaluation_writes_traces(self, tmp_path):
        result = run_example("gaming_evaluation.py", str(tmp_path), timeout=300)
        assert result.returncode == 0, result.stderr
        assert "mean power saving" in result.stdout
        csvs = list(tmp_path.glob("*.csv"))
        assert len(csvs) == 10  # five games x two policies
        header = csvs[0].read_text().splitlines()[0]
        assert header.startswith("tick,")
