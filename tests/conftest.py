"""Shared fixtures: the calibrated Nexus 5 and short session configs."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform


@pytest.fixture
def spec():
    """A fresh Nexus 5 spec (the paper's platform, Table 1)."""
    return nexus5_spec()


@pytest.fixture
def platform(spec):
    """A fresh Nexus 5 runtime platform in boot state."""
    return Platform.from_spec(spec)


@pytest.fixture
def opp_table(spec):
    """The Nexus 5's 14-point OPP ladder."""
    return spec.opp_table


@pytest.fixture
def short_config():
    """A 5-second session: long enough for policies to settle."""
    return SimulationConfig(duration_seconds=5.0, seed=0, warmup_seconds=1.0)


@pytest.fixture
def tiny_config():
    """A 1-second session for cheap smoke checks."""
    return SimulationConfig(duration_seconds=1.0, seed=0)
