"""The documentation gates CI enforces, runnable locally.

The infrastructure packages (`repro.faults`, `repro.runner`,
`repro.scenario`, `repro.store`), the hardware substrate (`repro.soc`
plus `repro.policies.energy_aware`), the columnar trace spine
(`repro.kernel.trace_buffer`, `repro.obs.columnar`), the ops plane
(`repro.obs.metrics_plane`), and the batch engine
(`repro.kernel.batch_engine`) promise complete docstrings —
docs/API.md points readers at `help()` — so the gate is 100%, checked
by `tools/docstring_coverage.py` in CI and here.
"""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
TOOL = ROOT / "tools" / "docstring_coverage.py"


def run_tool(*args):
    return subprocess.run(
        [sys.executable, str(TOOL), *args],
        capture_output=True, text=True, cwd=ROOT,
    )


class TestGatedPackages:
    def test_faults_and_runner_fully_documented(self):
        result = run_tool("src/repro/faults", "src/repro/runner")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "(100.0%)" in result.stdout

    def test_scenario_package_fully_documented(self):
        result = run_tool("src/repro/scenario")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "(100.0%)" in result.stdout

    def test_trace_spine_fully_documented(self):
        result = run_tool(
            "src/repro/kernel/trace_buffer.py", "src/repro/obs/columnar.py"
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "(100.0%)" in result.stdout

    def test_metrics_plane_fully_documented(self):
        result = run_tool("src/repro/obs/metrics_plane")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "(100.0%)" in result.stdout

    def test_batch_engine_fully_documented(self):
        result = run_tool("src/repro/kernel/batch_engine.py")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "(100.0%)" in result.stdout

    def test_store_package_fully_documented(self):
        result = run_tool("src/repro/store")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "(100.0%)" in result.stdout

    def test_soc_package_fully_documented(self):
        result = run_tool("src/repro/soc", "src/repro/policies/energy_aware.py")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "(100.0%)" in result.stdout


class TestTool:
    def test_undocumented_code_fails_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Documented module."""\n\n'
            "def documented():\n"
            '    """Has one."""\n\n'
            "def naked():\n"
            "    pass\n",
            encoding="utf-8",
        )
        result = run_tool(str(bad))
        assert result.returncode == 1
        assert "MISSING" in result.stdout
        assert "naked" in result.stdout

    def test_private_names_and_stubs_exempt(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            '"""Documented module."""\n\n'
            "def _helper():\n"
            "    pass\n\n"
            "class Thing:\n"
            '    """Documented class."""\n\n'
            "    def __init__(self):\n"
            "        pass\n\n"
            "    def stub(self): ...\n",
            encoding="utf-8",
        )
        result = run_tool(str(ok))
        assert result.returncode == 0, result.stdout

    def test_threshold_is_tunable(self, tmp_path):
        half = tmp_path / "half.py"
        half.write_text(
            '"""Documented module."""\n\n'
            "def naked():\n"
            "    pass\n",
            encoding="utf-8",
        )
        assert run_tool(str(half), "--min", "50").returncode == 0
        assert run_tool(str(half), "--min", "75").returncode == 1
