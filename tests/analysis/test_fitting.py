"""Model fitting: recovering PowerParams from measurements."""

import pytest

from repro.analysis.fitting import (
    PowerSample,
    collect_samples,
    fit_power_params,
)
from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.soc.calibration import nexus5_opp_table, nexus5_power_params
from repro.soc.power_model import CpuPowerModel


def synthetic_samples(params=None, noise=None):
    """Samples generated straight from the analytic model (no cache/overhead)."""
    if params is None:
        params = nexus5_power_params()
    table = nexus5_opp_table()
    model = CpuPowerModel(params, table)
    samples = []
    index = 0
    for opp in table.representative_five():
        for busy in (0.1, 0.4, 0.7, 1.0):
            power = (
                busy * model.dynamic_power_mw(opp)
                + model.static_power_mw(opp)
                + params.platform_base_mw
            )
            if noise is not None:
                power *= 1.0 + noise[index % len(noise)]
            samples.append(
                PowerSample(
                    frequency_khz=opp.frequency_khz,
                    voltage=opp.voltage,
                    busy_fraction=busy,
                    online_count=1,
                    power_mw=power,
                )
            )
            index += 1
    return samples


class TestFitRecovery:
    def test_exact_samples_recover_parameters(self):
        truth = nexus5_power_params()
        fit = fit_power_params(synthetic_samples())
        assert fit.params.ceff_mw_per_ghz_v2 == pytest.approx(
            truth.ceff_mw_per_ghz_v2, rel=0.02
        )
        assert fit.params.platform_base_mw == pytest.approx(
            truth.platform_base_mw, rel=0.05
        )
        assert fit.rmse_mw < 1.0

    def test_recovers_static_anchors(self):
        fit = fit_power_params(synthetic_samples())
        assert fit.static_power_mw(0.9) == pytest.approx(47.0, rel=0.05)
        assert fit.static_power_mw(1.2) == pytest.approx(120.0, rel=0.05)

    def test_tolerates_measurement_noise(self):
        noise = [0.01, -0.012, 0.008, -0.006, 0.011, -0.009]
        truth = nexus5_power_params()
        fit = fit_power_params(synthetic_samples(noise=noise))
        assert fit.params.ceff_mw_per_ghz_v2 == pytest.approx(
            truth.ceff_mw_per_ghz_v2, rel=0.15
        )
        assert fit.static_power_mw(1.2) == pytest.approx(120.0, rel=0.20)


class TestFitValidation:
    def test_too_few_samples(self):
        with pytest.raises(ExperimentError):
            fit_power_params(synthetic_samples()[:3])

    def test_needs_frequency_diversity(self):
        samples = [s for s in synthetic_samples() if s.frequency_khz == 300_000]
        with pytest.raises(ExperimentError):
            fit_power_params(samples)

    def test_needs_busy_diversity(self):
        samples = [s for s in synthetic_samples() if s.busy_fraction == 1.0]
        with pytest.raises(ExperimentError):
            fit_power_params(samples)

    def test_sample_validation(self):
        with pytest.raises(Exception):
            PowerSample(300_000, 0.9, 1.5, 1, 500.0)


class TestEndToEndCalibration:
    def test_fit_from_simulated_sweep(self, spec):
        """The full loop: characterise the device, fit, and check the
        recovered model predicts the sweep within a few percent."""
        config = SimulationConfig(duration_seconds=3.0, warmup_seconds=0.5)
        samples = collect_samples(
            spec,
            utilization_percents=(20.0, 60.0, 100.0),
            config=config,
        )
        fit = fit_power_params(samples)
        # The simulated sweep includes cache power the core fit folds
        # into its terms; prediction error stays small anyway.
        for sample in samples:
            predicted = (
                sample.busy_fraction
                * fit.params.ceff_mw_per_ghz_v2
                * (sample.frequency_khz / 1e6)
                * sample.voltage ** 2
                + fit.static_power_mw(sample.voltage)
                + fit.params.platform_base_mw
            )
            assert predicted == pytest.approx(sample.power_mw, rel=0.05)

    def test_fitted_model_drives_mobicore(self, spec):
        """A MobiCore built from the *fitted* parameters behaves like one
        built from the ground truth."""
        from repro.analysis.sweep import run_session
        from repro.core.mobicore import MobiCorePolicy
        from repro.metrics.summary import summarize
        from repro.workloads.busyloop import BusyLoopApp

        config = SimulationConfig(duration_seconds=3.0, warmup_seconds=0.5)
        samples = collect_samples(
            spec, utilization_percents=(20.0, 60.0, 100.0), config=config
        )
        fit = fit_power_params(samples)
        session_config = SimulationConfig(duration_seconds=5.0, seed=1, warmup_seconds=1.0)

        def run(params):
            policy = MobiCorePolicy(
                power_params=params, opp_table=spec.opp_table, num_cores=spec.num_cores
            )
            return summarize(
                run_session(spec, BusyLoopApp(30.0), policy, session_config,
                            pin_uncore_max=False)
            ).mean_power_mw

        truth_power = run(spec.power_params)
        fitted_power = run(fit.params)
        assert fitted_power == pytest.approx(truth_power, rel=0.05)
