"""Battery-life projection and the schedutil extension baseline."""

import pytest

from repro.analysis.battery import (
    NEXUS5_BATTERY,
    BatterySpec,
    battery_life_hours,
    extra_minutes,
)
from repro.errors import ConfigError, GovernorError
from repro.governors.base import GovernorInput
from repro.governors.schedutil import SchedutilGovernor


class TestBattery:
    def test_nexus5_energy(self):
        assert NEXUS5_BATTERY.energy_mwh == pytest.approx(2300 * 3.8 * 0.95)

    def test_life_hours(self):
        battery = BatterySpec(1000.0, nominal_voltage=4.0, usable_fraction=1.0)
        assert battery_life_hours(400.0, battery) == pytest.approx(10.0)

    def test_extra_minutes_sign(self):
        assert extra_minutes(2500.0, 2400.0) > 0
        assert extra_minutes(2400.0, 2500.0) < 0

    def test_extra_minutes_gaming_scale(self):
        """A 5% saving on a ~2.5 W gaming session buys ~10 minutes."""
        gained = extra_minutes(2500.0, 2375.0)
        assert 5.0 < gained < 25.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            BatterySpec(1000.0, usable_fraction=0.0)
        with pytest.raises(Exception):
            battery_life_hours(0.0)


def observe(opp_table, load, current):
    return GovernorInput(
        load_percent=load, current_khz=current, opp_table=opp_table, dt_seconds=0.02
    )


class TestSchedutil:
    def test_idle_goes_to_fmin(self, opp_table):
        governor = SchedutilGovernor(down_rate_limit_s=0.0)
        assert governor.select(
            observe(opp_table, 0.0, opp_table.max_frequency_khz)
        ) == opp_table.min_frequency_khz

    def test_full_load_at_fmax_stays(self, opp_table):
        governor = SchedutilGovernor()
        assert governor.select(
            observe(opp_table, 100.0, opp_table.max_frequency_khz)
        ) == opp_table.max_frequency_khz

    def test_headroom_margin(self, opp_table):
        """At 60% of fmax-normalised utilization the target is 75% fmax."""
        governor = SchedutilGovernor(margin=1.25, down_rate_limit_s=0.0)
        fmax = opp_table.max_frequency_khz
        chosen = governor.select(observe(opp_table, 60.0, fmax))
        assert chosen == opp_table.ceil(fmax * 0.75).frequency_khz

    def test_frequency_invariance(self, opp_table):
        """Equal demand observed at different OPPs converges to one target."""
        governor = SchedutilGovernor(down_rate_limit_s=0.0)
        fmax = opp_table.max_frequency_khz
        # 50% busy at fmax == 100% busy at fmax/2: same fmax-normalised util
        at_fmax = governor.select(observe(opp_table, 50.0, fmax))
        governor.reset()
        half = opp_table.ceil(fmax / 2).frequency_khz
        at_half = governor.select(
            observe(opp_table, 50.0 * fmax / half, half)
        )
        assert at_fmax == at_half

    def test_down_rate_limit(self, opp_table):
        governor = SchedutilGovernor(down_rate_limit_s=0.05)
        current = opp_table.max_frequency_khz
        first = governor.select(observe(opp_table, 10.0, current))
        assert first == current  # rate limited
        for _ in range(3):
            current = governor.select(observe(opp_table, 10.0, current))
        assert current < opp_table.max_frequency_khz

    def test_bad_margin(self):
        with pytest.raises(GovernorError):
            SchedutilGovernor(margin=0.9)
