"""Analysis constructors that read an experiment store instead of running.

``comparison_rows_from_store`` and ``summary_columns_from_store`` must
reproduce exactly what the live path computed: the store round-trips
summaries bit-identically, so derived deltas and columns are equal, not
merely close.
"""

import numpy as np
import pytest

from repro.analysis.comparison import PolicyComparison, comparison_rows_from_store
from repro.analysis.sweep import summary_columns, summary_columns_from_store
from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.runner import SessionRunner
from repro.scenario import policy_ref, workload_ref
from repro.store import ExperimentStore, StoreQuery

CFG = SimulationConfig(duration_seconds=2.0, seed=0, warmup_seconds=0.5)


@pytest.fixture
def comparison_store(tmp_path):
    """A store populated by a real two-seed A/B comparison."""
    runner = SessionRunner(jobs=1, store_dir=tmp_path)
    comparison = PolicyComparison(
        "Nexus 5",
        baseline_factory=policy_ref("android-default"),
        candidate_factory=policy_ref("mobicore", platform="Nexus 5"),
        config=CFG,
        runner=runner,
    )
    rows = comparison.compare_seeds(
        workload_ref("busyloop", target_load_percent=40.0), seeds=(0, 1)
    )
    return tmp_path, rows


class TestComparisonRowsFromStore:
    def test_rows_match_the_live_comparison_exactly(self, comparison_store):
        root, live_rows = comparison_store
        stored = comparison_rows_from_store(root, "android-default", "mobicore")
        assert len(stored) == len(live_rows)
        live_by_seed = {row.baseline.seed: row for row in live_rows}
        for row in stored:
            live = live_by_seed[row.baseline.seed]
            assert row.baseline == live.baseline
            assert row.candidate == live.candidate
            assert row.power_saving_percent == live.power_saving_percent

    def test_open_store_and_path_agree(self, comparison_store):
        root, _ = comparison_store
        with ExperimentStore(root) as store:
            from_open = comparison_rows_from_store(
                store, "android-default", "mobicore"
            )
        assert from_open == comparison_rows_from_store(
            root, "android-default", "mobicore"
        )

    def test_incomplete_pair_is_a_typed_error(self, comparison_store):
        root, _ = comparison_store
        with pytest.raises(ExperimentError):
            comparison_rows_from_store(root, "android-default", "no-such-policy")


class TestSummaryColumnsFromStore:
    def test_columns_match_the_live_summaries(self, comparison_store):
        root, live_rows = comparison_store
        live = summary_columns(
            sorted(
                (row.candidate for row in live_rows),
                key=lambda summary: summary.seed,
            )
        )
        stored = summary_columns_from_store(
            root, StoreQuery(policy="mobicore"), fields=tuple(live)
        )
        for field in live:
            # Key order is deterministic but not seed order; compare as
            # sorted value sets per column (floats stay bit-identical).
            assert np.array_equal(np.sort(stored[field]), np.sort(live[field]))

    def test_empty_query_is_a_typed_error(self, comparison_store):
        root, _ = comparison_store
        with pytest.raises(ExperimentError):
            summary_columns_from_store(root, StoreQuery(policy="no-such-policy"))
