"""The section 3.4 big.LITTLE analytical exploration."""

import pytest

from repro.analysis.biglittle import (
    ClusterModel,
    compare_clusters,
    default_big_cluster,
    default_little_cluster,
    render_comparison,
)
from repro.errors import ExperimentError
from repro.soc.opp import OppTable
from repro.soc.power_model import PowerParams


@pytest.fixture
def little():
    return default_little_cluster()


@pytest.fixture
def big():
    return default_big_cluster()


class TestClusterModel:
    def test_throughput_scales_with_ipc(self, little, big):
        assert little.max_throughput_ips() == pytest.approx(
            4 * 1_200_000e3 * 0.6
        )
        assert big.max_throughput_ips() > little.max_throughput_ips()

    def test_validation(self):
        table = OppTable.linear([300_000], 0.9, 0.9)
        params = PowerParams(ceff_mw_per_ghz_v2=10.0, leak_coefficient_mw=1.0,
                             leak_exponent=1.0)
        with pytest.raises(Exception):
            ClusterModel("bad", table, params, ipc_scale=0.0, num_cores=4)
        with pytest.raises(ExperimentError):
            ClusterModel("bad", table, params, ipc_scale=1.0, num_cores=0)


class TestComparison:
    def test_paper_claim_little_wins_where_feasible(self, little, big):
        """Section 3.4: more little cores improve energy efficiency when
        correct operating points are selected (sustained, no idleness)."""
        points = compare_clusters(little, big, [0.05, 0.1, 0.2, 0.3])
        for point in points:
            assert point.little is not None
            assert point.winner == "little"
            assert point.little.power_mw < point.big.power_mw

    def test_big_needed_beyond_little_ceiling(self, little, big):
        points = compare_clusters(little, big, [0.5, 1.0])
        for point in points:
            assert point.little is None
            assert point.big is not None
            assert "big" in point.winner

    def test_points_cover_demand(self, little, big):
        for point in compare_clusters(little, big, [0.1, 0.25]):
            for best, cluster in ((point.little, little), (point.big, big)):
                throughput = (
                    best.online_count
                    * best.frequency_khz
                    * 1000.0
                    * cluster.ipc_scale
                )
                assert throughput + 1e-6 >= point.demand_ips

    def test_little_spreads_wide_under_load(self, little, big):
        """'the use of little cores (and thus more of them)': the little
        optimum uses all four cores before reaching its top OPP."""
        point = compare_clusters(little, big, [0.25])[0]
        assert point.little.online_count == 4
        assert point.little.frequency_khz < little.opp_table.max_frequency_khz

    def test_render(self, little, big):
        text = render_comparison(compare_clusters(little, big, [0.1, 1.0]))
        assert "little" in text and "infeasible" in text

    def test_validation(self, little, big):
        with pytest.raises(ExperimentError):
            compare_clusters(little, big, [])
        with pytest.raises(ExperimentError):
            compare_clusters(little, big, [-0.1])
