"""The section 3.4 big.LITTLE analytical exploration."""

import pytest

from repro.analysis.biglittle import (
    ClusterModel,
    compare_clusters,
    default_big_cluster,
    default_little_cluster,
    render_comparison,
)
from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.kernel.engine import Session
from repro.metrics.summary import summarize
from repro.policies.energy_aware import EnergyAwarePolicy
from repro.soc.catalog import odroid_xu3_spec
from repro.soc.opp import OppTable
from repro.soc.platform import Platform
from repro.soc.power_model import PowerParams
from repro.workloads.busyloop import BusyLoopApp


@pytest.fixture
def little():
    return default_little_cluster()


@pytest.fixture
def big():
    return default_big_cluster()


class TestClusterModel:
    def test_throughput_scales_with_ipc(self, little, big):
        assert little.max_throughput_ips() == pytest.approx(
            4 * 1_200_000e3 * 0.6
        )
        assert big.max_throughput_ips() > little.max_throughput_ips()

    def test_validation(self):
        table = OppTable.linear([300_000], 0.9, 0.9)
        params = PowerParams(ceff_mw_per_ghz_v2=10.0, leak_coefficient_mw=1.0,
                             leak_exponent=1.0)
        with pytest.raises(Exception):
            ClusterModel("bad", table, params, ipc_scale=0.0, num_cores=4)
        with pytest.raises(ExperimentError):
            ClusterModel("bad", table, params, ipc_scale=1.0, num_cores=0)


class TestComparison:
    def test_paper_claim_little_wins_where_feasible(self, little, big):
        """Section 3.4: more little cores improve energy efficiency when
        correct operating points are selected (sustained, no idleness)."""
        points = compare_clusters(little, big, [0.05, 0.1, 0.2, 0.3])
        for point in points:
            assert point.little is not None
            assert point.winner == "little"
            assert point.little.power_mw < point.big.power_mw

    def test_big_needed_beyond_little_ceiling(self, little, big):
        points = compare_clusters(little, big, [0.5, 1.0])
        for point in points:
            assert point.little is None
            assert point.big is not None
            assert "big" in point.winner

    def test_points_cover_demand(self, little, big):
        for point in compare_clusters(little, big, [0.1, 0.25]):
            for best, cluster in ((point.little, little), (point.big, big)):
                throughput = (
                    best.online_count
                    * best.frequency_khz
                    * 1000.0
                    * cluster.ipc_scale
                )
                assert throughput + 1e-6 >= point.demand_ips

    def test_little_spreads_wide_under_load(self, little, big):
        """'the use of little cores (and thus more of them)': the little
        optimum uses all four cores before reaching its top OPP."""
        point = compare_clusters(little, big, [0.25])[0]
        assert point.little.online_count == 4
        assert point.little.frequency_khz < little.opp_table.max_frequency_khz

    def test_render(self, little, big):
        text = render_comparison(compare_clusters(little, big, [0.1, 1.0]))
        assert "little" in text and "infeasible" in text

    def test_validation(self, little, big):
        with pytest.raises(ExperimentError):
            compare_clusters(little, big, [])
        with pytest.raises(ExperimentError):
            compare_clusters(little, big, [-0.1])


class TestAgreementWithSimulation:
    """Satellite check: the analytical sweep and a simulated run of the
    same catalog board reach the same verdict, from the same
    :class:`~repro.soc.topology.ClusterSpec` calibration."""

    def test_analytical_winner_matches_simulated_placement(self):
        spec = odroid_xu3_spec()
        little_spec, big_spec = spec.cluster_specs()
        little = ClusterModel.from_spec(little_spec)
        big = ClusterModel.from_spec(big_spec)

        # A sustained spinning busyloop; its global target is a fraction
        # of the full eight-core-at-big-fmax capacity, converted here to
        # the same reference-ips demand the analytical sweep uses.
        target_percent = 12.0
        demand_ips = (
            target_percent
            / 100.0
            * spec.num_cores
            * big_spec.opp_table.max_frequency_khz
            * 1000.0
        )
        point = compare_clusters(
            little, big, [demand_ips / big.max_throughput_ips()]
        )[0]
        assert point.winner == "little"
        assert point.little.power_mw < point.big.power_mw

        platform = Platform.from_spec(spec)
        policy = EnergyAwarePolicy.for_platform_spec(spec)
        workload = BusyLoopApp(target_percent, num_threads=2, idle_gap_seconds=0.0)
        config = SimulationConfig(
            tick_seconds=0.02, duration_seconds=4.0, seed=7, warmup_seconds=1.0
        )
        summary = summarize(Session(platform, workload, policy, config).run())

        # Same verdict in simulation: the placement parks the big cluster
        # and runs the demand on little silicon below little's fmax...
        assert summary.mean_online_cores <= little_spec.num_cores
        assert summary.mean_frequency_khz <= little_spec.opp_table.max_frequency_khz
        # ...at a power in the analytical optimum's ballpark (the sim
        # adds DVFS headroom and transition transients on top).
        assert summary.mean_cpu_power_mw == pytest.approx(
            point.little.power_mw, rel=0.35
        )
