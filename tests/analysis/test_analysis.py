"""Sweeps, ratio analysis, policy comparison, and report rendering."""

import pytest

from repro.analysis.comparison import PolicyComparison
from repro.analysis.ratio import performance_power_ratio
from repro.analysis.report import (
    format_mhz,
    format_mw,
    format_percent,
    render_series,
    render_table,
)
from repro.analysis.sweep import (
    core_count_sweep,
    frequency_sweep,
    run_session,
    summary_columns,
    utilization_sweep,
)
from repro.config import SimulationConfig
from repro.core.mobicore import MobiCorePolicy
from repro.errors import ExperimentError
from repro.policies.android_default import AndroidDefaultPolicy
from repro.policies.static import StaticPolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.games import game_workload

CFG = SimulationConfig(duration_seconds=3.0, seed=1, warmup_seconds=0.5)


class TestSweeps:
    def test_utilization_sweep_monotone(self, spec):
        summaries = utilization_sweep(
            spec, 1, spec.opp_table.max_frequency_khz, [10.0, 50.0, 100.0], CFG
        )
        powers = [s.mean_power_mw for s in summaries]
        assert powers == sorted(powers)

    def test_utilization_sweep_needs_levels(self, spec):
        with pytest.raises(ExperimentError):
            utilization_sweep(spec, 1, 300_000, [], CFG)

    def test_frequency_sweep_monotone(self, spec):
        summaries = frequency_sweep(
            spec, 1, [300_000, 960_000, 2_265_600], 100.0, CFG
        )
        powers = [s.mean_power_mw for s in summaries]
        assert powers == sorted(powers)

    def test_core_count_sweep_monotone(self, spec):
        summaries = core_count_sweep(spec, [1, 2, 4], 960_000, 100.0, CFG)
        powers = [s.mean_power_mw for s in summaries]
        assert powers == sorted(powers)

    def test_run_session_isolated_platforms(self, spec):
        """Two runs never share thermal or cluster state."""
        first = run_session(spec, BusyLoopApp(100.0), StaticPolicy(4, 2_265_600), CFG)
        second = run_session(spec, BusyLoopApp(100.0), StaticPolicy(4, 2_265_600), CFG)
        assert first.trace.to_csv() == second.trace.to_csv()


class TestSummaryColumns:
    def test_columns_align_with_summary_rows(self, spec):
        summaries = frequency_sweep(spec, 1, [300_000, 960_000], 100.0, CFG)
        columns = summary_columns(summaries)
        assert columns["mean_power_mw"].tolist() == [
            s.mean_power_mw for s in summaries
        ]
        assert all(len(column) == len(summaries) for column in columns.values())

    def test_fps_none_becomes_nan(self, spec):
        import numpy as np

        summaries = frequency_sweep(spec, 1, [960_000], 100.0, CFG)
        assert summaries[0].mean_fps is None  # busyloop reports no frames
        column = summary_columns(summaries, fields=("mean_fps",))["mean_fps"]
        assert np.isnan(column[0])

    def test_empty_input_rejected(self):
        with pytest.raises(ExperimentError):
            summary_columns([])


class TestRatio:
    def test_points_per_frequency(self, spec):
        points = performance_power_ratio(
            spec, 1, frequencies_khz=[300_000, 2_265_600], config=CFG
        )
        assert [p.frequency_khz for p in points] == [300_000, 2_265_600]
        assert all(p.score > 0 and p.mean_power_mw > 0 for p in points)
        assert points[1].score > points[0].score

    def test_bad_core_count(self, spec):
        with pytest.raises(ExperimentError):
            performance_power_ratio(spec, 9, config=CFG)


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        spec = nexus5_spec()
        return PolicyComparison(
            spec,
            baseline_factory=AndroidDefaultPolicy,
            candidate_factory=lambda: MobiCorePolicy(
                power_params=spec.power_params,
                opp_table=spec.opp_table,
                num_cores=spec.num_cores,
            ),
            config=SimulationConfig(duration_seconds=4.0, seed=2, warmup_seconds=1.0),
            pin_uncore_max=False,
        )

    def test_row_deltas(self, comparison):
        row = comparison.compare(lambda: BusyLoopApp(30.0))
        assert row.workload.startswith("busyloop")
        assert row.power_saving_percent > 0
        assert row.fps_ratio is None

    def test_game_row_has_fps_ratio(self, comparison):
        row = comparison.compare(lambda: game_workload("Badland"))
        assert row.fps_ratio is not None
        assert 0 < row.fps_ratio <= 1.1

    def test_seeds_vary_results(self, comparison):
        rows = comparison.compare_seeds(lambda: game_workload("Badland"), [1, 2])
        assert len(rows) == 2
        assert rows[0].baseline.mean_power_mw != rows[1].baseline.mean_power_mw

    def test_mean_power_saving(self, comparison):
        rows = comparison.compare_seeds(lambda: BusyLoopApp(30.0), [1, 2])
        mean = PolicyComparison.mean_power_saving(rows)
        assert mean == pytest.approx(
            sum(r.power_saving_percent for r in rows) / 2
        )

    def test_empty_seeds_rejected(self, comparison):
        with pytest.raises(ExperimentError):
            comparison.compare_seeds(lambda: BusyLoopApp(10.0), [])


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_render_table_row_length_checked(self):
        with pytest.raises(ExperimentError):
            render_table(("a", "b"), [(1,)])

    def test_render_series_bars(self):
        text = render_series("t", "x", "y", ["a", "b"], [1.0, 2.0], bar_width=10)
        lines = text.splitlines()
        assert "##########" in lines[2]
        assert "#####" in lines[1]

    def test_render_series_length_checked(self):
        with pytest.raises(ExperimentError):
            render_series("t", "x", "y", ["a"], [1.0, 2.0])

    def test_formatters(self):
        assert format_mw(980.62) == "980.6 mW"
        assert format_mhz(2_265_600) == "2265.6 MHz"
        assert format_percent(5.34) == "5.3%"
        assert format_percent(5.34, signed=True) == "+5.3%"
