"""Trial statistics: confidence intervals over repeated seeds."""

import pytest

from repro.analysis.stats import TrialStats, trial_statistics
from repro.errors import ExperimentError


class TestTrialStatistics:
    def test_single_trial_degenerates(self):
        stats = trial_statistics([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 5.0
        assert "single trial" in str(stats)

    def test_mean_and_std(self):
        stats = trial_statistics([2.0, 4.0, 6.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.std == pytest.approx(2.0)
        assert stats.n == 3

    def test_interval_symmetric_around_mean(self):
        stats = trial_statistics([1.0, 2.0, 3.0, 4.0])
        assert (stats.ci_low + stats.ci_high) / 2 == pytest.approx(stats.mean)
        assert stats.contains(stats.mean)

    def test_known_t_interval(self):
        """n=4, std=1 -> half width = t(0.975, 3) * 1/2 = 1.5912."""
        stats = trial_statistics([-1.0, 0.0, 0.0, 1.0])
        # std of [-1, 0, 0, 1] = sqrt(2/3)
        expected_half = 3.1824 * (2.0 / 3.0) ** 0.5 / 2.0
        assert stats.half_width == pytest.approx(expected_half, rel=1e-3)

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = trial_statistics(values, confidence=0.80)
        wide = trial_statistics(values, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_interval_shrinks_with_more_trials(self):
        few = trial_statistics([1.0, 3.0])
        many = trial_statistics([1.0, 3.0] * 8)
        assert many.half_width < few.half_width

    def test_validation(self):
        with pytest.raises(ExperimentError):
            trial_statistics([])
        with pytest.raises(ExperimentError):
            trial_statistics([1.0], confidence=1.0)

    def test_contains(self):
        stats = trial_statistics([10.0, 12.0, 14.0])
        assert stats.contains(12.0)
        assert not stats.contains(100.0)


class TestWithComparisons:
    def test_saving_interval_over_seeds(self):
        """Integration: game savings over seeds yield a finite interval."""
        from repro.analysis.comparison import PolicyComparison
        from repro.config import SimulationConfig
        from repro.core.mobicore import MobiCorePolicy
        from repro.policies.android_default import AndroidDefaultPolicy
        from repro.soc.catalog import nexus5_spec
        from repro.workloads.games import game_workload

        spec = nexus5_spec()
        comparison = PolicyComparison(
            spec,
            baseline_factory=AndroidDefaultPolicy,
            candidate_factory=lambda: MobiCorePolicy(
                power_params=spec.power_params,
                opp_table=spec.opp_table,
                num_cores=spec.num_cores,
            ),
            config=SimulationConfig(duration_seconds=10.0, warmup_seconds=2.0),
        )
        rows = comparison.compare_seeds(lambda: game_workload("Badland"), [1, 2, 3])
        stats = trial_statistics([row.power_saving_percent for row in rows])
        assert stats.n == 3
        assert stats.ci_low < stats.mean < stats.ci_high
        assert stats.mean > 0.0
