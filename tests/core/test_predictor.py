"""The burst/slow-mode classifier and the one-step forecast."""

import pytest

from repro.core.predictor import WorkloadMode, WorkloadPredictor
from repro.errors import ConfigError


class TestClassification:
    def test_high_load(self):
        predictor = WorkloadPredictor(load_threshold=40.0)
        assert predictor.classify(60.0, 0.0) is WorkloadMode.HIGH

    def test_burst(self):
        predictor = WorkloadPredictor(up_threshold=2.0)
        assert predictor.classify(20.0, 5.0) is WorkloadMode.BURST

    def test_slow(self):
        predictor = WorkloadPredictor(down_threshold=-2.0)
        assert predictor.classify(20.0, -5.0) is WorkloadMode.SLOW

    def test_steady(self):
        predictor = WorkloadPredictor(up_threshold=2.0, down_threshold=-2.0)
        assert predictor.classify(20.0, 0.0) is WorkloadMode.STEADY

    def test_threshold_ordering(self):
        with pytest.raises(ConfigError):
            WorkloadPredictor(up_threshold=-1.0, down_threshold=1.0)


class TestForecast:
    def test_no_history_forecasts_current(self):
        predictor = WorkloadPredictor()
        assert predictor.forecast(30.0) == pytest.approx(30.0)

    def test_trend_tracks_deltas(self):
        predictor = WorkloadPredictor(smoothing=1.0)
        predictor.observe(4.0)
        assert predictor.trend_percent_per_tick == pytest.approx(4.0)
        assert predictor.forecast(30.0) == pytest.approx(34.0)

    def test_smoothing_averages(self):
        predictor = WorkloadPredictor(smoothing=0.5)
        predictor.observe(4.0)
        predictor.observe(0.0)
        assert predictor.trend_percent_per_tick == pytest.approx(1.0)

    def test_forecast_clamped(self):
        predictor = WorkloadPredictor(smoothing=1.0)
        predictor.observe(50.0)
        assert predictor.forecast(90.0) == 100.0
        predictor.observe(-300.0)
        predictor.observe(-300.0)
        assert predictor.forecast(10.0) == 0.0

    def test_reset(self):
        predictor = WorkloadPredictor(smoothing=1.0)
        predictor.observe(10.0)
        predictor.reset()
        assert predictor.trend_percent_per_tick == 0.0

    def test_bad_smoothing(self):
        with pytest.raises(ConfigError):
            WorkloadPredictor(smoothing=0.0)
