"""MobiCorePolicy: the Figure 8 flow, unit and session level."""

import pytest

from repro.config import SimulationConfig
from repro.core.mobicore import MobiCorePolicy
from repro.kernel.simulator import Simulator
from repro.policies.android_default import AndroidDefaultPolicy
from repro.policies.base import SystemObservation
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.synthetic import ConstantWorkload, StepWorkload


@pytest.fixture
def policy(spec):
    policy = MobiCorePolicy(
        power_params=spec.power_params,
        opp_table=spec.opp_table,
        num_cores=spec.num_cores,
    )
    policy.reset()
    return policy


def observation(opp_table, loads, freqs=None, online=None, delta=0.0, quota=1.0):
    n = len(loads)
    if freqs is None:
        freqs = (opp_table.max_frequency_khz,) * n
    if online is None:
        online = (True,) * n
    active = [l for l, on in zip(loads, online) if on]
    return SystemObservation(
        tick=1,
        dt_seconds=0.02,
        per_core_load_percent=tuple(loads),
        global_util_percent=sum(active) / len(active) if active else 0.0,
        delta_util_percent=delta,
        frequencies_khz=tuple(freqs),
        online_mask=tuple(online),
        quota=quota,
        opp_table=opp_table,
    )


class TestDecisionSteps:
    def test_offlines_under_10_percent_cores(self, policy, opp_table):
        decision = policy.decide(
            observation(opp_table, (60.0, 55.0, 3.0, 1.0))
        )
        assert decision.online_mask == [True, True, False, False]

    def test_keeps_at_least_one_core(self, policy, opp_table):
        decision = policy.decide(observation(opp_table, (0.0, 0.0, 0.0, 0.0)))
        assert decision.online_mask[0]
        assert sum(decision.online_mask) >= 1

    def test_busy_cores_stay_online(self, policy, opp_table):
        decision = policy.decide(observation(opp_table, (90.0,) * 4))
        assert decision.online_mask == [True] * 4

    def test_eq9_trims_frequency(self, policy, opp_table):
        """At 50% utilization the re-evaluated frequency is about half
        the ondemand choice."""
        decision = policy.decide(observation(opp_table, (50.0,) * 4))
        target = decision.target_frequencies_khz[0]
        assert target is not None
        assert target < opp_table.max_frequency_khz

    def test_quota_shrinks_on_falling_low_load(self, policy, opp_table):
        low_freq = opp_table.min_frequency_khz
        # First tick establishes the previous load; second shows a fall.
        policy.decide(
            observation(opp_table, (30.0,) * 4, freqs=(low_freq,) * 4)
        )
        decision = policy.decide(
            observation(opp_table, (10.0,) * 4, freqs=(low_freq,) * 4)
        )
        assert decision.quota < 1.0

    def test_quota_boosts_when_pegged(self, policy, opp_table):
        """Cores pegged at the quota ceiling restore the full bandwidth."""
        policy.quota_controller.update(20.0, -5.0)  # shrink first
        decision = policy.decide(
            observation(opp_table, (88.0,) * 4, quota=0.9)
        )
        assert decision.quota == 1.0

    def test_dcs_disabled_keeps_all_cores(self, spec, opp_table):
        policy = MobiCorePolicy(
            power_params=spec.power_params,
            opp_table=opp_table,
            num_cores=4,
            use_dcs=False,
        )
        policy.reset()
        decision = policy.decide(observation(opp_table, (60.0, 55.0, 3.0, 1.0)))
        assert decision.online_mask == [True] * 4

    def test_quota_disabled_ablation(self, spec, opp_table):
        policy = MobiCorePolicy(
            power_params=spec.power_params,
            opp_table=opp_table,
            num_cores=4,
            use_quota=False,
        )
        low = opp_table.min_frequency_khz
        policy.decide(observation(opp_table, (30.0,) * 4, freqs=(low,) * 4))
        decision = policy.decide(
            observation(opp_table, (10.0,) * 4, freqs=(low,) * 4)
        )
        assert decision.quota == 1.0

    def test_newly_onlined_core_gets_frequency(self, policy, opp_table):
        """A core coming online must have a frequency target."""
        decision = policy.decide(
            observation(
                opp_table,
                (100.0, 0.0, 0.0, 0.0),
                online=(True, False, False, False),
            )
        )
        for core_id, online in enumerate(decision.online_mask):
            if online:
                assert decision.target_frequencies_khz[core_id] is not None

    def test_for_platform_constructor(self, platform):
        policy = MobiCorePolicy.for_platform(platform)
        assert policy.num_cores == 4
        assert policy.energy_model.opp_table == platform.opp_table

    def test_reset_clears_state(self, policy, opp_table):
        policy.decide(observation(opp_table, (30.0,) * 4))
        policy.reset()
        assert policy.quota_controller.quota == 1.0
        assert policy._prev_scaled_load is None


class TestSessionBehaviour:
    def run(self, policy_factory, workload, seconds=8.0):
        platform = Platform.from_spec(nexus5_spec())
        config = SimulationConfig(
            duration_seconds=seconds, seed=3, warmup_seconds=2.0
        )
        policy = policy_factory(platform)
        return Simulator(
            platform, workload, policy, config, pin_uncore_max=False
        ).run()

    def test_saves_power_vs_default_at_moderate_load(self):
        baseline = self.run(lambda p: AndroidDefaultPolicy(), BusyLoopApp(30.0))
        mobicore = self.run(MobiCorePolicy.for_platform, BusyLoopApp(30.0))
        assert mobicore.mean_power_mw < baseline.mean_power_mw

    def test_matches_default_at_full_load(self):
        baseline = self.run(lambda p: AndroidDefaultPolicy(), BusyLoopApp(100.0))
        mobicore = self.run(MobiCorePolicy.for_platform, BusyLoopApp(100.0))
        assert mobicore.mean_power_mw == pytest.approx(
            baseline.mean_power_mw, rel=0.02
        )

    def test_offlines_idle_cores_in_session(self):
        result = self.run(MobiCorePolicy.for_platform, ConstantWorkload(8.0))
        assert result.mean_online_cores < 2.0

    def test_responds_to_step_up(self):
        """A step from light to heavy demand must not starve: the policy
        re-onlines cores and raises frequency."""
        workload = StepWorkload([(4.0, 10.0), (4.0, 90.0)])
        result = self.run(MobiCorePolicy.for_platform, workload, seconds=8.0)
        final_quarter = result.trace.measured[-50:]
        mean_cores = sum(r.online_count for r in final_quarter) / len(final_quarter)
        assert mean_cores >= 3.0

    def test_executes_demanded_work(self):
        """MobiCore must still execute (nearly) all feasible demand."""
        result = self.run(MobiCorePolicy.for_platform, BusyLoopApp(40.0))
        executed = result.workload_metrics["executed_cycles"]
        # 40% of platform max over the session, with idle gaps:
        expected = 0.40 * 4 * 2_265_600e3 * 8.0
        assert executed >= expected * 0.9
