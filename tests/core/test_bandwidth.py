"""The Table 2 quota controller."""

import pytest

from repro.core.bandwidth import QuotaController
from repro.errors import BandwidthError


class TestValidation:
    def test_threshold_ordering(self):
        with pytest.raises(BandwidthError):
            QuotaController(down_threshold=5.0, up_threshold=1.0)

    def test_scaling_factor_bounds(self):
        with pytest.raises(BandwidthError):
            QuotaController(scaling_factor=1.0)
        with pytest.raises(BandwidthError):
            QuotaController(scaling_factor=0.0)

    def test_min_quota_bounds(self):
        with pytest.raises(BandwidthError):
            QuotaController(min_quota=0.0)


class TestTable2Branches:
    def test_starts_full(self):
        assert QuotaController().quota == 1.0

    def test_slow_mode_shrinks_by_scaling_factor(self):
        """Table 2 line 5-6: scaling_factor = 0.9; quota *= scaling_factor."""
        controller = QuotaController()
        quota = controller.update(20.0, -5.0)
        assert quota == pytest.approx(0.9)

    def test_slow_mode_compounds_to_floor(self):
        controller = QuotaController(min_quota=0.81)
        for _ in range(10):
            quota = controller.update(20.0, -5.0)
        assert quota == pytest.approx(0.81)

    def test_burst_mode_restores_full(self):
        """Table 2 line 8-10: a rising load gets the entire bandwidth."""
        controller = QuotaController()
        controller.update(20.0, -5.0)
        quota = controller.update(30.0, +10.0)
        assert quota == 1.0

    def test_high_load_bypasses_analysis(self):
        """The util(t) < 40 guard: high load always gets full bandwidth."""
        controller = QuotaController(load_threshold=40.0)
        controller.update(20.0, -5.0)
        quota = controller.update(70.0, -5.0)  # falling but high
        assert quota == 1.0

    def test_steady_band_holds_quota(self):
        controller = QuotaController(down_threshold=-2.0, up_threshold=2.0)
        controller.update(20.0, -5.0)
        quota = controller.update(20.0, 0.0)  # between thresholds
        assert quota == pytest.approx(0.9)

    def test_threshold_exactness(self):
        controller = QuotaController(down_threshold=0.5, up_threshold=5.0)
        # exactly at the down threshold: not a shrink
        assert controller.update(20.0, 0.5) == 1.0
        # just below: shrink
        assert controller.update(20.0, 0.49) == pytest.approx(0.9)

    def test_boost(self):
        controller = QuotaController()
        controller.update(20.0, -5.0)
        assert controller.boost() == 1.0

    def test_reset(self):
        controller = QuotaController()
        controller.update(20.0, -5.0)
        controller.reset()
        assert controller.quota == 1.0

    def test_bad_utilization_rejected(self):
        with pytest.raises(Exception):
            QuotaController().update(150.0, 0.0)
