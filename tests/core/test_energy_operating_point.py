"""The Eq. 10 energy model and the operating-point optimizer."""

import pytest

from repro.core.energy_model import EnergyModel
from repro.core.operating_point import OperatingPointOptimizer
from repro.errors import ConfigError


@pytest.fixture
def model(spec):
    return EnergyModel(spec.power_params, spec.opp_table)


@pytest.fixture
def optimizer(model):
    return OperatingPointOptimizer(model, max_cores=4)


class TestEnergyModel:
    def test_eq10_per_core_power(self, model, opp_table):
        """Eq. (10): busy-weighted dynamic plus static."""
        fmax = opp_table.max_frequency_khz
        idle = model.per_core_power_mw(fmax, 0.0)
        busy = model.per_core_power_mw(fmax, 1.0)
        assert idle == pytest.approx(120.0, abs=0.1)  # static anchor
        assert busy > idle

    def test_combination_excludes_base(self, model, opp_table):
        """Base power cannot change the argmin; it is excluded."""
        one = model.combination_power_mw(1, opp_table.min_frequency_khz, 0.0)
        assert one == pytest.approx(47.0, abs=0.5)

    def test_combination_monotone_in_cores(self, model, opp_table):
        fmax = opp_table.max_frequency_khz
        values = [model.combination_power_mw(n, fmax, 1.0) for n in (1, 2, 3, 4)]
        assert values == sorted(values)

    def test_throughput(self, model):
        assert model.throughput_cycles_per_second(2, 300_000) == pytest.approx(6e8)
        assert model.throughput_cycles_per_second(2, 300_000, quota=0.5) == (
            pytest.approx(3e8)
        )

    def test_minimizing_frequency_is_lowest_admissible(self, model, opp_table):
        """Section 4.2's derivative argument: the minimum is the lowest
        OPP that still covers the load."""
        opp = model.minimizing_frequency(0.9, required_khz_per_core=900_000)
        assert opp.frequency_khz == opp_table.ceil(900_000).frequency_khz

    def test_minimizing_frequency_infeasible_returns_max(self, model, opp_table):
        opp = model.minimizing_frequency(1.0, required_khz_per_core=9e9)
        assert opp.frequency_khz == opp_table.max_frequency_khz

    def test_bad_core_count_rejected(self, model, opp_table):
        with pytest.raises(ConfigError):
            model.combination_power_mw(0, opp_table.min_frequency_khz, 1.0)


class TestOperatingPointOptimizer:
    def test_required_throughput_definition(self, optimizer, opp_table):
        """100% global load = all cores at fmax (section 3.4)."""
        full = optimizer.required_throughput_cps(100.0)
        assert full == pytest.approx(4 * opp_table.max_frequency_khz * 1000.0)

    def test_admissible_points_cover_demand(self, optimizer):
        for load in (10.0, 30.0, 50.0, 70.0):
            demand = optimizer.required_throughput_cps(load)
            for point in optimizer.admissible_points(load):
                throughput = optimizer.model.throughput_cycles_per_second(
                    point.online_count, point.frequency_khz
                )
                assert throughput + 1e-6 >= demand

    def test_more_points_at_lower_load(self, optimizer):
        assert len(optimizer.admissible_points(10.0)) > len(
            optimizer.admissible_points(70.0)
        )

    def test_full_load_single_point(self, optimizer, opp_table):
        points = optimizer.admissible_points(100.0)
        assert len(points) == 1
        assert points[0].online_count == 4
        assert points[0].frequency_khz == opp_table.max_frequency_khz

    def test_best_point_is_minimum(self, optimizer):
        best = optimizer.best_point(30.0)
        for point in optimizer.admissible_points(30.0):
            assert best.predicted_power_mw <= point.predicted_power_mw + 1e-9

    def test_scar_curve_core_counts_non_decreasing(self, optimizer):
        """Section 4.2's curve: climbing load never sheds cores."""
        loads = list(range(5, 101, 5))
        counts = [p.online_count for p in optimizer.optimal_curve(loads)]
        assert counts == sorted(counts)
        assert counts[0] == 1
        assert counts[-1] == 4

    def test_low_load_prefers_one_core(self, optimizer):
        """Section 3.4: at low load a single core (others offline) wins."""
        assert optimizer.best_core_count(8.0) == 1

    def test_best_count_between_range(self, optimizer):
        count = optimizer.best_count_between(50.0, 2, 3)
        assert count in (2, 3)

    def test_best_count_between_infeasible_low(self, optimizer):
        """Demand that saturates 3 cores forces the higher count."""
        assert optimizer.best_count_between(90.0, 3, 4) == 4

    def test_best_count_between_empty_range_rejected(self, optimizer):
        with pytest.raises(ConfigError):
            optimizer.best_count_between(50.0, 4, 2)

    def test_bad_max_cores_rejected(self, model):
        with pytest.raises(ConfigError):
            OperatingPointOptimizer(model, max_cores=0)
