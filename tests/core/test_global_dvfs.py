"""The component-aware (section 7 future work) MobiCore extension."""

import pytest

from repro.config import SimulationConfig
from repro.core.global_dvfs import ComponentAwareMobiCore
from repro.core.mobicore import MobiCorePolicy
from repro.errors import ConfigError
from repro.kernel.simulator import Simulator
from repro.policies.base import SystemObservation
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.synthetic import StepWorkload


def make_policy(spec, **kwargs):
    policy = ComponentAwareMobiCore(
        power_params=spec.power_params,
        opp_table=spec.opp_table,
        num_cores=spec.num_cores,
        **kwargs,
    )
    policy.reset()
    return policy


def observation(opp_table, loads, freqs=None):
    if freqs is None:
        freqs = (opp_table.max_frequency_khz,) * len(loads)
    return SystemObservation(
        tick=1,
        dt_seconds=0.02,
        per_core_load_percent=tuple(loads),
        global_util_percent=sum(loads) / len(loads),
        delta_util_percent=0.0,
        frequencies_khz=tuple(freqs),
        online_mask=(True,) * len(loads),
        quota=1.0,
        opp_table=opp_table,
    )


class TestMemoryDecision:
    def test_busy_demand_keeps_bus_high(self, spec, opp_table):
        policy = make_policy(spec)
        decision = policy.decide(observation(opp_table, (80.0,) * 4))
        assert decision.memory_high is True

    def test_quiet_demand_drops_after_hold(self, spec, opp_table):
        policy = make_policy(spec, memory_hold_ticks=3)
        quiet = observation(
            opp_table, (2.0,) * 4, freqs=(opp_table.min_frequency_khz,) * 4
        )
        first = policy.decide(quiet)
        second = policy.decide(quiet)
        third = policy.decide(quiet)
        assert first.memory_high is None
        assert second.memory_high is None
        assert third.memory_high is False

    def test_burst_restores_immediately(self, spec, opp_table):
        policy = make_policy(spec, memory_hold_ticks=1)
        quiet = observation(
            opp_table, (2.0,) * 4, freqs=(opp_table.min_frequency_khz,) * 4
        )
        policy.decide(quiet)
        busy = policy.decide(observation(opp_table, (90.0,) * 4))
        assert busy.memory_high is True

    def test_gpu_unmanaged_by_default(self, spec, opp_table):
        policy = make_policy(spec)
        decision = policy.decide(observation(opp_table, (50.0,) * 4))
        assert decision.gpu_pinned_max is None

    def test_gpu_managed_when_enabled(self, spec, opp_table):
        policy = make_policy(spec, manage_gpu=True)
        busy = policy.decide(observation(opp_table, (50.0,) * 4))
        assert busy.gpu_pinned_max is True
        idle = policy.decide(observation(opp_table, (0.0,) * 4))
        assert idle.gpu_pinned_max is False

    def test_bad_hold_rejected(self, spec):
        with pytest.raises(ConfigError):
            make_policy(spec, memory_hold_ticks=0)

    def test_reset_clears_hysteresis(self, spec, opp_table):
        policy = make_policy(spec, memory_hold_ticks=2)
        quiet = observation(
            opp_table, (2.0,) * 4, freqs=(opp_table.min_frequency_khz,) * 4
        )
        policy.decide(quiet)
        policy.reset()
        assert policy.decide(quiet).memory_high is None


class TestSessionBehaviour:
    CFG = SimulationConfig(duration_seconds=8.0, seed=2, warmup_seconds=2.0)

    def run(self, policy_cls, workload):
        spec = nexus5_spec()
        platform = Platform.from_spec(spec)
        policy = policy_cls(
            power_params=spec.power_params,
            opp_table=spec.opp_table,
            num_cores=spec.num_cores,
        )
        return Simulator(platform, workload, policy, self.CFG, pin_uncore_max=True).run()

    def test_saves_uncore_power_on_light_load(self):
        plain = self.run(MobiCorePolicy, BusyLoopApp(10.0))
        aware = self.run(ComponentAwareMobiCore, BusyLoopApp(10.0))
        assert aware.mean_power_mw < plain.mean_power_mw - 50.0

    def test_executes_same_work_on_bursty_load(self):
        workload = StepWorkload([(2.0, 8.0), (2.0, 70.0)])
        plain = self.run(MobiCorePolicy, workload)
        workload2 = StepWorkload([(2.0, 8.0), (2.0, 70.0)])
        aware_result = self.run(ComponentAwareMobiCore, workload2)
        assert aware_result.trace.mean_scaled_load_percent() >= (
            plain.trace.mean_scaled_load_percent() - 2.0
        )
