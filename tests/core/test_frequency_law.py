"""Eq. (9): the per-core frequency re-evaluation."""

import pytest

from repro.core.frequency_law import reevaluate_frequency
from repro.errors import GovernorError


class TestEq9:
    def test_full_load_keeps_ondemand_choice(self, opp_table):
        fmax = opp_table.max_frequency_khz
        assert reevaluate_frequency(fmax, 100.0, 4, 4, opp_table) == fmax

    def test_scales_down_with_utilization(self, opp_table):
        fmax = opp_table.max_frequency_khz
        chosen = reevaluate_frequency(fmax, 50.0, 4, 4, opp_table)
        assert chosen == opp_table.ceil(fmax * 0.5).frequency_khz
        assert chosen < fmax

    def test_nmax_over_n_redistributes(self, opp_table):
        """Fewer active cores -> higher per-core frequency for the same K."""
        fmax = opp_table.max_frequency_khz
        with_four = reevaluate_frequency(fmax, 40.0, 4, 4, opp_table)
        with_two = reevaluate_frequency(fmax, 40.0, 2, 4, opp_table)
        assert with_two > with_four

    def test_active_mean_capped_at_one(self, opp_table):
        """K * nmax / n can exceed 1 transiently; frequency never exceeds
        the ondemand choice then."""
        mid = opp_table.frequencies_khz[7]
        chosen = reevaluate_frequency(mid, 80.0, 2, 4, opp_table)
        assert chosen <= opp_table.max_frequency_khz
        assert chosen == mid  # 80 * 4/2 = 160% -> capped at 100%

    def test_rounds_up_to_cover_workload(self, opp_table):
        fmax = opp_table.max_frequency_khz
        chosen = reevaluate_frequency(fmax, 45.0, 4, 4, opp_table)
        assert chosen >= fmax * 0.45

    def test_zero_utilization_floors(self, opp_table):
        fmax = opp_table.max_frequency_khz
        assert reevaluate_frequency(fmax, 0.0, 1, 4, opp_table) == (
            opp_table.min_frequency_khz
        )

    def test_result_is_always_an_opp(self, opp_table):
        for k in (0.0, 13.0, 37.0, 61.0, 88.0, 100.0):
            for n in (1, 2, 3, 4):
                chosen = reevaluate_frequency(
                    opp_table.max_frequency_khz, k, n, 4, opp_table
                )
                assert chosen in opp_table

    def test_bad_active_cores_rejected(self, opp_table):
        with pytest.raises(GovernorError):
            reevaluate_frequency(opp_table.max_frequency_khz, 50.0, 0, 4, opp_table)
        with pytest.raises(GovernorError):
            reevaluate_frequency(opp_table.max_frequency_khz, 50.0, 5, 4, opp_table)

    def test_non_opp_ondemand_rejected(self, opp_table):
        with pytest.raises(GovernorError):
            reevaluate_frequency(123, 50.0, 4, 4, opp_table)
