"""Power meter, FPS meter, and hardware-usage collectors."""

import pytest

from repro.errors import MeterError
from repro.kernel.tracing import TickRecord, TraceRecorder
from repro.metrics.collectors import (
    CoreCountCollector,
    FrequencyCollector,
    LoadCollector,
)
from repro.metrics.fps_meter import FpsMeter
from repro.metrics.power_meter import PowerMeter


def make_trace():
    trace = TraceRecorder()
    for tick in range(4):
        trace.append(
            TickRecord(
                tick=tick,
                time_seconds=tick * 0.02,
                frequencies_khz=(960_000,) * 4,
                online_mask=(True, True, True, tick % 2 == 0),
                busy_fractions=(0.5,) * 4,
                global_util_percent=50.0 + tick,
                quota=1.0,
                power_mw=1000.0 + 100.0 * tick,
                cpu_power_mw=600.0,
                temperature_c=30.0,
                fps=15.0 + tick,
                scaled_load_percent=20.0,
            )
        )
    return trace


class TestPowerMeter:
    def test_weighted_mean(self):
        meter = PowerMeter()
        meter.sample(1000.0, 1.0)
        meter.sample(2000.0, 3.0)
        assert meter.mean_mw() == pytest.approx(1750.0)

    def test_energy(self):
        meter = PowerMeter()
        meter.sample(1000.0, 2.0)
        assert meter.energy_mj() == pytest.approx(2000.0)
        assert meter.energy_j() == pytest.approx(2.0)

    def test_extremes_and_std(self):
        meter = PowerMeter()
        for value in (500.0, 1500.0):
            meter.sample(value, 1.0)
        assert meter.peak_mw() == 1500.0
        assert meter.min_mw() == 500.0
        assert meter.std_mw() == pytest.approx(500.0)

    def test_empty_meter_raises(self):
        with pytest.raises(MeterError):
            PowerMeter().mean_mw()

    def test_from_trace(self):
        meter = PowerMeter.from_trace(make_trace(), tick_seconds=0.02)
        assert len(meter) == 4
        assert meter.mean_mw() == pytest.approx(1150.0)

    def test_downsampling(self):
        meter = PowerMeter()
        for value in (1.0, 3.0, 5.0, 7.0):
            meter.sample(value, 1.0)
        assert meter.downsampled_mw(2) == [pytest.approx(2.0), pytest.approx(6.0)]

    def test_bad_bucket(self):
        meter = PowerMeter()
        meter.sample(1.0, 1.0)
        with pytest.raises(MeterError):
            meter.downsampled_mw(0)


class TestFpsMeter:
    def test_stats(self):
        meter = FpsMeter()
        for value in (10.0, 20.0, 30.0):
            meter.sample(value)
        assert meter.mean() == pytest.approx(20.0)
        assert meter.minimum() == 10.0
        assert meter.maximum() == 30.0
        assert meter.percentile(50) == pytest.approx(20.0)
        assert meter.percentile(0) == 10.0

    def test_ratio(self):
        ours = FpsMeter()
        ours.sample(15.0)
        baseline = FpsMeter()
        baseline.sample(20.0)
        assert FpsMeter.ratio(ours, baseline) == pytest.approx(0.75)

    def test_acceptable_band(self):
        meter = FpsMeter()
        meter.sample(17.0)
        assert meter.in_acceptable_band()
        low = FpsMeter()
        low.sample(10.0)
        assert not low.in_acceptable_band()

    def test_from_trace(self):
        meter = FpsMeter.from_trace(make_trace())
        assert meter.mean() == pytest.approx(16.5)

    def test_empty_raises(self):
        with pytest.raises(MeterError):
            FpsMeter().mean()

    def test_bad_percentile(self):
        meter = FpsMeter()
        meter.sample(10.0)
        with pytest.raises(MeterError):
            meter.percentile(101.0)


class TestCollectors:
    def test_frequency_collector(self):
        collector = FrequencyCollector.from_trace(make_trace())
        assert collector.mean() == pytest.approx(960_000.0)
        assert collector.mean_mhz() == pytest.approx(960.0)

    def test_core_count_collector(self):
        collector = CoreCountCollector.from_trace(make_trace())
        assert collector.mean() == pytest.approx(3.5)
        assert collector.minimum() == 3.0
        assert collector.maximum() == 4.0

    def test_load_collector_variation(self):
        collector = LoadCollector.from_trace(make_trace())
        assert collector.mean() == pytest.approx(51.5)
        assert collector.variation() == pytest.approx(collector.std())

    def test_empty_collector_raises(self):
        with pytest.raises(MeterError):
            LoadCollector().mean()

    def test_residency_fractions_bucket_by_value(self):
        # Core counts alternate 4, 3, 4, 3: half the ticks in each bucket.
        collector = CoreCountCollector.from_trace(make_trace())
        assert collector.residency_fractions() == {3.0: 0.5, 4.0: 0.5}

    def test_residency_fractions_sum_to_one(self):
        fractions = LoadCollector.from_trace(make_trace()).residency_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert len(fractions) == 4  # every load value distinct

    def test_residency_fractions_need_samples(self):
        with pytest.raises(MeterError):
            FrequencyCollector().residency_fractions()
