"""SessionSummary construction and the paper's comparison deltas."""

import pytest

from repro.analysis.sweep import run_session
from repro.config import SimulationConfig
from repro.errors import MeterError
from repro.metrics.summary import summarize
from repro.policies.static import StaticPolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.games import game_workload


@pytest.fixture(scope="module")
def pair():
    spec = nexus5_spec()
    config = SimulationConfig(duration_seconds=4.0, seed=1, warmup_seconds=1.0)
    heavy = summarize(
        run_session(spec, BusyLoopApp(80.0), StaticPolicy(4, 2_265_600), config,
                    pin_uncore_max=False)
    )
    light = summarize(
        run_session(spec, BusyLoopApp(80.0), StaticPolicy(4, 960_000), config,
                    pin_uncore_max=False)
    )
    return heavy, light


class TestSummaryFields:
    def test_identity(self, pair):
        heavy, _ = pair
        assert heavy.platform == "Nexus 5"
        assert heavy.policy.startswith("static")
        assert heavy.workload.startswith("busyloop")
        assert heavy.seed == 1

    def test_quantities_positive(self, pair):
        heavy, _ = pair
        assert heavy.mean_power_mw > 0
        assert heavy.energy_mj > 0
        assert heavy.mean_frequency_khz == pytest.approx(2_265_600)
        assert heavy.mean_online_cores == pytest.approx(4.0)
        assert 0 < heavy.mean_load_percent <= 100
        assert heavy.mean_scaled_load_percent <= heavy.mean_load_percent + 1e-9

    def test_no_fps_for_busyloop(self, pair):
        heavy, _ = pair
        assert heavy.mean_fps is None


class TestComparisons:
    def test_power_saving_sign(self, pair):
        heavy, light = pair
        assert light.power_saving_percent(heavy) > 0
        assert heavy.power_saving_percent(light) < 0

    def test_frequency_reduction(self, pair):
        heavy, light = pair
        reduction = light.frequency_reduction_percent(heavy)
        assert reduction == pytest.approx(100.0 * (1 - 960_000 / 2_265_600))

    def test_load_reduction_points(self, pair):
        heavy, light = pair
        # the lighter frequency runs busier for the same demand
        assert light.load_reduction_percent_points(heavy) < 0

    def test_fps_ratio_requires_fps(self, pair):
        heavy, light = pair
        with pytest.raises(MeterError):
            light.fps_ratio(heavy)

    def test_fps_ratio_for_games(self):
        spec = nexus5_spec()
        config = SimulationConfig(duration_seconds=4.0, seed=1, warmup_seconds=1.0)
        fast = summarize(
            run_session(spec, game_workload("Badland"), StaticPolicy(4, 2_265_600), config)
        )
        slow = summarize(
            run_session(spec, game_workload("Badland"), StaticPolicy(4, 960_000), config)
        )
        assert 0 < slow.fps_ratio(fast) <= 1.0
