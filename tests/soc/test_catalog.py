"""The Figure 1 phone fleet catalog."""

import pytest

from repro.errors import PlatformError
from repro.soc.catalog import (
    PHONE_CATALOG,
    fleet_specs,
    get_phone_spec,
    nexus5_spec,
)
from repro.soc.platform import Platform


class TestCatalog:
    def test_six_phones(self):
        assert len(PHONE_CATALOG) == 6

    def test_paper_fleet_present(self):
        for name in (
            "Nexus S",
            "Motorola mb810",
            "Galaxy S II",
            "Nexus 4",
            "Nexus 5",
            "LG G3",
        ):
            assert get_phone_spec(name).name == name

    def test_unknown_phone_rejected(self):
        with pytest.raises(PlatformError):
            get_phone_spec("iPhone")

    def test_fleet_sorted_by_year(self):
        years = [spec.release_year for spec in fleet_specs()]
        assert years == sorted(years)

    def test_core_counts_match_history(self):
        by_name = {spec.name: spec for spec in fleet_specs()}
        assert by_name["Nexus S"].num_cores == 1
        assert by_name["Galaxy S II"].num_cores == 2
        assert by_name["Nexus 5"].num_cores == 4

    def test_every_spec_boots(self):
        for spec in fleet_specs():
            platform = Platform.from_spec(spec)
            assert platform.cluster.online_count == spec.num_cores


def full_stress_power(spec) -> float:
    platform = Platform.from_spec(spec)
    for core in platform.cluster.cores:
        core.set_frequency(spec.opp_table.max_frequency_khz)
        core.account(1.0)
    return platform.power_breakdown().total_mw


class TestFleetCalibration:
    def test_fleet_full_stress_anchors(self):
        """Nexus S and Nexus 5 hit the section 1.2 numbers."""
        assert full_stress_power(get_phone_spec("Nexus S")) == pytest.approx(
            980.6, rel=0.01
        )
        assert full_stress_power(get_phone_spec("Nexus 5")) == pytest.approx(
            2403.82, rel=0.01
        )

    def test_power_grows_with_core_count(self):
        """Figure 1's headline: ~linear growth with cores."""
        powers = {
            spec.name: full_stress_power(spec) for spec in fleet_specs()
        }
        assert powers["Nexus S"] < powers["Galaxy S II"] < powers["Nexus 4"]
        assert powers["Nexus 4"] < powers["Nexus 5"] < powers["LG G3"]

    def test_nexus5_140_percent_over_nexus_s(self):
        ratio = full_stress_power(get_phone_spec("Nexus 5")) / full_stress_power(
            get_phone_spec("Nexus S")
        )
        assert 100.0 * (ratio - 1.0) == pytest.approx(140.0, abs=15.0)


class TestNexus5Variants:
    def test_default_is_unthrottled(self):
        spec = nexus5_spec()
        assert spec.thermal.throttle_temp_c == float("inf")

    def test_throttled_variant(self):
        spec = nexus5_spec(throttled=True)
        assert spec.thermal.throttle_temp_c < 50.0
        assert spec.thermal.release_temp_c < spec.thermal.throttle_temp_c

    def test_spec_rows_render(self):
        rows = dict(nexus5_spec().spec_rows())
        assert rows["SoC"] == "Snapdragon 800 (MSM8974)"
        assert rows["OS"].startswith("Android 6.0")
