"""CPU core state machine rules (paper section 2.1)."""

import pytest

from repro.errors import CoreStateError
from repro.soc.core_state import (
    CoreState,
    can_transition,
    require_transition,
)


class TestStateProperties:
    def test_active_is_online(self):
        assert CoreState.ACTIVE.is_online

    def test_idle_is_online(self):
        assert CoreState.IDLE.is_online

    def test_offline_is_not_online(self):
        assert not CoreState.OFFLINE.is_online

    def test_static_power_while_online(self):
        assert CoreState.ACTIVE.consumes_static_power
        assert CoreState.IDLE.consumes_static_power
        assert not CoreState.OFFLINE.consumes_static_power

    def test_dynamic_power_only_when_active(self):
        assert CoreState.ACTIVE.consumes_dynamic_power
        assert not CoreState.IDLE.consumes_dynamic_power
        assert not CoreState.OFFLINE.consumes_dynamic_power


class TestTransitions:
    def test_self_transition_free(self):
        for state in CoreState:
            assert can_transition(state, state)
            assert require_transition(state, state) == 0.0

    def test_idle_active_free(self):
        assert require_transition(CoreState.IDLE, CoreState.ACTIVE) == 0.0
        assert require_transition(CoreState.ACTIVE, CoreState.IDLE) == 0.0

    def test_hotplug_costs_time(self):
        assert require_transition(CoreState.OFFLINE, CoreState.IDLE) > 0.0
        assert require_transition(CoreState.IDLE, CoreState.OFFLINE) > 0.0

    def test_wake_slower_than_offline(self):
        wake = require_transition(CoreState.OFFLINE, CoreState.ACTIVE)
        sleep = require_transition(CoreState.ACTIVE, CoreState.OFFLINE)
        assert wake > sleep

    def test_all_pairs_legal(self):
        for src in CoreState:
            for dst in CoreState:
                assert can_transition(src, dst)
