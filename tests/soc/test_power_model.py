"""The section 4.1 power model: per-term behaviour and aggregation."""

import pytest

from repro.errors import ConfigError
from repro.soc.calibration import nexus5_power_params
from repro.soc.cpu_cluster import CpuCluster
from repro.soc.power_model import CpuPowerModel, PowerParams


@pytest.fixture
def model(spec):
    return CpuPowerModel(spec.power_params, spec.opp_table)


class TestParams:
    def test_anchor_fit_exact(self):
        params = PowerParams.from_static_anchors(
            ceff_mw_per_ghz_v2=100.0,
            static_at_vmin_mw=47.0,
            static_at_vmax_mw=120.0,
            vmin=0.9,
            vmax=1.2,
        )
        assert params.leak_coefficient_mw * 0.9 ** params.leak_exponent == pytest.approx(47.0)
        assert params.leak_coefficient_mw * 1.2 ** params.leak_exponent == pytest.approx(120.0)

    def test_anchor_ordering_enforced(self):
        with pytest.raises(ConfigError):
            PowerParams.from_static_anchors(100.0, 120.0, 47.0, 0.9, 1.2)

    def test_voltage_ordering_enforced(self):
        with pytest.raises(ConfigError):
            PowerParams.from_static_anchors(100.0, 47.0, 120.0, 1.2, 0.9)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(Exception):
            PowerParams(
                ceff_mw_per_ghz_v2=-1.0, leak_coefficient_mw=1.0, leak_exponent=1.0
            )


class TestTerms:
    def test_dynamic_power_eq1(self, model, opp_table):
        """Pd = Ceff * f * V^2 (Eq. 1)."""
        opp = opp_table.max
        expected = (
            model.params.ceff_mw_per_ghz_v2 * opp.frequency_ghz * opp.voltage ** 2
        )
        assert model.dynamic_power_mw(opp) == pytest.approx(expected)

    def test_static_power_anchors(self, model, opp_table):
        """The paper's 47/120 mW measurements (section 4.1.2)."""
        assert model.static_power_mw(opp_table.min) == pytest.approx(47.0)
        assert model.static_power_mw(opp_table.max) == pytest.approx(120.0)

    def test_static_monotone_in_voltage(self, model, opp_table):
        values = [model.static_power_mw(opp) for opp in opp_table]
        assert values == sorted(values)

    def test_core_power_offline_zero(self, model, opp_table):
        assert model.core_power_mw(opp_table.max, 0.5, online=False) == 0.0

    def test_core_power_idle_is_static_only(self, model, opp_table):
        idle = model.core_power_mw(opp_table.max, 0.0, online=True)
        assert idle == pytest.approx(model.static_power_mw(opp_table.max))

    def test_cluster_overhead_zero_single_core(self, model):
        assert model.cluster_overhead_mw(1, 1.0) == 0.0
        assert model.cluster_overhead_mw(2, 1.0) > 0.0

    def test_cache_power_scales_with_activity(self, model):
        assert model.cache_power_mw(0.0, 1.0) == 0.0
        assert model.cache_power_mw(1.0, 1.0) > model.cache_power_mw(0.5, 1.0)


class TestBreakdown:
    def test_breakdown_totals_add_up(self, model, platform):
        for core in platform.cluster.cores:
            core.set_frequency(platform.opp_table.max_frequency_khz)
            core.account(1.0)
        breakdown = model.breakdown(platform.cluster, uncore_mw=100.0)
        expected_total = (
            breakdown.dynamic_mw
            + breakdown.static_mw
            + breakdown.cluster_overhead_mw
            + breakdown.cache_mw
            + breakdown.base_mw
            + breakdown.uncore_mw
        )
        assert breakdown.total_mw == pytest.approx(expected_total)
        assert breakdown.uncore_mw == pytest.approx(100.0)

    def test_breakdown_per_core_entries(self, model, platform):
        platform.cluster.set_online_count(2)
        breakdown = model.breakdown(platform.cluster)
        assert len(breakdown.per_core_mw) == 4
        assert breakdown.per_core_mw[2] == 0.0
        assert breakdown.per_core_mw[0] > 0.0

    def test_offlining_reduces_power(self, model, platform):
        breakdown_all = model.breakdown(platform.cluster)
        platform.cluster.set_online_count(1)
        breakdown_one = model.breakdown(platform.cluster)
        assert breakdown_one.total_mw < breakdown_all.total_mw


class TestPrediction:
    def test_predict_matches_breakdown(self, model, platform):
        """The hypothesis evaluator agrees with the live-cluster path."""
        freq = platform.opp_table.max_frequency_khz
        for core in platform.cluster.cores:
            core.set_frequency(freq)
            core.account(1.0)
        live = model.breakdown(platform.cluster).total_mw
        predicted = model.predict_total_mw(4, freq, 1.0)
        assert predicted == pytest.approx(live)

    def test_predict_cpu_excludes_base(self, model, opp_table):
        total = model.predict_total_mw(1, opp_table.min_frequency_khz, 1.0)
        cpu = model.predict_cpu_mw(1, opp_table.min_frequency_khz, 1.0)
        assert total - cpu == pytest.approx(model.params.platform_base_mw)

    def test_predict_monotone_in_cores(self, model, opp_table):
        freq = opp_table.max_frequency_khz
        values = [model.predict_total_mw(n, freq, 1.0) for n in range(1, 5)]
        assert values == sorted(values)

    def test_predict_monotone_in_frequency(self, model, opp_table):
        values = [
            model.predict_total_mw(2, opp.frequency_khz, 1.0) for opp in opp_table
        ]
        assert values == sorted(values)

    def test_negative_core_count_rejected(self, model, opp_table):
        with pytest.raises(ConfigError):
            model.predict_total_mw(-1, opp_table.min_frequency_khz, 1.0)


class TestEnergy:
    def test_energy_is_power_times_time(self, model):
        assert CpuPowerModel.energy_mj(1000.0, 2.0) == pytest.approx(2000.0)

    def test_eq7_consistency(self, model, opp_table):
        """Eq. (7): E = P * T for n cores under global DVFS."""
        freq = opp_table.max_frequency_khz
        power = model.predict_total_mw(4, freq, 0.5)
        energy = model.energy_global_dvfs_mj(4, freq, 0.5, 60.0)
        assert energy == pytest.approx(power * 60.0)

    def test_race_to_idle_vs_offline(self, model, opp_table):
        """Section 4.1.2: off-lining beats racing to idle on this platform.

        Run a fixed amount of work W: (a) 4 cores at fmax then idle
        online, (b) 1 core at the just-needed frequency for the full
        period.  With 47-120 mW idle leakage per core, (b) wins.
        """
        period = 1.0
        fmax = opp_table.max_frequency_khz
        work_cycles = 0.25 * 4 * fmax * 1000 * period  # 25% global load
        # (a) race to idle: all 4 at fmax until done, then idle.
        busy_time = work_cycles / (4 * fmax * 1000)
        racing = model.predict_total_mw(4, fmax, 1.0) * busy_time + (
            model.predict_total_mw(4, fmax, 0.0) * (period - busy_time)
        )
        # (b) one core at the lowest OPP covering the work in the period.
        needed = work_cycles / (period * 1000)
        opp = opp_table.ceil(needed)
        busy = work_cycles / (opp.frequency_khz * 1000 * period)
        offline = model.predict_total_mw(1, opp.frequency_khz, min(busy, 1.0)) * period
        assert offline < racing
