"""The RC thermal node and throttling (Figure 2, Figure 4 regime)."""

import pytest

from repro.errors import ConfigError
from repro.soc.opp import OppTable
from repro.soc.thermal import ThermalModel, ThermalParams


@pytest.fixture
def table():
    return OppTable.linear([300_000, 960_000, 1_574_400, 2_265_600], 0.9, 1.2)


@pytest.fixture
def node(table):
    params = ThermalParams(
        ambient_c=24.0, resistance_c_per_w=9.0, time_constant_s=10.0
    )
    return ThermalModel(params, table)


class TestRcNode:
    def test_starts_at_ambient(self, node):
        assert node.temperature_c == pytest.approx(24.0)

    def test_steady_state_formula(self, node):
        assert node.steady_state_c(2000.0) == pytest.approx(24.0 + 9.0 * 2.0)

    def test_converges_to_steady_state(self, node):
        for _ in range(5000):
            node.step(2000.0, 0.02)
        assert node.temperature_c == pytest.approx(42.0, abs=0.2)

    def test_first_order_lag(self, node):
        """After one time constant, ~63% of the step is reached."""
        for _ in range(500):  # 10 s at 20 ms
            node.step(2000.0, 0.02)
        progress = (node.temperature_c - 24.0) / 18.0
        assert progress == pytest.approx(0.63, abs=0.05)

    def test_cooling(self, node):
        for _ in range(5000):
            node.step(2000.0, 0.02)
        for _ in range(5000):
            node.step(0.0, 0.02)
        assert node.temperature_c == pytest.approx(24.0, abs=0.2)

    def test_reset(self, node):
        node.step(5000.0, 1.0)
        node.reset()
        assert node.temperature_c == pytest.approx(24.0)
        assert node.throttle_steps == 0

    def test_large_dt_does_not_overshoot(self, node):
        node.step(2000.0, 100.0)  # dt >> tau
        assert node.temperature_c <= 42.0 + 1e-9


class TestThrottling:
    def make(self, table, throttle=40.0, release=38.0):
        params = ThermalParams(
            ambient_c=24.0,
            resistance_c_per_w=9.0,
            time_constant_s=1.0,
            throttle_temp_c=throttle,
            release_temp_c=release,
        )
        return ThermalModel(params, table)

    def test_no_throttle_below_threshold(self, table):
        node = self.make(table)
        for _ in range(100):
            node.step(1000.0, 0.1)  # steady 33 degC
        assert node.throttle_steps == 0
        assert node.max_allowed_frequency_khz == table.max_frequency_khz

    def test_throttle_engages(self, table):
        node = self.make(table)
        for _ in range(100):
            node.step(3000.0, 0.1)  # steady 51 degC
        assert node.throttle_steps > 0
        assert node.max_allowed_frequency_khz < table.max_frequency_khz

    def test_throttle_bounded_by_table(self, table):
        node = self.make(table)
        for _ in range(1000):
            node.step(10000.0, 0.1)
        assert node.throttle_steps <= len(table) - 1
        assert node.max_allowed_frequency_khz == table.min_frequency_khz

    def test_throttle_releases_on_cooldown(self, table):
        node = self.make(table)
        for _ in range(100):
            node.step(3000.0, 0.1)
        engaged = node.throttle_steps
        for _ in range(1000):
            node.step(0.0, 0.1)
        assert node.throttle_steps < engaged

    def test_release_must_be_below_throttle(self, table):
        with pytest.raises(ConfigError):
            ThermalParams(throttle_temp_c=40.0, release_temp_c=41.0)
