"""GPU, memory bus, and power-rail models (section 3.2 constraints)."""

import pytest

from repro.errors import ConfigError, PlatformError
from repro.soc.battery import PowerRail, RailTopology, build_rails
from repro.soc.gpu import GpuModel, GpuSpec
from repro.soc.memory import MemoryBusModel, MemorySpec


@pytest.fixture
def gpu():
    return GpuModel(GpuSpec("Adreno 330", 450_000, 40.0, 650.0))


@pytest.fixture
def memory():
    return MemoryBusModel(MemorySpec(200_000, 800_000, 30.0, 220.0, 4.5e9))


class TestGpu:
    def test_idle_by_default(self, gpu):
        assert gpu.power_mw() == pytest.approx(40.0)

    def test_pinned_max_is_stable(self, gpu):
        gpu.pin_max()
        assert gpu.power_mw() == pytest.approx(650.0)
        gpu.set_utilization(0.1)  # pinned power ignores utilization
        assert gpu.power_mw() == pytest.approx(650.0)

    def test_utilization_scales_unpinned(self, gpu):
        gpu.set_utilization(0.5)
        assert gpu.power_mw() == pytest.approx(40.0 + 0.5 * 610.0)

    def test_unpin_returns_to_utilization(self, gpu):
        gpu.pin_max()
        gpu.unpin()
        assert gpu.power_mw() == pytest.approx(40.0)

    def test_utilization_clamped(self, gpu):
        gpu.set_utilization(2.0)
        assert gpu.power_mw() == pytest.approx(650.0)

    def test_inverted_power_rejected(self):
        with pytest.raises(ConfigError):
            GpuSpec("bad", 450_000, 650.0, 40.0)


class TestMemory:
    def test_low_by_default(self, memory):
        assert not memory.is_high
        assert memory.power_mw() == pytest.approx(30.0)

    def test_pin_high(self, memory):
        memory.pin_high()
        assert memory.power_mw() == pytest.approx(220.0)

    def test_no_stall_within_bandwidth(self, memory):
        memory.pin_high()
        assert memory.stall_fraction(4.0e9) == 0.0

    def test_stall_grows_beyond_bandwidth(self, memory):
        memory.pin_high()
        stall = memory.stall_fraction(9.0e9)
        assert stall == pytest.approx(1.0 - 4.5 / 9.0)

    def test_low_point_has_less_bandwidth(self, memory):
        memory.pin_high()
        high_stall = memory.stall_fraction(2.0e9)
        memory.set_low()
        low_stall = memory.stall_fraction(2.0e9)
        assert low_stall > high_stall

    def test_inverted_frequencies_rejected(self):
        with pytest.raises(ConfigError):
            MemorySpec(800_000, 200_000, 30.0, 220.0, 1e9)


class TestRails:
    def test_per_core_topology(self):
        rails = build_rails(RailTopology.PER_CORE, 4)
        assert len(rails) == 4
        assert all(len(rail.core_ids) == 1 for rail in rails)
        assert RailTopology.PER_CORE.allows_per_core_dvfs

    def test_shared_topology(self):
        rails = build_rails(RailTopology.SHARED, 4)
        assert len(rails) == 1
        assert tuple(rails[0].core_ids) == (0, 1, 2, 3)
        assert not RailTopology.SHARED.allows_per_core_dvfs

    def test_shared_rail_pays_max_voltage(self):
        rail = PowerRail("vdd", (0, 1, 2, 3))
        assert rail.required_voltage([0.9, 1.2, 1.0, 0.9]) == pytest.approx(1.2)

    def test_rail_needs_cores(self):
        with pytest.raises(PlatformError):
            PowerRail("vdd", ())

    def test_rail_duplicate_cores_rejected(self):
        with pytest.raises(PlatformError):
            PowerRail("vdd", (0, 0))

    def test_rail_out_of_range_core(self):
        rail = PowerRail("vdd", (0, 5))
        with pytest.raises(PlatformError):
            rail.required_voltage([0.9])

    def test_build_rails_needs_cores(self):
        with pytest.raises(PlatformError):
            build_rails(RailTopology.SHARED, 0)
