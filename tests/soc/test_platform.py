"""Platform runtime object wiring."""

import pytest

from repro.soc.battery import RailTopology
from repro.soc.catalog import get_phone_spec
from repro.soc.platform import Platform


class TestBootState:
    def test_cluster_size(self, platform, spec):
        assert len(platform.cluster) == spec.num_cores

    def test_uncore_idle_at_boot(self, platform):
        assert not platform.gpu.pinned_max
        assert not platform.memory.is_high

    def test_per_core_dvfs_allowed(self, platform):
        assert platform.allows_per_core_dvfs

    def test_rails_match_topology(self, platform):
        assert len(platform.rails) == 4


class TestUncoreConstraints:
    def test_pin_uncore_max(self, platform):
        idle = platform.uncore_power_mw()
        platform.pin_uncore_max()
        assert platform.uncore_power_mw() > idle
        assert platform.gpu.pinned_max
        assert platform.memory.is_high

    def test_breakdown_includes_uncore(self, platform):
        before = platform.power_breakdown().total_mw
        platform.pin_uncore_max()
        after = platform.power_breakdown().total_mw
        assert after - before == pytest.approx(
            (650.0 - 40.0) + (220.0 - 30.0), rel=0.01
        )


class TestEffectiveVoltages:
    def test_per_core_rails_use_own_voltage(self, platform):
        platform.cluster.core(0).set_frequency(platform.opp_table.max_frequency_khz)
        voltages = platform.effective_voltages()
        assert voltages[0] == pytest.approx(1.2)
        assert voltages[1] == pytest.approx(0.9)

    def test_shared_rail_pays_max(self):
        spec = get_phone_spec("Galaxy S II")
        platform = Platform.from_spec(spec)
        fmax = spec.opp_table.max_frequency_khz
        platform.cluster.core(0).set_frequency(fmax)
        voltages = platform.effective_voltages()
        assert voltages[0] == voltages[1] == pytest.approx(spec.opp_table.max.voltage)


class TestThermalStep:
    def test_step_thermal_heats_under_load(self, platform):
        for core in platform.cluster.cores:
            core.set_frequency(platform.opp_table.max_frequency_khz)
            core.account(1.0)
        start = platform.thermal.temperature_c
        platform.step_thermal(1.0)
        assert platform.thermal.temperature_c > start


class TestReset:
    def test_reset_restores_boot(self, platform):
        platform.pin_uncore_max()
        platform.cluster.set_online_count(1)
        platform.cluster.core(0).set_frequency(platform.opp_table.max_frequency_khz)
        platform.cluster.core(0).account(1.0)
        platform.step_thermal(100.0)
        platform.reset()
        assert platform.cluster.online_count == 4
        assert not platform.gpu.pinned_max
        assert not platform.memory.is_high
        assert platform.thermal.temperature_c == pytest.approx(
            platform.spec.thermal.ambient_c
        )
