"""Cluster-aware topology: ClusterSpec, CpuTopology, hetero platforms."""

import pytest

from repro.errors import HotplugError, PlatformError, UnitsError
from repro.soc import ClusterSpec, CpuTopology, Platform
from repro.soc.battery import RailTopology
from repro.soc.catalog import (
    big_a15_cluster,
    galaxy_s6_spec,
    get_phone_spec,
    little_a7_cluster,
    nexus5_spec,
    odroid_xu3_spec,
)


@pytest.fixture
def little():
    return little_a7_cluster()


@pytest.fixture
def big():
    return big_a15_cluster()


@pytest.fixture
def topology(little, big):
    return CpuTopology((little, big))


class TestClusterSpec:
    def test_validation(self, little):
        import dataclasses

        with pytest.raises(PlatformError):
            dataclasses.replace(little, name="")
        with pytest.raises(PlatformError):
            dataclasses.replace(little, num_cores=0)
        with pytest.raises(UnitsError):
            dataclasses.replace(little, ipc_scale=0.0)

    def test_throughput_scales_with_ipc(self, little, big):
        assert little.max_throughput_ips == pytest.approx(
            4 * little.opp_table.max_frequency_khz * 1000.0 * 0.6
        )
        assert big.max_throughput_ips > little.max_throughput_ips

    def test_freq_range_label(self, little):
        assert little.freq_range_label() == "300.0-1200.0 MHz"


class TestCpuTopology:
    def test_global_core_ids(self, topology):
        assert len(topology) == 8
        assert [core.core_id for core in topology.cores] == list(range(8))
        assert topology.cluster_ids == (0, 0, 0, 0, 1, 1, 1, 1)
        assert topology.cluster_id_of(3) == 0
        assert topology.cluster_id_of(4) == 1
        assert topology.is_heterogeneous

    def test_single_cluster_is_homogeneous(self, little):
        topology = CpuTopology((little,))
        assert not topology.is_heterogeneous
        assert topology.num_clusters == 1

    def test_core_lookup_out_of_range(self, topology):
        with pytest.raises(Exception):
            topology.core(8)

    def test_boot_core_must_stay_online(self, topology):
        with pytest.raises(HotplugError):
            topology.set_online_mask([False] + [True] * 7)

    def test_non_boot_cluster_may_fully_offline(self, topology):
        topology.set_online_mask([True] * 4 + [False] * 4)
        assert topology.online_count == 4
        assert topology.online_count_in(1) == 0
        assert topology.online_count_in(0) == 4

    def test_set_online_count_lowest_ids_first(self, topology):
        topology.set_online_count(5)
        assert list(topology.online_mask) == [True] * 5 + [False] * 3

    def test_ipc_scaled_capacity(self, topology):
        little_core = topology.core(0)
        big_core = topology.core(4)
        little_core.set_frequency(1_000_000)
        big_core.set_frequency(1_000_000)
        assert big_core.capacity_cycles(0.02) > little_core.capacity_cycles(0.02)
        assert little_core.capacity_cycles(0.02) == pytest.approx(
            1_000_000 * 1000.0 * 0.02 * 0.6
        )

    def test_set_all_frequencies_clamps_per_domain(self, topology):
        # 300 MHz exists on little but sits below big's whole ladder.
        topology.set_all_frequencies(300_000)
        assert topology.core(0).frequency_khz == 300_000
        assert (
            topology.core(4).frequency_khz
            == topology.clusters[1].opp_table.min_frequency_khz
        )

    def test_max_frequency_is_fastest_domain(self, topology, big):
        assert topology.max_frequency_khz == big.opp_table.max_frequency_khz

    def test_max_capacity_sums_domains(self, topology, little, big):
        dt = 0.02
        expected = (
            4 * little.opp_table.max_frequency_khz * 1000.0 * dt * 0.6
            + 4 * big.opp_table.max_frequency_khz * 1000.0 * dt * 1.0
        )
        assert topology.max_capacity_cycles(dt) == pytest.approx(expected)

    def test_reset(self, topology):
        topology.set_online_count(2)
        topology.reset()
        assert topology.online_count == len(topology)


class TestHeteroPlatformSpec:
    def test_from_clusters_primary_fields(self):
        spec = odroid_xu3_spec()
        assert spec.num_cores == 8
        assert spec.is_heterogeneous
        # Legacy fields mirror the primary (fastest) domain.
        assert spec.opp_table is spec.clusters[1].opp_table
        assert spec.power_params is spec.clusters[1].power_params

    def test_from_clusters_core_count_mismatch(self):
        import dataclasses

        spec = odroid_xu3_spec()
        with pytest.raises(PlatformError):
            dataclasses.replace(spec, num_cores=6)

    def test_non_primary_platform_base_rejected(self, little, big):
        import dataclasses

        from repro.soc.platform import PlatformSpec

        base = odroid_xu3_spec()
        leaky_little = dataclasses.replace(
            little,
            power_params=dataclasses.replace(
                little.power_params, platform_base_mw=100.0
            ),
        )
        with pytest.raises(PlatformError):
            PlatformSpec.from_clusters(
                name=base.name,
                soc=base.soc,
                release_year=base.release_year,
                clusters=(leaky_little, big),
                gpu=base.gpu,
                memory=base.memory,
                thermal=base.thermal,
            )

    def test_single_cluster_synthesis_shares_objects(self):
        spec = nexus5_spec()
        (cluster,) = spec.cluster_specs()
        assert cluster.opp_table is spec.opp_table
        assert cluster.power_params is spec.power_params
        assert cluster.ipc_scale == 1.0
        assert not spec.is_heterogeneous

    def test_spec_rows_render_cluster_layout(self):
        hetero = dict(galaxy_s6_spec().spec_rows())
        assert hetero["CPU"] == "4× Cortex-A53 + 4× Cortex-A57"
        assert "Freq. (little)" in hetero
        assert "Freq. (big)" in hetero
        legacy = dict(nexus5_spec().spec_rows())
        assert legacy["Freq. max"] == "2265.6 MHz"


class TestHeteroPlatform:
    def test_topology_and_rails(self):
        platform = Platform.from_spec(odroid_xu3_spec())
        assert len(platform.topology) == 8
        assert [rail.name for rail in platform.rails] == ["vdd-little", "vdd-big"]
        assert not platform.allows_per_core_dvfs
        assert not platform.domain_allows_per_core_dvfs(0)

    def test_cluster_property_guards_hetero(self):
        platform = Platform.from_spec(odroid_xu3_spec())
        with pytest.raises(PlatformError):
            platform.cluster

    def test_cluster_property_still_works_single(self):
        platform = Platform.from_spec(nexus5_spec())
        assert platform.cluster is platform.topology.clusters[0]

    def test_power_breakdown_combines_domains(self):
        platform = Platform.from_spec(odroid_xu3_spec())
        platform.topology.set_online_mask([True] * 4 + [False] * 4)
        idle_little = platform.power_breakdown()
        platform.reset()
        all_on = platform.power_breakdown()
        assert len(all_on.per_core_mw) == 8
        # The big cluster's leakage dominates: powering it down must cut
        # CPU-attributable power.
        assert idle_little.cpu_mw < all_on.cpu_mw
        # The platform base is drawn exactly once, from the primary domain.
        assert all_on.base_mw == platform.spec.power_params.platform_base_mw

    def test_catalog_lookup(self):
        assert get_phone_spec("Odroid-XU3").is_heterogeneous
        assert get_phone_spec("Galaxy S6").is_heterogeneous
        assert not get_phone_spec("Nexus 5").is_heterogeneous
        assert odroid_xu3_spec().clusters[0].rail_topology is RailTopology.SHARED
