"""Cluster-level online mask, DVFS, and aggregate views."""

import pytest

from repro.errors import HotplugError
from repro.soc.cpu_cluster import CpuCluster


@pytest.fixture
def cluster(opp_table):
    return CpuCluster(4, opp_table)


class TestConstruction:
    def test_boots_all_online(self, cluster):
        assert cluster.online_count == 4
        assert all(cluster.online_mask)

    def test_zero_cores_rejected(self, opp_table):
        with pytest.raises(HotplugError):
            CpuCluster(0, opp_table)

    def test_core_lookup(self, cluster):
        assert cluster.core(2).core_id == 2
        with pytest.raises(HotplugError):
            cluster.core(4)


class TestOnlineMask:
    def test_set_online_count(self, cluster):
        cluster.set_online_count(2)
        assert cluster.online_mask == [True, True, False, False]

    def test_count_out_of_range(self, cluster):
        with pytest.raises(HotplugError):
            cluster.set_online_count(0)
        with pytest.raises(HotplugError):
            cluster.set_online_count(5)

    def test_mask_must_keep_core0(self, cluster):
        with pytest.raises(HotplugError):
            cluster.set_online_mask([False, True, True, True])

    def test_mask_length_checked(self, cluster):
        with pytest.raises(HotplugError):
            cluster.set_online_mask([True, True])

    def test_mask_returns_latency(self, cluster):
        latency = cluster.set_online_mask([True, True, False, False])
        assert latency > 0.0
        # applying the same mask again is free
        assert cluster.set_online_mask([True, True, False, False]) == 0.0

    def test_arbitrary_mask(self, cluster):
        cluster.set_online_mask([True, False, True, False])
        assert cluster.online_count == 2
        assert [c.core_id for c in cluster.online_cores] == [0, 2]


class TestFrequencies:
    def test_global_dvfs(self, cluster):
        cluster.set_all_frequencies(960_000)
        assert cluster.frequencies_khz == [960_000] * 4

    def test_mean_online_frequency_ignores_offline(self, cluster):
        cluster.set_all_frequencies(300_000)
        cluster.core(0).set_frequency(2_265_600)
        cluster.set_online_mask([True, True, False, False])
        expected = (2_265_600 + 300_000) / 2
        assert cluster.mean_online_frequency_khz() == pytest.approx(expected)


class TestAggregates:
    def test_total_capacity_counts_online_only(self, cluster):
        cluster.set_all_frequencies(300_000)
        full = cluster.total_capacity_cycles(0.02)
        cluster.set_online_count(2)
        assert cluster.total_capacity_cycles(0.02) == pytest.approx(full / 2)

    def test_max_capacity_is_all_cores_at_fmax(self, cluster, opp_table):
        expected = 4 * opp_table.max_frequency_khz * 1000 * 0.02
        assert cluster.max_capacity_cycles(0.02) == pytest.approx(expected)
        cluster.set_online_count(1)  # max capacity ignores the mask
        assert cluster.max_capacity_cycles(0.02) == pytest.approx(expected)

    def test_global_utilization_averages_online(self, cluster):
        for core in cluster.cores:
            core.account(0.5)
        assert cluster.global_utilization_percent() == pytest.approx(50.0)
        cluster.set_online_count(2)
        cluster.core(0).account(1.0)
        cluster.core(1).account(0.0)
        assert cluster.global_utilization_percent() == pytest.approx(50.0)

    def test_per_core_utilization(self, cluster):
        cluster.core(0).account(0.25)
        utils = cluster.per_core_utilization_percent()
        assert utils[0] == pytest.approx(25.0)
        assert utils[3] == pytest.approx(0.0)

    def test_reset_restores_boot_state(self, cluster, opp_table):
        cluster.set_online_count(1)
        cluster.set_all_frequencies(opp_table.max_frequency_khz)
        cluster.core(0).account(1.0)
        cluster.reset()
        assert cluster.online_count == 4
        assert cluster.frequencies_khz == [opp_table.min_frequency_khz] * 4
        assert cluster.global_utilization_percent() == 0.0
