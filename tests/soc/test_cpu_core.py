"""Single-core state, frequency, and accounting behaviour."""

import pytest

from repro.errors import CoreStateError, OppError
from repro.soc.core_state import CoreState
from repro.soc.cpu_core import CpuCore


@pytest.fixture
def core(opp_table):
    return CpuCore(1, opp_table)


class TestConstruction:
    def test_boots_idle_at_fmin(self, core, opp_table):
        assert core.state is CoreState.IDLE
        assert core.frequency_khz == opp_table.min_frequency_khz

    def test_negative_id_rejected(self, opp_table):
        with pytest.raises(CoreStateError):
            CpuCore(-1, opp_table)


class TestStateMachine:
    def test_offline_then_online(self, core):
        core.set_state(CoreState.OFFLINE)
        assert not core.is_online
        core.set_state(CoreState.IDLE)
        assert core.is_online

    def test_boot_core_cannot_offline(self, opp_table):
        boot = CpuCore(0, opp_table)
        with pytest.raises(CoreStateError):
            boot.set_state(CoreState.OFFLINE)

    def test_transition_count_tracks_changes(self, core):
        assert core.transition_count == 0
        core.set_state(CoreState.ACTIVE)
        core.set_state(CoreState.ACTIVE)  # self-transition: not counted
        core.set_state(CoreState.OFFLINE)
        assert core.transition_count == 2

    def test_offline_clears_busy(self, core):
        core.account(0.5)
        core.set_state(CoreState.OFFLINE)
        assert core.busy_fraction == 0.0


class TestFrequency:
    def test_set_exact_opp(self, core):
        core.set_frequency(960_000)
        assert core.frequency_khz == 960_000
        assert core.voltage == core.opp_table.at(960_000).voltage

    def test_set_non_opp_rejected(self, core):
        with pytest.raises(OppError):
            core.set_frequency(123_456)

    def test_target_rounds_up_by_default(self, core):
        applied = core.set_target_frequency(961_000)
        assert applied == 1_036_800

    def test_target_rounds_down_when_asked(self, core):
        applied = core.set_target_frequency(961_000, round_up=False)
        assert applied == 960_000

    def test_offline_core_keeps_frequency_setting(self, core):
        core.set_frequency(960_000)
        core.set_state(CoreState.OFFLINE)
        assert core.frequency_khz == 960_000


class TestCapacityAndAccounting:
    def test_capacity_scales_with_frequency(self, core):
        core.set_frequency(300_000)
        low = core.capacity_cycles(0.02)
        core.set_frequency(2_265_600)
        high = core.capacity_cycles(0.02)
        assert high / low == pytest.approx(2_265_600 / 300_000)

    def test_capacity_scales_with_quota(self, core):
        full = core.capacity_cycles(0.02, quota=1.0)
        half = core.capacity_cycles(0.02, quota=0.5)
        assert half == pytest.approx(full / 2)

    def test_capacity_exact_value(self, core):
        core.set_frequency(300_000)
        assert core.capacity_cycles(0.02) == pytest.approx(300_000 * 1000 * 0.02)

    def test_offline_capacity_zero(self, core):
        core.set_state(CoreState.OFFLINE)
        assert core.capacity_cycles(0.02) == 0.0

    def test_busy_account_sets_active(self, core):
        core.account(0.7)
        assert core.state is CoreState.ACTIVE
        assert core.busy_fraction == pytest.approx(0.7)

    def test_zero_account_sets_idle(self, core):
        core.account(0.5)
        core.account(0.0)
        assert core.state is CoreState.IDLE

    def test_offline_account_busy_rejected(self, core):
        core.set_state(CoreState.OFFLINE)
        with pytest.raises(CoreStateError):
            core.account(0.1)

    def test_offline_account_zero_allowed(self, core):
        core.set_state(CoreState.OFFLINE)
        core.account(0.0)
        assert core.busy_fraction == 0.0
