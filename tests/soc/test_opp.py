"""OPP table invariants and lookups."""

import pytest

from repro.errors import OppError, UnitsError
from repro.soc.opp import Opp, OppTable


def small_table():
    return OppTable(
        [
            Opp(300_000, 0.90),
            Opp(960_000, 1.00),
            Opp(1_574_400, 1.10),
            Opp(2_265_600, 1.20),
        ]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(OppError):
            OppTable([])

    def test_duplicate_frequency_rejected(self):
        with pytest.raises(OppError):
            OppTable([Opp(300_000, 0.9), Opp(300_000, 1.0)])

    def test_decreasing_voltage_rejected(self):
        with pytest.raises(OppError):
            OppTable([Opp(300_000, 1.0), Opp(960_000, 0.9)])

    def test_sorts_by_frequency(self):
        table = OppTable([Opp(960_000, 1.0), Opp(300_000, 0.9)])
        assert table.frequencies_khz == (300_000, 960_000)

    def test_negative_voltage_rejected(self):
        with pytest.raises(UnitsError):
            Opp(300_000, -0.1)

    def test_linear_interpolates_voltage(self):
        table = OppTable.linear([300_000, 1_282_800, 2_265_600], 0.9, 1.2)
        assert table.min.voltage == pytest.approx(0.9)
        assert table.max.voltage == pytest.approx(1.2)
        assert table.at(1_282_800).voltage == pytest.approx(1.05)

    def test_linear_single_point(self):
        table = OppTable.linear([300_000], 0.9, 1.2)
        assert table.min.voltage == pytest.approx(0.9)

    def test_linear_inverted_voltages_rejected(self):
        with pytest.raises(OppError):
            OppTable.linear([300_000, 600_000], 1.2, 0.9)


class TestLookups:
    def test_contains(self):
        table = small_table()
        assert 960_000 in table
        assert 961_000 not in table

    def test_at_exact(self):
        assert small_table().at(960_000).voltage == pytest.approx(1.0)

    def test_at_missing_raises(self):
        with pytest.raises(OppError):
            small_table().at(1)

    def test_index_of(self):
        assert small_table().index_of(300_000) == 0
        assert small_table().index_of(2_265_600) == 3

    def test_by_index_bounds(self):
        table = small_table()
        assert table.by_index(0).frequency_khz == 300_000
        assert table.by_index(-1).frequency_khz == 2_265_600
        with pytest.raises(OppError):
            table.by_index(4)

    def test_floor_picks_highest_not_above(self):
        assert small_table().floor(1_000_000).frequency_khz == 960_000

    def test_floor_below_min_clamps(self):
        assert small_table().floor(100).frequency_khz == 300_000

    def test_ceil_picks_lowest_not_below(self):
        assert small_table().ceil(961_000).frequency_khz == 1_574_400

    def test_ceil_above_max_clamps(self):
        assert small_table().ceil(9e9).frequency_khz == 2_265_600

    def test_ceil_exact_match(self):
        assert small_table().ceil(960_000).frequency_khz == 960_000

    def test_step_up_and_down(self):
        table = small_table()
        assert table.step_up(300_000).frequency_khz == 960_000
        assert table.step_up(2_265_600).frequency_khz == 2_265_600
        assert table.step_down(960_000).frequency_khz == 300_000
        assert table.step_down(300_000).frequency_khz == 300_000

    def test_step_multiple(self):
        assert small_table().step_up(300_000, steps=2).frequency_khz == 1_574_400

    def test_span_fraction_endpoints(self):
        table = small_table()
        assert table.span_fraction(300_000) == pytest.approx(0.0)
        assert table.span_fraction(2_265_600) == pytest.approx(1.0)


class TestNexus5Table:
    def test_has_14_points(self, opp_table):
        assert len(opp_table) == 14

    def test_range_matches_table1(self, opp_table):
        assert opp_table.min_frequency_khz == 300_000
        assert opp_table.max_frequency_khz == 2_265_600
        assert opp_table.min.voltage == pytest.approx(0.9)
        assert opp_table.max.voltage == pytest.approx(1.2)

    def test_representative_five(self, opp_table):
        five = opp_table.representative_five()
        assert len(five) == 5
        assert five[0].frequency_khz == 300_000
        assert five[-1].frequency_khz == 2_265_600
        # two low, one middle, two high
        assert five[1].frequency_khz == 422_400
        assert five[3].frequency_khz == 1_958_400

    def test_representative_five_small_table(self):
        table = OppTable.linear([1, 2, 3], 0.9, 1.0)
        assert len(table.representative_five()) == 3

    def test_equality_and_hash(self, opp_table, spec):
        assert opp_table == spec.opp_table
        assert hash(opp_table) == hash(spec.opp_table)
        assert opp_table != small_table()
