"""The Nexus 5 calibration anchors (DESIGN.md section 3)."""

import pytest

from repro.soc.calibration import (
    NEXUS5_FREQUENCIES_KHZ,
    NEXUS5_FULL_STRESS_MW,
    nexus5_opp_table,
    nexus5_power_params,
)
from repro.soc.power_model import CpuPowerModel


@pytest.fixture
def model():
    return CpuPowerModel(nexus5_power_params(), nexus5_opp_table())


class TestOppLadder:
    def test_fourteen_frequencies(self):
        assert len(NEXUS5_FREQUENCIES_KHZ) == 14

    def test_table1_range(self):
        table = nexus5_opp_table()
        assert table.min_frequency_khz == 300_000
        assert table.max_frequency_khz == 2_265_600

    def test_voltage_bounds(self):
        table = nexus5_opp_table()
        assert table.min.voltage == pytest.approx(0.9)
        assert table.max.voltage == pytest.approx(1.2)


class TestAnchors:
    def test_static_power_anchors_exact(self, model):
        """Section 4.1.2: 47 mW at fmin, 120 mW at fmax, per core."""
        table = nexus5_opp_table()
        assert model.static_power_mw(table.min) == pytest.approx(47.0, abs=0.01)
        assert model.static_power_mw(table.max) == pytest.approx(120.0, abs=0.01)

    def test_full_stress_anchor(self, model):
        """Figure 1: 2403.82 mW at full stress (with ~70 mW idle uncore)."""
        table = nexus5_opp_table()
        idle_uncore_mw = 70.0
        full = model.predict_total_mw(
            4, table.max_frequency_khz, 1.0, uncore_mw=idle_uncore_mw
        )
        assert full == pytest.approx(NEXUS5_FULL_STRESS_MW, rel=0.01)

    def test_figure3_growth_band(self, model):
        """Power growth 10% -> 100% load at fmax lands near the paper's +74%."""
        table = nexus5_opp_table()
        idle_uncore_mw = 70.0
        low = model.predict_total_mw(1, table.max_frequency_khz, 0.1, idle_uncore_mw)
        high = model.predict_total_mw(1, table.max_frequency_khz, 1.0, idle_uncore_mw)
        growth = 100.0 * (high / low - 1.0)
        assert 50.0 < growth < 90.0

    def test_figure3_saving_band(self, model):
        """fmax -> fmin at 100% load saves within the paper's 28-72% band."""
        table = nexus5_opp_table()
        idle_uncore_mw = 70.0
        high = model.predict_total_mw(1, table.max_frequency_khz, 1.0, idle_uncore_mw)
        low = model.predict_total_mw(1, table.min_frequency_khz, 1.0, idle_uncore_mw)
        saving = 100.0 * (1.0 - low / high)
        assert 28.2 <= saving <= 71.9
