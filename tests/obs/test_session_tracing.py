"""Session-level tracing: count invariants, context, zero disabled cost."""

import pytest

from repro.config import SimulationConfig
from repro.kernel.engine import KernelStack
from repro.kernel.simulator import Simulator
from repro.obs.bus import Tracepoint, TracepointBus
from repro.policies.android_default import AndroidDefaultPolicy
from repro.policies.base import PolicyDecision
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp


def traced_run(config, policy=None, workload=None, **bus_kwargs):
    bus = TracepointBus(**bus_kwargs)
    sim = Simulator(
        Platform.from_spec(nexus5_spec()),
        workload or BusyLoopApp(40.0),
        policy or AndroidDefaultPolicy(),
        config,
        trace=bus,
    )
    return sim, sim.run(), bus


class TestCountInvariants:
    def test_events_match_session_counters(self, short_config):
        """The tentpole invariant: one event per counted transition."""
        sim, result, bus = traced_run(short_config)
        counts = bus.counts
        assert counts["cpufreq:frequency_transition"] == result.dvfs_transitions
        assert result.dvfs_transitions > 0
        assert counts.get("hotplug:core_state", 0) == result.hotplug_transitions
        assert (
            counts.get("cgroup:quota_update", 0)
            == sim.session.stack.bandwidth.update_count
        )
        assert (
            counts.get("hotplug:mpdecision_veto", 0)
            == sim.session.stack.hotplug.vetoed_offline_requests
        )

    def test_tick_events_once_per_tick(self, short_config):
        _, _, bus = traced_run(short_config)
        assert bus.counts["counters:tick"] == short_config.total_ticks
        assert bus.counts["policy:decision"] == short_config.total_ticks

    def test_timestamps_are_simulated_microseconds(self, tiny_config):
        _, _, bus = traced_run(tiny_config)
        ticks = [e for e in bus.events if e.category == "counters"]
        assert ticks[0].ts_us == 0
        step_us = int(round(tiny_config.tick_seconds * 1_000_000))
        assert ticks[1].ts_us == step_us
        assert ticks[-1].ts_us == (len(ticks) - 1) * step_us


class TestDecisionContext:
    def test_frequency_events_carry_governor_and_reason(self, short_config):
        _, _, bus = traced_run(short_config)
        freq_events = [e for e in bus.events if e.category == "cpufreq"]
        assert freq_events
        for event in freq_events:
            assert event.governor == "android-default(ondemand)"
            assert event.reason is not None and ":" in event.reason

    def test_decision_events_describe_the_policy(self, short_config):
        _, _, bus = traced_run(short_config)
        decisions = [e for e in bus.events if e.category == "policy"]
        assert {e.policy for e in decisions} == {"android-default(ondemand)"}
        assert all(0.0 <= e.util_percent <= 100.0 for e in decisions)
        assert any(e.sets_frequencies for e in decisions)


class TestDisabledOverhead:
    def test_untraced_session_never_constructs_events(self, tiny_config, monkeypatch):
        """The ftrace promise: no bus, no event objects, ever."""

        def explode(self, **fields):  # pragma: no cover - must not run
            raise AssertionError("emit() reached without a bus attached")

        monkeypatch.setattr(Tracepoint, "emit", explode)
        sim = Simulator(
            Platform.from_spec(nexus5_spec()),
            BusyLoopApp(40.0),
            AndroidDefaultPolicy(),
            tiny_config,
        )
        result = sim.run()
        assert result.dvfs_transitions > 0

    def test_disabled_bus_never_constructs_events(self, tiny_config, monkeypatch):
        def explode(self, **fields):  # pragma: no cover - must not run
            raise AssertionError("emit() reached while tracing_on=0")

        monkeypatch.setattr(Tracepoint, "emit", explode)
        bus = TracepointBus(tracing_on=False)
        sim = Simulator(
            Platform.from_spec(nexus5_spec()),
            BusyLoopApp(40.0),
            AndroidDefaultPolicy(),
            tiny_config,
            trace=bus,
        )
        sim.run()
        assert len(bus) == 0


class TestLifecycle:
    def test_rerun_clears_and_reproduces_events(self, tiny_config):
        """start() must survive the cpuidle ledger swap and re-attach."""
        sim, _, bus = traced_run(tiny_config)
        first = [(e.category, e.name, e.ts_us) for e in bus.events]
        sim.run()
        second = [(e.category, e.name, e.ts_us) for e in bus.events]
        assert second == first  # cleared between runs, then identical
        assert bus.counts["counters:tick"] == tiny_config.total_ticks

    def test_same_seed_identical_event_stream(self, tiny_config):
        _, _, a = traced_run(tiny_config)
        _, _, b = traced_run(tiny_config)
        assert [repr(e) for e in a.events] == [repr(e) for e in b.events]

    def test_category_filter_limits_stream(self, tiny_config):
        _, result, bus = traced_run(tiny_config, categories=["cpufreq"])
        assert set(e.category for e in bus.events) == {"cpufreq"}
        assert bus.counts["cpufreq:frequency_transition"] == result.dvfs_transitions

    def test_ring_capacity_caps_buffer_not_counts(self, short_config):
        _, _, bus = traced_run(short_config, capacity=100)
        assert len(bus) == 100
        assert bus.total_events > 100
        assert bus.dropped_events == bus.total_events - 100

    def test_profile_mode_times_apply_subsystems(self, tiny_config):
        _, result, bus = traced_run(tiny_config, profile=True)
        durations = bus.snapshot().durations
        assert durations["apply.cpufreq"].count > 0
        assert durations["apply.cpufreq"].mean > 0.0
        # Profiling must not change what the stack does.
        _, plain, _ = traced_run(tiny_config)
        assert plain.mean_power_mw == pytest.approx(result.mean_power_mw)


class TestVeto:
    def test_mpdecision_veto_emits(self):
        stack = KernelStack(
            Platform.from_spec(nexus5_spec()), mpdecision_enabled=True
        )
        bus = TracepointBus()
        stack.attach_trace(bus)
        stack.apply(PolicyDecision(online_mask=(True, False, False, False)))
        assert bus.counts["hotplug:mpdecision_veto"] == 3
        vetoed = [e for e in bus.events if e.name == "mpdecision_veto"]
        assert sorted(e.core for e in vetoed) == [1, 2, 3]
        assert stack.hotplug.vetoed_offline_requests == 3
