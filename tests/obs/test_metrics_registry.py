"""MetricsRegistry: data model, exposition rendering, and the parser."""

import json

import pytest

from repro.errors import MetricsError
from repro.obs.metrics_plane import (
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
)


class TestCounter:
    def test_unlabelled_counter_starts_at_zero(self):
        counter = MetricsRegistry().counter("hits_total", "Hits.")
        assert counter.value() == 0.0
        assert counter.samples() == [{"labels": {}, "value": 0.0}]

    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("hits_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_children_are_independent(self):
        counter = MetricsRegistry().counter(
            "lookups_total", labelnames=("tier", "outcome")
        )
        counter.inc(tier="memo", outcome="hit")
        counter.inc(3, tier="disk", outcome="miss")
        assert counter.value(tier="memo", outcome="hit") == 1.0
        assert counter.value(tier="disk", outcome="miss") == 3.0
        assert counter.value(tier="disk", outcome="hit") == 0.0

    def test_counters_cannot_decrease(self):
        counter = MetricsRegistry().counter("hits_total")
        with pytest.raises(MetricsError, match="cannot decrease"):
            counter.inc(-1)

    def test_wrong_labels_raise(self):
        counter = MetricsRegistry().counter("lookups_total", labelnames=("tier",))
        with pytest.raises(MetricsError, match="takes labels"):
            counter.inc(outcome="hit")
        with pytest.raises(MetricsError, match="takes labels"):
            counter.inc()


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(-4)
        assert gauge.value() == 6.0

    def test_set_max_keeps_the_peak(self):
        gauge = MetricsRegistry().gauge("peak_bytes")
        gauge.set_max(100)
        gauge.set_max(40)
        assert gauge.value() == 100.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "wall_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        (sample,) = histogram.samples()
        assert sample["buckets"] == [[0.1, 1], [1.0, 3], [10.0, 4], ["+Inf", 5]]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(56.05)
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(56.05)

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1.0" is an upper bound, inclusive
        (sample,) = histogram.samples()
        assert sample["buckets"][0] == [1.0, 1]

    def test_buckets_must_increase(self):
        with pytest.raises(MetricsError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(MetricsError, match="strictly increasing"):
            MetricsRegistry().histogram("h2", buckets=(2.0, 1.0))


class TestRegistry:
    def test_registration_is_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "Hits.")
        second = registry.counter("hits_total", "Hits.")
        assert first is second
        assert len(registry) == 1
        assert "hits_total" in registry

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError, match="already registered as counter"):
            registry.gauge("x")
        with pytest.raises(MetricsError, match="already registered as counter"):
            registry.histogram("x")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("tier",))
        with pytest.raises(MetricsError, match="already registered with labels"):
            registry.counter("x", labelnames=("outcome",))

    def test_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(MetricsError, match="invalid label name"):
            registry.counter("ok", labelnames=("bad-label",))
        with pytest.raises(MetricsError, match="invalid label name"):
            registry.counter("ok2", labelnames=("__reserved",))

    def test_get_unknown_metric_raises(self):
        with pytest.raises(MetricsError, match="unknown metric"):
            MetricsRegistry().get("absent")

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.").inc(2)
        registry.histogram("wall", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert json.loads(registry.to_json()) == snapshot
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["hits_total"]["type"] == "counter"
        assert snapshot["hits_total"]["help"] == "Hits."


class TestExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "Hits by tier.",
                         labelnames=("tier",)).inc(3, tier="memo")
        registry.gauge("repro_depth", "Queue depth.").set(7)
        histogram = registry.histogram(
            "repro_wall_seconds", "Wall time.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        return registry

    def test_text_carries_help_type_and_samples(self):
        text = self.build().to_prometheus_text()
        assert "# HELP repro_hits_total Hits by tier." in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{tier="memo"} 3' in text
        assert "repro_depth 7" in text
        assert 'repro_wall_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wall_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_wall_seconds_count 2" in text
        assert text.endswith("\n")

    def test_parser_accepts_our_own_output(self):
        registry = self.build()
        samples = parse_prometheus_text(registry.to_prometheus_text())
        by_name = {(name, tuple(sorted(labels.items()))): value
                   for name, labels, value in samples}
        assert by_name[("repro_hits_total", (("tier", "memo"),))] == 3.0
        assert by_name[("repro_depth", ())] == 7.0
        assert by_name[("repro_wall_seconds_count", ())] == 2.0

    def test_render_from_persisted_snapshot_matches_live(self):
        registry = self.build()
        snapshot = json.loads(registry.to_json())
        assert render_prometheus(snapshot) == registry.to_prometheus_text()

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("errs_total", labelnames=("msg",)).inc(
            msg='bad "quote"\nnewline'
        )
        samples = parse_prometheus_text(registry.to_prometheus_text())
        labelled = [s for s in samples if s[0] == "errs_total" and s[1]]
        assert labelled[0][1]["msg"] == 'bad "quote"\nnewline'


class TestParserRejections:
    def test_empty_exposition_raises(self):
        with pytest.raises(MetricsError, match="no samples"):
            parse_prometheus_text("")

    def test_malformed_sample_raises(self):
        with pytest.raises(MetricsError, match="malformed"):
            parse_prometheus_text("# TYPE x counter\nx one_two_three\n")

    def test_unknown_type_raises(self):
        with pytest.raises(MetricsError, match="unknown metric type"):
            parse_prometheus_text("# TYPE x rainbow\nx 1\n")

    def test_sample_without_type_raises(self):
        with pytest.raises(MetricsError, match="no preceding # TYPE"):
            parse_prometheus_text("x 1\n")

    def test_decreasing_histogram_buckets_raise(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(MetricsError, match="buckets decrease"):
            parse_prometheus_text(text)

    def test_count_bucket_disagreement_raises(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1\n"
            "h_count 9\n"
        )
        with pytest.raises(MetricsError, match="disagrees"):
            parse_prometheus_text(text)
