"""SpanProfiler: hierarchical paths, percentiles, the ambient install."""

import pytest

from repro.obs.metrics_plane import (
    SpanProfiler,
    current_profiler,
    set_profiler,
    span,
)
from repro.obs.metrics_plane.spans import _NULL_SPAN


@pytest.fixture(autouse=True)
def pristine_ambient():
    """Leave the process-global ambient profiler as we found it."""
    previous = set_profiler(None)
    yield
    set_profiler(previous)


class TestSpanRecording:
    def test_span_records_wall_time_under_its_name(self):
        profiler = SpanProfiler()
        with profiler.span("compile"):
            pass
        totals = profiler.totals()
        assert list(totals) == ["compile"]
        assert totals["compile"] >= 0.0

    def test_nested_spans_record_dotted_paths(self):
        profiler = SpanProfiler()
        with profiler.span("execute"):
            with profiler.span("policy"):
                pass
            with profiler.span("workload"):
                pass
        assert profiler.paths() == ["execute", "execute.policy", "execute.workload"]

    def test_sibling_spans_share_a_path_and_accumulate(self):
        profiler = SpanProfiler()
        for _ in range(3):
            with profiler.span("cache.read"):
                pass
        assert profiler.stats()["cache.read"].count == 3

    def test_raising_span_still_records(self):
        profiler = SpanProfiler()
        with pytest.raises(ValueError):
            with profiler.span("execute"):
                raise ValueError("boom")
        assert profiler.paths() == ["execute"]
        # The stack unwound: a new span is top-level again.
        with profiler.span("compile"):
            pass
        assert "compile" in profiler.paths()

    def test_clear_drops_data_but_keeps_enabled(self):
        profiler = SpanProfiler()
        with profiler.span("x"):
            pass
        profiler.clear()
        assert profiler.paths() == []
        assert profiler.enabled


class TestDisabledFastPath:
    def test_disabled_profiler_hands_out_the_shared_null_span(self):
        profiler = SpanProfiler(enabled=False)
        assert profiler.span("anything") is _NULL_SPAN
        with profiler.span("anything"):
            pass
        assert profiler.paths() == []

    def test_disabled_record_and_merge_are_no_ops(self):
        profiler = SpanProfiler(enabled=False)
        profiler.record("x", 1.0)
        profiler.merge({"y": 2.0})
        assert profiler.totals() == {}


class TestAggregation:
    def test_stats_percentiles_over_known_values(self):
        profiler = SpanProfiler()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            profiler.record("phase", value)
        stats = profiler.stats()["phase"]
        assert stats.count == 5
        assert stats.total == pytest.approx(15.0)
        assert stats.mean == pytest.approx(3.0)
        assert stats.p50 == pytest.approx(3.0)
        assert stats.p95 == pytest.approx(4.8)
        assert stats.p99 == pytest.approx(4.96)
        assert stats.min == 1.0
        assert stats.max == 5.0

    def test_single_observation_percentiles_collapse(self):
        profiler = SpanProfiler()
        profiler.record("phase", 2.0)
        stats = profiler.stats()["phase"]
        assert stats.p50 == stats.p95 == stats.p99 == 2.0

    def test_merge_folds_one_observation_per_phase(self):
        profiler = SpanProfiler()
        profiler.merge({"compile": 0.1, "execute": 0.9})
        profiler.merge({"compile": 0.3, "execute": 0.7})
        stats = profiler.stats()
        assert stats["compile"].count == 2
        assert stats["execute"].total == pytest.approx(1.6)


class TestAmbientProfiler:
    def test_ambient_defaults_to_disabled(self):
        assert not current_profiler().enabled
        assert span("anything") is _NULL_SPAN

    def test_set_profiler_installs_and_returns_previous(self):
        mine = SpanProfiler()
        previous = set_profiler(mine)
        try:
            assert current_profiler() is mine
            with span("compile"):
                pass
            assert mine.paths() == ["compile"]
        finally:
            set_profiler(previous)
        assert current_profiler() is not mine

    def test_set_profiler_none_resets_to_disabled(self):
        set_profiler(SpanProfiler())
        set_profiler(None)
        assert not current_profiler().enabled

    def test_instrumentation_sites_feed_the_ambient_profiler(self):
        """compile_scenario and Session.run report through span()."""
        from repro.config import SimulationConfig
        from repro.kernel.engine import Session
        from repro.scenario import Scenario, compile_scenario
        from repro.soc.platform import Platform

        profiler = SpanProfiler()
        previous = set_profiler(profiler)
        try:
            spec = compile_scenario(
                Scenario(config=SimulationConfig(duration_seconds=1.0, seed=0))
            )
            session = Session(
                Platform.from_spec(spec.resolve_platform_spec()),
                spec.build_workload(),
                spec.build_policy(),
                spec.config,
            )
            session.run()
        finally:
            set_profiler(previous)
        assert "compile" in profiler.paths()
        assert "execute" in profiler.paths()
