"""Runner tracing: traced specs, telemetry events, accumulated stats."""

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.obs.events import RunnerCacheEvent, RunnerSessionEvent
from repro.runner import (
    FactoryRef,
    SessionRunner,
    SessionSpec,
    TraceRequest,
    execute_spec,
    execute_spec_full,
)


CFG = SimulationConfig(duration_seconds=2.0, seed=0, warmup_seconds=0.5)


def spec(level=40.0, trace=None, label=""):
    return SessionSpec(
        platform="Nexus 5",
        policy=FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
        workload=FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", level),
        config=CFG,
        pin_uncore_max=False,
        label=label,
        trace=trace,
    )


class TestTraceRequest:
    def test_trace_does_not_change_cache_identity(self):
        assert spec().cache_key() == spec(trace=TraceRequest()).cache_key()
        assert spec().cache_key() != spec(level=50.0).cache_key()

    def test_build_bus_honours_request(self):
        request = TraceRequest(
            categories=("cpufreq",), ring_capacity=64, profile=True
        )
        bus = request.build_bus()
        assert bus.profile
        assert bus.capacity == 64
        assert bus.categories == frozenset({"cpufreq"})

    def test_default_request_records_everything(self):
        bus = TraceRequest().build_bus()
        assert bus.capacity is None
        assert bus.categories is None
        assert not bus.profile


class TestExecuteSpecFull:
    def test_execution_carries_events_and_summary(self):
        execution = execute_spec_full(spec(trace=TraceRequest()))
        assert execution.summary == execute_spec(spec())
        assert execution.ticks == CFG.total_ticks
        assert execution.wall_seconds > 0.0
        assert execution.worker_pid > 0
        assert execution.event_counts["counters:tick"] == CFG.total_ticks
        assert (
            execution.event_counts["cpufreq:frequency_transition"]
            == execution.summary.dvfs_transitions
        )

    def test_untraced_execution_has_no_events(self):
        execution = execute_spec_full(spec())
        assert execution.events == []
        assert execution.event_counts == {}


class TestRunnerTracing:
    def test_traced_spec_bypasses_memo(self):
        runner = SessionRunner(jobs=1)
        traced = spec(trace=TraceRequest(), label="traced")
        runner.run([traced])
        runner.run([traced])
        # Second run executed again — a cached summary has no events.
        assert runner.last_stats.sessions_executed == 1
        assert runner.last_events[0]
        # But the traced run warmed the memo for untraced twins.
        runner.run([spec()])
        assert runner.last_stats.sessions_executed == 0
        assert runner.last_stats.memo_hits == 1

    def test_serial_and_parallel_traces_match(self):
        specs = [
            spec(30.0, trace=TraceRequest(), label="low"),
            spec(70.0, trace=TraceRequest(), label="high"),
        ]
        serial = SessionRunner(jobs=1)
        serial_results = serial.run(specs)
        parallel = SessionRunner(jobs=2)
        parallel_results = parallel.run(specs)
        assert parallel_results == serial_results
        assert set(parallel.last_events) == {0, 1}
        for index in (0, 1):
            assert (
                [repr(e) for e in parallel.last_events[index]]
                == [repr(e) for e in serial.last_events[index]]
            )
            assert (
                parallel.last_event_counts[index]
                == serial.last_event_counts[index]
            )

    def test_ring_and_category_requests_apply(self):
        runner = SessionRunner(jobs=1)
        runner.run(
            [spec(trace=TraceRequest(categories=("cpufreq",), ring_capacity=10))]
        )
        events = runner.last_events[0]
        assert len(events) == 10
        assert {e.category for e in events} == {"cpufreq"}


class TestRunnerTelemetry:
    def test_session_events_attribute_work(self):
        runner = SessionRunner(jobs=1)
        runner.run([spec(label="only")])
        sessions = [
            e for e in runner.telemetry if isinstance(e, RunnerSessionEvent)
        ]
        assert len(sessions) == 1
        event = sessions[0]
        assert event.label == "only"
        assert event.ticks == CFG.total_ticks
        assert event.wall_seconds > 0.0
        assert event.worker_pid > 0
        assert event.ticks_per_second > 0.0

    def test_cache_outcome_events(self):
        runner = SessionRunner(jobs=1)
        runner.run([spec()])
        first = [e for e in runner.telemetry if isinstance(e, RunnerCacheEvent)]
        assert [e.outcome for e in first] == ["miss"]
        runner.run([spec(), spec()])
        outcomes = sorted(
            e.outcome
            for e in runner.telemetry
            if isinstance(e, RunnerCacheEvent)
        )
        assert outcomes == ["alias", "memo_hit"]

    def test_stats_accumulate_across_runs(self):
        runner = SessionRunner(jobs=1)
        runner.run([spec()])
        runner.run([spec()])  # memo hit, nothing executed
        total = runner.total_stats
        assert total.sessions_executed == 1
        assert total.ticks_simulated == CFG.total_ticks
        assert total.memo_hits == 1
        assert total.wall_seconds > 0.0
        assert [label for label, _ in total.spec_timings] == ["spec[0]"]
        assert all(wall > 0.0 for _, wall in total.spec_timings)
        assert total.ticks_per_second > 0.0

    def test_empty_stats_rate_is_zero(self):
        from repro.runner import RunnerStats

        assert RunnerStats().ticks_per_second == 0.0
