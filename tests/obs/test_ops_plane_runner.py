"""The ops plane under fire: chaos sweep metrics vs report ground truth.

The acceptance scenario for the runner's metrics wiring: a ``jobs=4``
sweep with worker crashes and cache corruption must leave the registry
agreeing exactly with the batch's :class:`RunReport` and
``RunnerStats`` — the metrics are a *view* of the run, never an
independent (and therefore driftable) account of it.
"""

import json

from repro.config import SimulationConfig
from repro.faults import truncate_cache_entry
from repro.obs.metrics_plane import (
    heartbeat_path,
    metrics_path,
    parse_prometheus_text,
    read_heartbeat,
    render_prometheus,
)
from repro.runner import FactoryRef, ResultCache, SessionRunner, SessionSpec
from repro.runner.report import STATUS_ORDER


def busyloop_spec(seed, level, label=""):
    return SessionSpec(
        "Nexus 5",
        FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
        FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", level),
        SimulationConfig(duration_seconds=2.0, seed=seed),
        label=label,
    )


def crashing_spec(seed, level, token_path, label=""):
    spec = busyloop_spec(seed, level, label)
    return SessionSpec(
        spec.platform,
        spec.policy,
        FactoryRef.to(
            "repro.faults.chaos:CrashOnceWorkload", str(token_path), level
        ),
        spec.config,
        label=label,
    )


LEVELS = [20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]


class TestChaosSweepMetrics:
    def test_registry_matches_report_ground_truth(self, tmp_path):
        """jobs=4, two crashes, one corrupt cache entry — counted once each."""
        cache_dir = tmp_path / "cache"
        status_dir = tmp_path / "status"

        # Pre-corrupt one cache entry, as the chaos harness does.
        warmer = SessionRunner(jobs=1, cache_dir=cache_dir)
        warm_spec = busyloop_spec(5, LEVELS[5], "chaos5")
        warmer.run([warm_spec])
        truncate_cache_entry(ResultCache(cache_dir).path(warm_spec.cache_key()))

        specs = []
        for i in range(8):
            if i in (1, 6):
                specs.append(crashing_spec(
                    i, LEVELS[i], tmp_path / f"crash{i}.token", f"chaos{i}"
                ))
            else:
                specs.append(busyloop_spec(i, LEVELS[i], f"chaos{i}"))

        runner = SessionRunner(
            jobs=4, cache_dir=cache_dir, retries=3,
            retry_backoff_seconds=0.0, status_dir=status_dir,
        )
        report = runner.run_report(specs)
        assert report.succeeded, report.render()

        stats = runner.last_stats
        registry = runner.metrics

        def counter(name, **labels):
            return registry.get(name).value(**labels)

        # Scalar counters mirror RunnerStats exactly.
        assert counter("repro_runner_sessions_executed_total") == (
            stats.sessions_executed
        )
        assert counter("repro_runner_ticks_simulated_total") == (
            stats.ticks_simulated
        )
        assert counter("repro_runner_retries_total") == stats.retries
        assert counter("repro_runner_corrupt_cache_entries_total") == (
            stats.corrupt_cache_entries
        ) == 1
        assert counter("repro_runner_failed_specs_total") == 0

        # Outcome counters mirror the report, status by status.
        for status in STATUS_ORDER:
            assert counter(
                "repro_runner_spec_outcomes_total", status=status
            ) == len(report.by_status(status)), status

        # Cache-tier lookups mirror the telemetry stream.
        assert counter(
            "repro_runner_cache_lookups_total", tier="disk", outcome="corrupt"
        ) == 1
        cache_events = [
            event for event in runner.telemetry
            if event.category == "runner" and event.name == "cache"
        ]
        total_lookups = sum(
            sample["value"]
            for sample in registry.get("repro_runner_cache_lookups_total").samples()
        )
        assert total_lookups == len(cache_events)

        # Every executed session fed the wall and phase histograms.
        wall = registry.get("repro_runner_session_wall_seconds")
        assert wall.count() == stats.sessions_executed
        phases = registry.get("repro_runner_phase_seconds")
        for phase in ("compile", "execute", "summarize"):
            assert phases.count(phase=phase) == stats.sessions_executed, phase

        # Pools/waves/terminations are plausible and non-zero where due.
        assert counter("repro_runner_pools_created_total") >= 1
        assert counter("repro_runner_waves_dispatched_total") >= 2  # 8 specs / 4
        assert counter("repro_runner_workers_terminated_total") == 0

        # The heartbeat's final record agrees with the report too.
        state = read_heartbeat(heartbeat_path(status_dir))
        assert state.finished
        assert state.total == 8
        for status in STATUS_ORDER:
            assert state.final_counts.get(status, 0) == (
                len(report.by_status(status))
            ), status

        # And the persisted snapshot renders to valid exposition whose
        # samples carry the very same numbers.
        snapshot = json.loads(metrics_path(status_dir).read_text())
        samples = parse_prometheus_text(render_prometheus(snapshot))
        flat = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in samples
        }
        assert flat[("repro_runner_sessions_executed_total", ())] == (
            stats.sessions_executed
        )
        assert flat[("repro_runner_corrupt_cache_entries_total", ())] == 1.0


class TestDisabledParity:
    def test_ops_plane_never_changes_results(self, tmp_path):
        specs = [busyloop_spec(i, LEVELS[i], f"p{i}") for i in range(4)]
        plain = SessionRunner(jobs=2).run(specs)
        instrumented = SessionRunner(
            jobs=2, status_dir=tmp_path / "status"
        ).run(specs)
        assert instrumented == plain

    def test_disabled_runner_has_no_ops_plane(self):
        runner = SessionRunner(jobs=1)
        runner.run([busyloop_spec(0, 40.0)])
        assert runner.metrics is None
        assert runner.status_dir is None


class TestDriverAggregation:
    def test_span_profiler_aggregates_per_spec_phases(self, tmp_path):
        runner = SessionRunner(jobs=2, status_dir=tmp_path / "status")
        runner.run([busyloop_spec(i, 40.0 + i) for i in range(3)])
        stats = runner.span_profiler.stats()
        for phase in ("compile", "execute", "summarize"):
            assert stats[phase].count == 3, phase
            assert stats[phase].p50 <= stats[phase].p99

    def test_metrics_accumulate_across_batches(self, tmp_path):
        runner = SessionRunner(jobs=1, status_dir=tmp_path / "status")
        runner.run([busyloop_spec(0, 40.0)])
        runner.run([busyloop_spec(1, 50.0)])  # second batch, same registry
        executed = runner.metrics.get("repro_runner_sessions_executed_total")
        assert executed.value() == 2.0

    def test_memo_hits_feed_the_memo_tier(self, tmp_path):
        runner = SessionRunner(jobs=1, status_dir=tmp_path / "status")
        runner.run([busyloop_spec(0, 40.0)])
        runner.run([busyloop_spec(0, 40.0)])  # identical: memo hit
        lookups = runner.metrics.get("repro_runner_cache_lookups_total")
        assert lookups.value(tier="memo", outcome="hit") == 1.0
