"""Heartbeat protocol: writer/reader round trips, torn tails, kills."""

import json

import pytest

from repro.config import SimulationConfig
from repro.errors import MetricsError
from repro.obs.metrics_plane import (
    HeartbeatWriter,
    heartbeat_path,
    read_heartbeat,
    render_status,
)
from repro.runner import FactoryRef, SessionRunner, SessionSpec


class TestRoundTrip:
    def test_lifecycle_round_trips(self, tmp_path):
        path = tmp_path / "heartbeat.jsonl"
        writer = HeartbeatWriter(path, total=3, jobs=2, labels=["a", "b", "c"])
        writer.spec(0, "a", "done", source="memo")
        writer.spec(1, "b", "running", attempts=1)
        writer.spec(1, "b", "done", source="executed", wall_seconds=0.5)
        writer.spec(2, "c", "error", attempts=2, error="boom")
        writer.progress()
        writer.finish({"ok": 2, "failed": 1}, wall_seconds=1.25)

        state = read_heartbeat(path)
        assert state.total == 3
        assert state.jobs == 2
        assert state.done == 2
        assert state.errors == 1
        assert state.running == 0
        assert state.finished
        assert state.final_counts == {"ok": 2, "failed": 1}
        assert state.wall_seconds == 1.25
        assert state.specs[0].source == "memo"
        assert state.specs[1].wall_seconds == 0.5
        assert state.specs[1].attempts == 1
        assert state.specs[2].error == "boom"

    def test_eta_uses_done_wall_history_and_jobs(self, tmp_path):
        writer = HeartbeatWriter(
            tmp_path / "hb.jsonl", total=6, jobs=2, labels=[""] * 6
        )
        assert writer.eta_seconds() is None  # no executed spec yet
        writer.spec(0, "", "done", source="executed", wall_seconds=2.0)
        writer.spec(1, "", "done", source="executed", wall_seconds=4.0)
        # mean 3.0 s x 4 remaining / 2 jobs
        assert writer.eta_seconds() == pytest.approx(6.0)
        writer.progress()
        assert read_heartbeat(writer.path).eta_seconds == pytest.approx(6.0)
        writer.close()

    def test_invalid_status_raises(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.jsonl", total=1)
        with pytest.raises(MetricsError, match="unknown spec status"):
            writer.spec(0, "a", "exploded")
        writer.close()


class TestReaderRobustness:
    def start(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.jsonl", total=2, labels=["a", "b"])
        writer.spec(0, "a", "done", source="executed", wall_seconds=0.1)
        writer.close()
        return writer.path

    def test_torn_tail_is_tolerated(self, tmp_path):
        """A reader may catch the writer (or a kill) mid-line."""
        path = self.start(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "spec", "index": 1, "stat')  # torn write
        state = read_heartbeat(path)
        assert state.done == 1
        assert state.specs[1].status == "queued"
        assert not state.finished

    def test_corruption_before_the_tail_raises(self, tmp_path):
        path = self.start(tmp_path)
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        lines[0] = "not json at all"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(MetricsError, match="corrupt at line 1"):
            read_heartbeat(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(MetricsError, match="cannot read heartbeat"):
            read_heartbeat(tmp_path / "absent.jsonl")

    def test_unknown_events_are_skipped(self, tmp_path):
        path = self.start(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"event": "from_the_future", "t": 0}) + "\n")
        assert read_heartbeat(path).done == 1


class TestRenderStatus:
    def test_renders_header_and_per_spec_table(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.jsonl", total=2, labels=["a", "b"])
        writer.spec(0, "a", "done", source="executed", wall_seconds=0.25)
        writer.spec(1, "b", "running", attempts=1)
        writer.close()
        text = render_status(read_heartbeat(writer.path))
        assert "sweep: 1/2 settled, 1 running" in text
        assert "a" in text and "b" in text
        assert "ok" in text  # done glyph
        assert ">" in text  # running glyph

    def test_finished_header_carries_final_counts(self, tmp_path):
        writer = HeartbeatWriter(tmp_path / "hb.jsonl", total=1, labels=["a"])
        writer.spec(0, "a", "done", source="executed", wall_seconds=0.25)
        writer.finish({"ok": 1}, wall_seconds=0.3)
        text = render_status(read_heartbeat(writer.path))
        assert "finished" in text
        assert "1 ok" in text


class TestKilledWorker:
    def test_heartbeat_survives_a_terminated_worker(self, tmp_path):
        """A hung worker is killed by the timeout; the heartbeat still
        tells the whole story: the hang is an error, the clean spec is
        done, and the batch_end record landed."""
        status_dir = tmp_path / "status"
        hang = SessionSpec(
            "Nexus 5",
            FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
            FactoryRef.to("repro.faults.chaos:HangingWorkload", 30.0, 40.0),
            SimulationConfig(duration_seconds=1.0, seed=0),
            label="hang",
        )
        clean = SessionSpec(
            "Nexus 5",
            FactoryRef.to("repro.policies.android_default:AndroidDefaultPolicy"),
            FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", 50.0),
            SimulationConfig(duration_seconds=1.0, seed=1),
            label="clean",
        )
        runner = SessionRunner(
            jobs=2, retries=0, timeout_seconds=1.5, status_dir=status_dir
        )
        report = runner.run_report([hang, clean])
        assert report.outcomes[0].status == "failed"

        state = read_heartbeat(heartbeat_path(status_dir))
        assert state.finished
        assert state.specs[0].status == "error"
        assert "timed out" in state.specs[0].error
        assert state.specs[1].status == "done"
        assert state.final_counts.get("failed") == 1
        text = render_status(state)
        assert "ERR" in text and "hang" in text
        assert (
            runner.metrics.get("repro_runner_workers_terminated_total").value()
            >= 1
        )
