"""Tracepoint bus unit behaviour: switches, ring buffer, telemetry."""

import pytest

from repro.errors import TraceError
from repro.obs.bus import NULL_TRACEPOINT, TracepointBus
from repro.obs.events import FreqTransitionEvent, HotplugEvent, QuotaEvent


class TestTracepointRegistration:
    def test_registration_is_idempotent(self):
        bus = TracepointBus()
        a = bus.tracepoint("cpufreq", "frequency_transition", FreqTransitionEvent)
        b = bus.tracepoint("cpufreq", "frequency_transition", FreqTransitionEvent)
        assert a is b
        assert bus.tracepoints == [a]

    def test_event_class_mismatch_rejected(self):
        bus = TracepointBus()
        bus.tracepoint("cpufreq", "frequency_transition", FreqTransitionEvent)
        with pytest.raises(TraceError):
            bus.tracepoint("cpufreq", "frequency_transition", HotplugEvent)

    def test_enable_state_survives_reattachment(self):
        bus = TracepointBus()
        tp = bus.tracepoint("cpufreq", "frequency_transition", FreqTransitionEvent)
        bus.disable("cpufreq", "frequency_transition")
        again = bus.tracepoint("cpufreq", "frequency_transition", FreqTransitionEvent)
        assert again is tp
        assert not again.enabled

    def test_null_tracepoint_is_disabled_and_guards_emit(self):
        assert not NULL_TRACEPOINT.enabled
        assert not bool(NULL_TRACEPOINT)
        with pytest.raises(TraceError):
            NULL_TRACEPOINT.emit()


class TestSwitches:
    def test_master_switch(self):
        bus = TracepointBus()
        tp = bus.tracepoint("hotplug", "core_state", HotplugEvent)
        assert tp.enabled
        bus.set_tracing(False)
        assert not tp.enabled
        bus.set_tracing(True)
        assert tp.enabled

    def test_per_event_knob(self):
        bus = TracepointBus()
        freq = bus.tracepoint("cpufreq", "frequency_transition", FreqTransitionEvent)
        quota = bus.tracepoint("cgroup", "quota_update", QuotaEvent)
        bus.disable("cpufreq", "frequency_transition")
        assert not freq.enabled
        assert quota.enabled
        bus.enable("cpufreq", "frequency_transition")
        assert freq.enabled

    def test_category_wide_toggle(self):
        bus = TracepointBus()
        a = bus.tracepoint("hotplug", "core_state", HotplugEvent)
        b = bus.tracepoint("cgroup", "quota_update", QuotaEvent)
        bus.disable("hotplug")
        assert not a.enabled
        assert b.enabled

    def test_unmatched_filter_rejected(self):
        bus = TracepointBus()
        bus.tracepoint("hotplug", "core_state", HotplugEvent)
        with pytest.raises(TraceError):
            bus.enable("nonexistent")
        with pytest.raises(TraceError):
            bus.disable("hotplug", "wrong_name")

    def test_category_filter_wins_over_enable(self):
        bus = TracepointBus(categories=["cpufreq"])
        freq = bus.tracepoint("cpufreq", "frequency_transition", FreqTransitionEvent)
        quota = bus.tracepoint("cgroup", "quota_update", QuotaEvent)
        assert freq.enabled
        assert not quota.enabled
        bus.enable()  # requesting everything cannot bypass the filter
        assert not quota.enabled


class TestPublication:
    def test_emit_stamps_bus_time(self):
        bus = TracepointBus()
        tp = bus.tracepoint("hotplug", "core_state", HotplugEvent)
        bus.set_time_us(12_345)
        tp.emit(core=2, online=False, util_percent=7.5)
        (event,) = bus.events
        assert event.ts_us == 12_345
        assert event.core == 2
        assert event.payload() == {
            "core": 2,
            "online": False,
            "util_percent": 7.5,
            "cluster": 0,  # frequency domain, defaulted on homogeneous platforms
        }

    def test_counts_and_totals(self):
        bus = TracepointBus()
        tp = bus.tracepoint("hotplug", "core_state", HotplugEvent)
        for _ in range(3):
            tp.emit(core=0, online=True)
        assert bus.counts == {"hotplug:core_state": 3}
        assert bus.total_events == 3
        assert len(bus) == 3

    def test_ring_buffer_evicts_and_accounts(self):
        bus = TracepointBus(capacity=2)
        tp = bus.tracepoint("hotplug", "core_state", HotplugEvent)
        for core in range(5):
            tp.emit(core=core, online=True)
        assert len(bus) == 2
        assert bus.total_events == 5
        assert bus.dropped_events == 3
        assert [e.core for e in bus.events] == [3, 4]  # oldest evicted first

    def test_invalid_capacity_rejected(self):
        with pytest.raises(TraceError):
            TracepointBus(capacity=0)

    def test_clear_preserves_enable_state(self):
        bus = TracepointBus()
        tp = bus.tracepoint("hotplug", "core_state", HotplugEvent)
        other = bus.tracepoint("cgroup", "quota_update", QuotaEvent)
        bus.disable("cgroup", "quota_update")
        bus.set_time_us(10)
        bus.set_decision_context(util_percent=50.0, governor="g", reason="r")
        tp.emit(core=0, online=True)
        bus.clear()
        assert len(bus) == 0
        assert bus.total_events == 0
        assert bus.now_us == 0
        assert bus.ctx_reason is None
        assert tp.enabled
        assert not other.enabled


class TestTelemetry:
    def test_snapshot(self):
        bus = TracepointBus(capacity=1)
        tp = bus.tracepoint("hotplug", "core_state", HotplugEvent)
        tp.emit(core=0, online=True)
        tp.emit(core=1, online=True)
        bus.add_duration("apply.hotplug", 0.001)
        bus.add_duration("apply.hotplug", 0.003)
        snapshot = bus.snapshot()
        assert snapshot.total_events == 2
        assert snapshot.buffered_events == 1
        assert snapshot.dropped_events == 1
        assert snapshot.count("hotplug", "core_state") == 2
        assert snapshot.count("hotplug") == 2
        assert snapshot.durations["apply.hotplug"].count == 2
        assert snapshot.durations["apply.hotplug"].mean == pytest.approx(0.002)

    def test_snapshot_rows_sorted(self):
        bus = TracepointBus()
        bus.tracepoint("hotplug", "core_state", HotplugEvent).emit(core=0, online=True)
        bus.tracepoint("cgroup", "quota_update", QuotaEvent).emit(
            old_quota=1.0, new_quota=0.9
        )
        assert [key for key, _ in bus.snapshot().rows()] == [
            "cgroup:quota_update",
            "hotplug:core_state",
        ]
