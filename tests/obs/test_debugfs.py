"""The /sys/kernel/debug/tracing knob tree over a live traced simulator."""

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.kernel.android_shell import build_sysfs
from repro.kernel.simulator import Simulator
from repro.obs.bus import TracepointBus
from repro.obs.debugfs import TRACING_ROOT
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.busyloop import BusyLoopApp


@pytest.fixture
def shell():
    bus = TracepointBus()
    simulator = Simulator(
        Platform.from_spec(nexus5_spec()),
        BusyLoopApp(40.0),
        AndroidDefaultPolicy(),
        SimulationConfig(duration_seconds=1.0, seed=0),
        pin_uncore_max=False,
        trace=bus,
    )
    return simulator, build_sysfs(simulator), bus


class TestKnobTree:
    def test_knobs_appear_in_listing(self, shell):
        _, tree, _ = shell
        knobs = tree.list(TRACING_ROOT)
        assert f"/{TRACING_ROOT}/tracing_on" in knobs
        assert f"/{TRACING_ROOT}/events/enable" in knobs
        assert f"/{TRACING_ROOT}/events/cpufreq/frequency_transition/enable" in knobs
        assert f"/{TRACING_ROOT}/events/counters/tick/enable" in knobs
        assert f"/{TRACING_ROOT}/trace_entries" in knobs
        assert f"/{TRACING_ROOT}/dropped_events" in knobs
        # Iteration (satellite: SysfsTree protocol) sees the same paths.
        assert set(knobs) <= set(tree)

    def test_untraced_simulator_has_no_knobs(self):
        simulator = Simulator(
            Platform.from_spec(nexus5_spec()),
            BusyLoopApp(40.0),
            AndroidDefaultPolicy(),
            SimulationConfig(duration_seconds=1.0, seed=0),
            pin_uncore_max=False,
        )
        tree = build_sysfs(simulator)
        assert tree.list(TRACING_ROOT) == []

    def test_writability_split(self, shell):
        _, tree, _ = shell
        assert tree.is_writable(f"{TRACING_ROOT}/tracing_on")
        assert tree.is_writable(f"{TRACING_ROOT}/events/enable")
        assert not tree.is_writable(f"{TRACING_ROOT}/trace_entries")
        assert not tree.is_writable(f"{TRACING_ROOT}/dropped_events")


class TestSwitchesViaSysfs:
    def test_tracing_on_echo_zero_stops_events(self, shell):
        simulator, tree, bus = shell
        tree.write(f"{TRACING_ROOT}/tracing_on", "0")
        assert tree.read(f"{TRACING_ROOT}/tracing_on") == "0"
        simulator.run()
        assert len(bus) == 0
        tree.write(f"{TRACING_ROOT}/tracing_on", "1")
        simulator.run()
        assert bus.counts["counters:tick"] > 0

    def test_per_event_enable_round_trip(self, shell):
        simulator, tree, bus = shell
        knob = f"{TRACING_ROOT}/events/counters/tick/enable"
        assert tree.read(knob) == "1"
        tree.write(knob, "0")
        assert tree.read(knob) == "0"
        simulator.run()
        assert "counters:tick" not in bus.counts
        assert bus.counts["cpufreq:frequency_transition"] > 0

    def test_events_enable_toggles_everything(self, shell):
        simulator, tree, bus = shell
        tree.write(f"{TRACING_ROOT}/events/enable", "0")
        assert tree.read(f"{TRACING_ROOT}/events/enable") == "0"
        simulator.run()
        assert len(bus) == 0
        tree.write(f"{TRACING_ROOT}/events/enable", "1")
        assert tree.read(f"{TRACING_ROOT}/events/enable") == "1"

    def test_counters_readable_after_run(self, shell):
        simulator, tree, bus = shell
        simulator.run()
        assert int(tree.read(f"{TRACING_ROOT}/trace_entries")) == len(bus)
        assert tree.read(f"{TRACING_ROOT}/dropped_events") == "0"

    def test_non_binary_writes_rejected(self, shell):
        _, tree, _ = shell
        for value in ("2", "on", "", "yes"):
            with pytest.raises(ConfigError):
                tree.write(f"{TRACING_ROOT}/tracing_on", value)
