"""Exporters: Chrome-trace shape and validation, JSONL/CSV round trips."""

import json

import pytest

from repro.errors import TraceError
from repro.obs.bus import TracepointBus
from repro.obs.events import (
    FreqTransitionEvent,
    HotplugEvent,
    QuotaEvent,
    TickCountersEvent,
)
from repro.obs.export import (
    count_events,
    events_to_csv,
    events_to_jsonl,
    read_jsonl,
    summarize_trace_file,
)
from repro.obs.perfetto import (
    session_chrome_events,
    to_chrome_trace,
    validate_chrome_trace,
)


def sample_events():
    """A small, hand-built stream touching every exporter branch used here."""
    return [
        FreqTransitionEvent(
            ts_us=0, core=0, old_khz=300_000, new_khz=960_000,
            governor="g", reason="r",
        ),
        HotplugEvent(ts_us=20_000, core=1, online=False, util_percent=12.5),
        QuotaEvent(ts_us=40_000, old_quota=1.0, new_quota=0.8, reason="throttle"),
        TickCountersEvent(
            ts_us=60_000, power_mw=500.0, cpu_power_mw=300.0, util_percent=40.0,
            scaled_load_percent=35.0, quota=0.8, online_cores=3, temperature_c=30.0,
        ),
    ]


class TestChromeExport:
    def test_required_keys_and_phases(self):
        events = session_chrome_events(sample_events(), pid=7, label="demo")
        for event in events:
            assert {"name", "ph", "pid", "ts"} <= set(event)
            assert event["pid"] == 7
        assert {e["ph"] for e in events} == {"M", "C", "i"}

    def test_counter_tracks(self):
        events = session_chrome_events(sample_events())
        names = {e["name"] for e in events if e["ph"] == "C"}
        assert "cpu0 freq_khz" in names
        assert {"power_mw", "quota", "online_cores", "temperature_c"} <= names
        freq = next(e for e in events if e["name"] == "cpu0 freq_khz")
        assert freq["args"]["value"] == 960_000

    def test_instants_land_on_the_right_thread(self):
        events = session_chrome_events(sample_events())
        offline = next(e for e in events if e["name"] == "cpu1 offline")
        assert offline["ph"] == "i" and offline["tid"] == 2  # core 1 -> tid 2
        quota = next(e for e in events if e["name"] == "quota_update")
        assert quota["tid"] == 0  # policy thread
        assert quota["args"]["new_quota"] == 0.8

    def test_process_and_thread_metadata(self):
        events = session_chrome_events(sample_events(), label="nexus5/android")
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "nexus5/android"
        thread_names = {e["args"]["name"] for e in meta[1:]}
        assert {"policy", "cpu0", "cpu1"} <= thread_names

    def test_multi_session_document(self):
        document = to_chrome_trace(
            [("a", sample_events()), ("b", sample_events())]
        )
        validate_chrome_trace(document)
        pids = {e["pid"] for e in document["traceEvents"]}
        assert pids == {0, 1}
        assert document["otherData"]["generator"] == "repro trace"


class TestValidation:
    def test_missing_trace_events_rejected(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"displayTimeUnit": "ms"})
        with pytest.raises(TraceError):
            validate_chrome_trace([])

    def test_missing_key_rejected(self):
        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "i", "ts": 0}]})

    def test_unknown_phase_rejected(self):
        bad = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "ts": 0}]}
        with pytest.raises(TraceError):
            validate_chrome_trace(bad)

    def test_time_travel_rejected_per_pid(self):
        def ev(ts, pid=0):
            return {"name": "x", "ph": "i", "s": "t", "pid": pid, "tid": 0, "ts": ts}

        with pytest.raises(TraceError):
            validate_chrome_trace({"traceEvents": [ev(10), ev(5)]})
        # Different pids have independent clocks.
        validate_chrome_trace({"traceEvents": [ev(10, pid=0), ev(5, pid=1)]})

    def test_negative_ts_rejected(self):
        bad = {"traceEvents": [{"name": "x", "ph": "i", "pid": 0, "ts": -1}]}
        with pytest.raises(TraceError):
            validate_chrome_trace(bad)


class TestFlatExports:
    def test_jsonl_round_trip(self):
        text = events_to_jsonl(sample_events(), session="demo")
        docs = read_jsonl(text)
        assert len(docs) == 4
        assert docs[0]["category"] == "cpufreq"
        assert docs[0]["session"] == "demo"
        assert docs[0]["new_khz"] == 960_000
        assert docs[-1]["ts_us"] == 60_000

    def test_read_jsonl_rejects_garbage(self):
        with pytest.raises(TraceError):
            read_jsonl("not json\n")
        with pytest.raises(TraceError):
            read_jsonl('{"no": "identity"}\n')

    def test_csv_shape(self):
        text = events_to_csv(sample_events(), session="demo")
        lines = text.strip().splitlines()
        assert lines[0] == "ts_us,session,category,name,payload"
        assert len(lines) == 5
        ts, session, category, name, payload = lines[1].split(",", 4)
        assert (ts, session, category) == ("0", "demo", "cpufreq")
        assert "new_khz=960000" in payload

    def test_count_events(self):
        counts = count_events(sample_events())
        assert counts == {
            "cpufreq:frequency_transition": 1,
            "hotplug:core_state": 1,
            "cgroup:quota_update": 1,
            "counters:tick": 1,
        }


class TestSummarizeTraceFile:
    def test_jsonl_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(events_to_jsonl(sample_events()), encoding="utf-8")
        assert summarize_trace_file(path) == count_events(sample_events())

    def test_csv_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(events_to_csv(sample_events()), encoding="utf-8")
        assert summarize_trace_file(path) == count_events(sample_events())

    def test_chrome_file_counts_per_category(self, tmp_path):
        path = tmp_path / "trace.json"
        document = to_chrome_trace([("demo", sample_events())])
        path.write_text(json.dumps(document), encoding="utf-8")
        counts = summarize_trace_file(path)
        # One chrome event per simulation event — except counters, which
        # fan out into one event per counter track.
        assert counts["cpufreq"] == 1
        assert counts["hotplug"] == 1
        assert counts["cgroup"] == 1
        assert counts["counters"] == 7

    def test_unreadable_content_rejected(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("certainly not a trace\n", encoding="utf-8")
        with pytest.raises(TraceError):
            summarize_trace_file(path)

    def test_missing_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError):
            summarize_trace_file(tmp_path / "absent.json")
