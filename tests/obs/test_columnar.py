"""Columnar per-tick exporters: CSV sync gate, JSONL, counter tracks."""

import json

import pytest

from repro.kernel.tracing import TraceRecorder
from repro.obs import (
    TICK_CSV_COLUMNS,
    columns_chrome_events,
    columns_to_chrome_trace,
    ticks_to_csv,
    ticks_to_jsonl,
    validate_chrome_trace,
)


@pytest.fixture
def recorder():
    recorder = TraceRecorder(warmup_ticks=1)
    for tick in range(4):
        recorder.record_tick(
            tick,
            tick * 0.02,
            (300_000, 400_000),
            (True, tick % 2 == 0),
            (0.5, 0.25),
            60.0 + tick,
            0.9,
            1500.0 + tick,
            900.0 + tick,
            31.0 + tick,
            10.0,
            0.0,
            30.0 if tick else None,
            55.0,
        )
    return recorder


class TestCsv:
    def test_matches_recorder_export_byte_for_byte(self, recorder):
        # The sync gate: two independent writers, one format.
        assert ticks_to_csv(recorder.buffer) == recorder.to_csv()

    def test_header_row(self, recorder):
        first = ticks_to_csv(recorder.buffer).splitlines()[0]
        assert first == ",".join(TICK_CSV_COLUMNS)


class TestJsonl:
    def test_one_parseable_object_per_tick(self, recorder):
        lines = ticks_to_jsonl(recorder.buffer).strip().splitlines()
        assert len(lines) == 4
        docs = [json.loads(line) for line in lines]
        assert [d["tick"] for d in docs] == [0, 1, 2, 3]
        assert docs[0]["fps"] is None and docs[1]["fps"] == 30.0
        assert docs[2]["online_count"] == 2 and docs[1]["online_count"] == 1

    def test_session_tag_labels_every_line(self, recorder):
        lines = ticks_to_jsonl(recorder.buffer, session="s0").strip().splitlines()
        assert all(json.loads(line)["session"] == "s0" for line in lines)

    def test_untagged_lines_omit_the_session_key(self, recorder):
        assert "session" not in json.loads(
            ticks_to_jsonl(recorder.buffer).splitlines()[0]
        )


class TestChromeCounters:
    def test_document_validates(self, recorder):
        document = columns_to_chrome_trace([("game", recorder.buffer)])
        validate_chrome_trace(document)

    def test_counter_tracks_and_timestamps(self, recorder):
        events = columns_chrome_events(recorder.buffer, pid=3, label="game")
        metadata, counters = events[0], events[1:]
        assert metadata["ph"] == "M" and metadata["args"] == {"name": "game"}
        assert {e["name"] for e in counters} == {
            "power_mw",
            "cpu_power_mw",
            "util_percent",
            "scaled_load_percent",
            "quota",
            "temperature_c",
            "online_cores",
        }
        assert all(e["ph"] == "C" and e["pid"] == 3 for e in counters)
        # 4 ticks at 20 ms: microsecond timestamps 0, 20000, 40000, 60000.
        assert sorted({e["ts"] for e in counters}) == [0, 20_000, 40_000, 60_000]

    def test_multi_session_document_gets_one_pid_each(self, recorder):
        document = columns_to_chrome_trace(
            [("a", recorder.buffer), ("b", recorder.buffer)]
        )
        validate_chrome_trace(document)
        assert {e["pid"] for e in document["traceEvents"]} == {0, 1}
