"""The six stock governors (paper section 2.2.1 behaviours)."""

import pytest

from repro.errors import GovernorError
from repro.governors import (
    GOVERNOR_REGISTRY,
    ConservativeGovernor,
    InteractiveGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
    create_governor,
)
from repro.governors.base import GovernorInput


def observe(opp_table, load, current=None, dt=0.02):
    if current is None:
        current = opp_table.min_frequency_khz
    return GovernorInput(
        load_percent=load, current_khz=current, opp_table=opp_table, dt_seconds=dt
    )


class TestRegistry:
    def test_all_registered(self):
        assert set(GOVERNOR_REGISTRY) == {
            "ondemand",
            "interactive",
            "conservative",
            "powersave",
            "performance",
            "userspace",
            "schedutil",  # modern extension baseline, not in the paper
        }

    def test_create_by_name(self):
        assert isinstance(create_governor("ondemand"), OndemandGovernor)

    def test_unknown_name_rejected(self):
        with pytest.raises(GovernorError):
            create_governor("warpspeed")

    def test_create_with_kwargs(self):
        governor = create_governor("ondemand", up_threshold=70.0)
        assert governor.up_threshold == 70.0


class TestGovernorInput:
    def test_validates_current_is_opp(self, opp_table):
        with pytest.raises(GovernorError):
            GovernorInput(50.0, 12345, opp_table, 0.02)

    def test_validates_load_range(self, opp_table):
        with pytest.raises(Exception):
            GovernorInput(120.0, opp_table.min_frequency_khz, opp_table, 0.02)


class TestOndemand:
    """Section 2.2.1: jump to max over the threshold, proportional below."""

    def test_jumps_to_max_over_threshold(self, opp_table):
        governor = OndemandGovernor()
        chosen = governor.select(observe(opp_table, 85.0))
        assert chosen == opp_table.max_frequency_khz

    def test_exact_threshold_jumps(self, opp_table):
        assert OndemandGovernor(up_threshold=80.0).select(
            observe(opp_table, 80.0)
        ) == opp_table.max_frequency_khz

    def test_scales_down_proportionally(self, opp_table):
        governor = OndemandGovernor(sampling_down_factor=1)
        fmax = opp_table.max_frequency_khz
        chosen = governor.select(observe(opp_table, 40.0, current=fmax))
        expected = opp_table.floor(fmax * 40.0 / 80.0).frequency_khz
        assert chosen == expected

    def test_holds_max_for_sampling_down_factor(self, opp_table):
        governor = OndemandGovernor(sampling_down_factor=2)
        fmax = opp_table.max_frequency_khz
        governor.select(observe(opp_table, 90.0))
        assert governor.select(observe(opp_table, 10.0, current=fmax)) == fmax
        assert governor.select(observe(opp_table, 10.0, current=fmax)) == fmax
        third = governor.select(observe(opp_table, 10.0, current=fmax))
        assert third < fmax

    def test_reset_clears_hold(self, opp_table):
        governor = OndemandGovernor(sampling_down_factor=3)
        governor.select(observe(opp_table, 90.0))
        governor.reset()
        fmax = opp_table.max_frequency_khz
        assert governor.select(observe(opp_table, 10.0, current=fmax)) < fmax

    def test_bad_params_rejected(self):
        with pytest.raises(GovernorError):
            OndemandGovernor(sampling_down_factor=0)


class TestInteractive:
    def test_hispeed_jump(self, opp_table):
        governor = InteractiveGovernor()
        chosen = governor.select(observe(opp_table, 90.0))
        span = opp_table.max_frequency_khz - opp_table.min_frequency_khz
        hispeed = opp_table.ceil(
            opp_table.min_frequency_khz + span * 0.6
        ).frequency_khz
        assert chosen >= hispeed

    def test_aggressive_target_above_ondemand(self, opp_table):
        """Interactive ramps harder than ondemand below the jump threshold."""
        interactive = InteractiveGovernor()
        ondemand = OndemandGovernor(sampling_down_factor=1)
        mid = opp_table.frequencies_khz[len(opp_table) // 2]
        load = 60.0
        i_choice = interactive.select(observe(opp_table, load, current=mid))
        o_choice = ondemand.select(observe(opp_table, load, current=mid))
        assert i_choice >= o_choice

    def test_min_sample_time_blocks_quick_drop(self, opp_table):
        governor = InteractiveGovernor(min_sample_time_s=0.08)
        fmax = opp_table.max_frequency_khz
        governor.select(observe(opp_table, 90.0, current=fmax))
        # load collapses; the drop is deferred for min_sample_time
        first = governor.select(observe(opp_table, 5.0, current=fmax))
        assert first == fmax
        for _ in range(3):
            last = governor.select(observe(opp_table, 5.0, current=fmax))
        assert last < fmax

    def test_bad_hispeed_fraction(self):
        with pytest.raises(GovernorError):
            InteractiveGovernor(hispeed_fraction=0.0)


class TestConservative:
    def test_steps_up_smoothly(self, opp_table):
        governor = ConservativeGovernor()
        fmin = opp_table.min_frequency_khz
        chosen = governor.select(observe(opp_table, 95.0, current=fmin))
        assert chosen > fmin
        assert chosen < opp_table.max_frequency_khz  # no jump to max

    def test_steps_down(self, opp_table):
        governor = ConservativeGovernor()
        fmax = opp_table.max_frequency_khz
        chosen = governor.select(observe(opp_table, 5.0, current=fmax))
        assert chosen < fmax

    def test_holds_between_thresholds(self, opp_table):
        governor = ConservativeGovernor()
        mid = opp_table.frequencies_khz[7]
        assert governor.select(observe(opp_table, 50.0, current=mid)) == mid

    def test_threshold_ordering_enforced(self):
        with pytest.raises(GovernorError):
            ConservativeGovernor(up_threshold=20.0, down_threshold=30.0)


class TestStaticGovernors:
    def test_powersave_always_min(self, opp_table):
        governor = PowersaveGovernor()
        for load in (0.0, 50.0, 100.0):
            assert governor.select(observe(opp_table, load)) == (
                opp_table.min_frequency_khz
            )

    def test_performance_always_max(self, opp_table):
        governor = PerformanceGovernor()
        for load in (0.0, 50.0, 100.0):
            assert governor.select(observe(opp_table, load)) == (
                opp_table.max_frequency_khz
            )


class TestUserspace:
    def test_honours_setspeed(self, opp_table):
        governor = UserspaceGovernor()
        governor.set_speed(960_000)
        assert governor.select(observe(opp_table, 50.0)) == 960_000

    def test_quantises_setspeed(self, opp_table):
        governor = UserspaceGovernor()
        governor.set_speed(961_000)
        assert governor.select(observe(opp_table, 50.0)) == 1_036_800

    def test_no_setspeed_keeps_current(self, opp_table):
        governor = UserspaceGovernor()
        assert governor.select(observe(opp_table, 50.0, current=960_000)) == 960_000

    def test_bad_setspeed_rejected(self):
        with pytest.raises(GovernorError):
            UserspaceGovernor().set_speed(0)
