"""Figures 1-7: the characterisation experiments, shape assertions.

These use short sessions; the shapes they assert are the paper's
headline claims (see DESIGN.md section 5 for the acceptance criteria).
"""

import pytest

from repro.config import SimulationConfig
from repro.experiments import (
    fig01_phones,
    fig02_thermal,
    fig03_util_power,
    fig04_cores_power,
    fig05_operating_points,
    fig06_perf_power,
    fig07_ratio,
)

QUICK = SimulationConfig(duration_seconds=6.0, seed=0, warmup_seconds=1.0)


@pytest.fixture(scope="module")
def fig1():
    return fig01_phones.run(QUICK)


@pytest.fixture(scope="module")
def fig3():
    return fig03_util_power.run(QUICK, utilizations=(10.0, 40.0, 70.0, 100.0))


@pytest.fixture(scope="module")
def fig4():
    return fig04_cores_power.run(
        SimulationConfig(duration_seconds=45.0, seed=0, warmup_seconds=20.0)
    )


@pytest.fixture(scope="module")
def fig6():
    return fig06_perf_power.run(QUICK)


@pytest.fixture(scope="module")
def fig7():
    return fig07_ratio.run(QUICK)


class TestFig01:
    def test_six_phones_in_year_order(self, fig1):
        assert len(fig1.rows) == 6
        years = [row.release_year for row in fig1.rows]
        assert years == sorted(years)

    def test_power_grows_with_cores(self, fig1):
        assert fig1.power_increases_with_cores()

    def test_nexus5_vs_nexus_s_near_140_percent(self, fig1):
        assert fig1.nexus5_vs_nexus_s_percent == pytest.approx(140.0, abs=20.0)

    def test_render(self, fig1):
        assert "Nexus 5" in fig1.render()


class TestFig02:
    @pytest.fixture(scope="class")
    def fig2(self):
        return fig02_thermal.run()

    def test_ir_temperatures(self, fig2):
        """Paper: 26.9 degC (Nexus S) vs 42.1 degC (Nexus 5)."""
        assert fig2.row("Nexus S").peak_temperature_c == pytest.approx(26.9, abs=1.0)
        assert fig2.row("Nexus 5").peak_temperature_c == pytest.approx(42.1, abs=1.0)

    def test_gap(self, fig2):
        assert fig2.temperature_gap_c == pytest.approx(15.2, abs=1.5)


class TestFig03:
    def test_monotone_in_utilization(self, fig3):
        assert fig3.is_monotone_in_utilization()

    def test_monotone_in_frequency(self, fig3):
        for utilization in fig3.utilizations:
            powers = [fig3.power_mw[f][utilization] for f in fig3.frequencies_khz]
            assert powers == sorted(powers)

    def test_growth_larger_at_high_frequency(self, fig3):
        top = max(fig3.frequencies_khz)
        bottom = min(fig3.frequencies_khz)
        assert fig3.growth_percent(top) > fig3.growth_percent(bottom)

    def test_growth_at_fmax_near_paper(self, fig3):
        """Paper: +74%; model: +60-70% band."""
        assert 50.0 <= fig3.growth_percent(max(fig3.frequencies_khz)) <= 90.0

    def test_saving_in_paper_band(self, fig3):
        """Paper: scaling fmax->fmin at full load saves 28.2-71.9%."""
        assert 28.2 <= fig3.saving_at_full_load_percent() <= 71.9

    def test_render(self, fig3):
        assert "MHz" in fig3.render()


class TestFig04:
    def test_monotone_in_cores_unthrottled(self, fig4):
        """Adding cores never reduces power at frequencies low enough
        that the thermal cap stays out of the picture; at the top two
        frequencies sustained multi-core stress throttles and flattens
        (or slightly inverts) the step, as on the real MSM8974."""
        ladder = sorted(fig4.frequencies_khz)
        for frequency in ladder[:-2]:
            series = fig4.power_mw[frequency]
            values = [series[c] for c in fig4.core_counts]
            assert all(b >= a - 20.0 for a, b in zip(values, values[1:]))

    def test_weakly_monotone_at_top(self, fig4):
        for frequency in sorted(fig4.frequencies_khz)[-2:]:
            series = fig4.power_mw[frequency]
            values = [series[c] for c in fig4.core_counts]
            assert all(b >= a - 150.0 for a, b in zip(values, values[1:]))

    def test_concave_at_fmax(self, fig4):
        """Paper: 1->2 costs +28.3%, 2->4 only +7.7%: strongly concave."""
        assert fig4.is_concave_at(max(fig4.frequencies_khz))

    def test_first_core_jump_dominates(self, fig4):
        top = max(fig4.frequencies_khz)
        assert fig4.increase_percent(top, 1, 2) > 2 * fig4.increase_percent(top, 2, 4) / 2

    def test_lower_frequency_also_concave(self, fig4):
        ladder = sorted(fig4.frequencies_khz)
        assert fig4.is_concave_at(ladder[-2])


class TestFig05:
    @pytest.fixture(scope="class")
    def fig5(self):
        return fig05_operating_points.run(
            SimulationConfig(duration_seconds=4.0, seed=0, warmup_seconds=1.0)
        )

    def test_optimal_cores_grow_with_load(self, fig5):
        counts = fig5.best_core_counts()
        assert counts == sorted(counts)

    def test_low_load_prefers_one_core(self, fig5):
        assert fig5.best_core_counts()[0] == 1

    def test_model_tracks_measurement(self, fig5):
        assert fig5.model_matches_measurement(tolerance_percent=10.0)

    def test_render(self, fig5):
        assert "measured best" in fig5.render()


class TestFig06:
    def test_performance_monotone(self, fig6):
        assert fig6.performance_is_monotone()

    def test_power_monotone(self, fig6):
        powers = fig6.powers_mw()
        assert powers == sorted(powers)

    def test_marginal_gain_flattens(self, fig6):
        """The plateau: the top quarter gains far less than the bottom."""
        assert fig6.plateau_gain_percent() < fig6.low_range_gain_percent() / 2


class TestFig07:
    def test_one_core_ratio_rises(self, fig7):
        ratios = [p.ratio_score_per_w for p in fig7.one_core]
        assert ratios[-1] > ratios[0]

    def test_four_core_peak_interior(self, fig7):
        """Paper: the 4-core ratio peaks near 960 MHz then falls."""
        assert fig7.four_core_peak_is_interior()
        assert fig7.four_core_declines_after_peak()

    def test_four_core_peak_mid_ladder(self, fig7):
        peak = fig7.four_core_peak_khz()
        assert 652_800 <= peak <= 1_574_400

    def test_one_core_ratio_beats_four_core_at_fmax(self, fig7):
        assert (
            fig7.one_core[-1].ratio_score_per_w
            > fig7.four_cores[-1].ratio_score_per_w
        )
