"""The experiment registry covers every table and figure."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS, get_experiment, list_experiments


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table1",
            "table2",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9a",
            "fig9b",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
        }
        assert set(EXPERIMENTS) == expected

    def test_lookup(self):
        experiment = get_experiment("fig3")
        assert "utilization" in experiment.description

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_list_order(self):
        ids = list_experiments()
        assert ids[0] == "table1"
        assert ids[-1] == "fig13"

    def test_cheap_experiments_run_via_registry(self):
        """The zero-simulation drivers run directly from the registry."""
        for experiment_id in ("table1", "table2", "fig8"):
            result = get_experiment(experiment_id).run()
            assert result.render()
