"""The shared game-session matrix and its cache (Figures 10-13 backbone)."""

import time

import pytest

from repro.config import SimulationConfig
from repro.experiments import game_eval
from repro.experiments.common import GAME_NAMES


CFG = SimulationConfig(duration_seconds=8.0, seed=0, warmup_seconds=1.0)


class TestRunGames:
    def test_matrix_shape(self):
        sessions = game_eval.run_games(CFG, seeds=(5,))
        assert set(sessions) == set(GAME_NAMES)
        for rows in sessions.values():
            assert len(rows) == 1
            assert rows[0].baseline.policy.startswith("android")
            assert rows[0].candidate.policy == "mobicore"

    def test_cache_hit_is_instant_and_identical(self):
        first = game_eval.run_games(CFG, seeds=(5,))
        started = time.perf_counter()
        second = game_eval.run_games(CFG, seeds=(5,))
        elapsed = time.perf_counter() - started
        assert second is first  # same object: served from the cache
        assert elapsed < 0.01

    def test_different_seeds_miss_the_cache(self):
        first = game_eval.run_games(CFG, seeds=(5,))
        other = game_eval.run_games(CFG, seeds=(6,))
        assert other is not first
        for game in GAME_NAMES:
            assert (
                other[game][0].baseline.mean_power_mw
                != first[game][0].baseline.mean_power_mw
            )

    def test_mean_rows_skips_none(self):
        rows = game_eval.run_games(CFG, seeds=(5,))["Badland"]
        value = game_eval.mean_rows(rows, lambda r: r.power_saving_percent)
        assert value == pytest.approx(rows[0].power_saving_percent)
