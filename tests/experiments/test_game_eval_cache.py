"""The shared game-session matrix on the runner (Figures 10-13 backbone)."""

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.experiments import game_eval
from repro.experiments.common import GAME_NAMES
from repro.runner import SessionRunner


CFG = SimulationConfig(duration_seconds=8.0, seed=0, warmup_seconds=1.0)


class TestRunGames:
    def test_matrix_shape(self):
        sessions = game_eval.run_games(CFG, seeds=(5,))
        assert set(sessions) == set(GAME_NAMES)
        for rows in sessions.values():
            assert len(rows) == 1
            assert rows[0].baseline.policy.startswith("android")
            assert rows[0].candidate.policy == "mobicore"

    def test_memo_hit_executes_nothing_and_is_identical(self):
        runner = SessionRunner(jobs=1)
        first = game_eval.run_games(CFG, seeds=(5,), runner=runner)
        assert runner.last_stats.sessions_executed == 2 * len(GAME_NAMES)
        second = game_eval.run_games(CFG, seeds=(5,), runner=runner)
        assert runner.last_stats.sessions_executed == 0
        assert runner.last_stats.ticks_simulated == 0
        assert second == first  # bit-identical rows, served from the memo

    def test_disk_cache_survives_a_fresh_runner(self, tmp_path):
        warm = SessionRunner(jobs=1, cache_dir=tmp_path)
        first = game_eval.run_games(CFG, seeds=(5,), runner=warm)
        cold = SessionRunner(jobs=1, cache_dir=tmp_path)  # empty memo
        second = game_eval.run_games(CFG, seeds=(5,), runner=cold)
        assert cold.last_stats.sessions_executed == 0
        assert cold.last_stats.ticks_simulated == 0
        assert cold.last_stats.cache_hits == 2 * len(GAME_NAMES)
        assert second == first

    def test_different_seeds_miss_the_cache(self):
        runner = SessionRunner(jobs=1)
        first = game_eval.run_games(CFG, seeds=(5,), runner=runner)
        other = game_eval.run_games(CFG, seeds=(6,), runner=runner)
        assert runner.last_stats.sessions_executed == 2 * len(GAME_NAMES)
        for game in GAME_NAMES:
            assert (
                other[game][0].baseline.mean_power_mw
                != first[game][0].baseline.mean_power_mw
            )

    def test_cache_key_covers_seed_and_warmup(self):
        """Regression: the old _CACHE key silently dropped both fields."""
        comparison = game_eval.games_comparison(CFG)
        base, _ = comparison._pair(game_eval.game_factory("Badland"), CFG)
        reseeded = dataclasses.replace(base, config=CFG.with_seed(9))
        rewarmed = dataclasses.replace(
            base, config=dataclasses.replace(CFG, warmup_seconds=2.0)
        )
        keys = {base.cache_key(), reseeded.cache_key(), rewarmed.cache_key()}
        assert len(keys) == 3


class TestMeanRows:
    def test_mean_rows_skips_none(self):
        rows = game_eval.run_games(CFG, seeds=(5,))["Badland"]
        value = game_eval.mean_rows(rows, lambda r: r.power_saving_percent)
        assert value == pytest.approx(rows[0].power_saving_percent)

    def test_mean_rows_all_none_returns_none(self):
        """Regression: frameless workloads (FPS is None on every row) used
        to raise ZeroDivisionError."""
        rows = game_eval.run_games(CFG, seeds=(5,))["Badland"]
        assert game_eval.mean_rows(rows, lambda r: None) is None
