"""Table 1, Table 2, and the Figure 8 flow trace."""

import pytest

from repro.core.predictor import WorkloadMode
from repro.experiments import fig08_flow, table1_specs, table2_quota


class TestTable1:
    def test_fourteen_opps(self):
        result = table1_specs.run()
        assert result.opp_count == 14

    def test_render_contains_table1_facts(self):
        text = table1_specs.run().render()
        assert "Snapdragon 800" in text
        assert "2265.6 MHz" in text
        assert "Adreno 330" in text
        assert "Android 6.0" in text

    def test_rows_are_pairs(self):
        result = table1_specs.run()
        assert all(len(row) == 2 for row in result.rows)


class TestTable2:
    def test_demo_profile_covers_all_branches(self):
        result = table2_quota.run()
        modes = {row.mode for row in result.rows}
        assert WorkloadMode.SLOW in modes
        assert WorkloadMode.HIGH in modes or WorkloadMode.BURST in modes

    def test_quota_shrinks_to_floor(self):
        result = table2_quota.run()
        assert result.min_quota < 1.0

    def test_quota_recovers_full(self):
        result = table2_quota.run()
        assert result.recovered_full

    def test_quota_never_out_of_bounds(self):
        for row in table2_quota.run().rows:
            assert 0.0 < row.quota <= 1.0

    def test_render(self):
        text = table2_quota.run().render()
        assert "quota" in text
        assert "slow" in text

    def test_custom_profile(self):
        result = table2_quota.run(utilization_profile=(50.0, 50.0, 50.0))
        assert all(row.quota == 1.0 for row in result.rows)


class TestFig08Flow:
    def test_default_trace_exercises_all_steps(self):
        trace = fig08_flow.run()
        # step 2: slow mode shrinks the quota
        assert trace.quota < 1.0
        # step 3: the two sub-10% cores offline
        assert trace.active_cores == 2
        assert trace.online_mask == [True, True, False, False]
        # step 4: every surviving core has a frequency
        for core_id, online in enumerate(trace.online_mask):
            if online:
                assert trace.final_targets_khz[core_id] is not None

    def test_high_load_keeps_everything(self):
        trace = fig08_flow.run(
            per_core_load_percent=(90.0, 88.0, 85.0, 92.0), delta_util_percent=1.0
        )
        assert trace.active_cores == 4
        assert trace.quota == 1.0

    def test_render(self):
        text = fig08_flow.run().render()
        assert "step 1" in text or "ondemand" in text
        assert "quota" in text
