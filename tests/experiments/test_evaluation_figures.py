"""Figures 9-13: the MobiCore evaluation, shape assertions.

One shared short configuration keeps the game matrix cached across all
five figure drivers (they derive from the same sessions).
"""

import pytest

from repro.config import SimulationConfig
from repro.experiments import (
    fig09_benchmarks,
    fig10_game_power,
    fig11_fps,
    fig12_hw_usage,
    fig13_stress,
)
from repro.experiments.common import GAME_NAMES

CFG = SimulationConfig(duration_seconds=20.0, seed=0, warmup_seconds=2.0)
SEEDS = (1, 2)


@pytest.fixture(scope="module")
def fig9a():
    return fig09_benchmarks.run_busyloop(CFG, loads=(10.0, 30.0, 50.0, 70.0, 100.0))


@pytest.fixture(scope="module")
def fig9b():
    return fig09_benchmarks.run_geekbench(CFG)


@pytest.fixture(scope="module")
def fig10():
    return fig10_game_power.run(CFG, seeds=SEEDS)


@pytest.fixture(scope="module")
def fig11():
    return fig11_fps.run(CFG, seeds=SEEDS)


@pytest.fixture(scope="module")
def fig12():
    return fig12_hw_usage.run(CFG, seeds=SEEDS)


@pytest.fixture(scope="module")
def fig13():
    return fig13_stress.run(CFG, seeds=SEEDS)


class TestFig09a:
    def test_mobicore_always_saves(self, fig9a):
        """Paper: power reduction at every workload level."""
        assert fig9a.always_saves()

    def test_mean_saving_band(self, fig9a):
        """Paper: 13.9% average; model: high single digits or better."""
        assert 5.0 <= fig9a.mean_saving_percent <= 25.0

    def test_best_saving_at_low_load(self, fig9a):
        """Paper: the best case (20.9%) is at a low load (20%)."""
        assert fig9a.best_saving_load <= 40.0
        assert fig9a.best_saving_percent >= 12.0

    def test_saving_vanishes_at_full_load(self, fig9a):
        assert abs(fig9a.savings_percent()[-1]) < 2.0

    def test_render(self, fig9a):
        assert "mean saving" in fig9a.render()


class TestFig09b:
    def test_power_saving_positive(self, fig9b):
        """Paper: ~23% power saving; model: clearly positive."""
        assert fig9b.power_saving_percent > 5.0

    def test_score_close_to_baseline(self, fig9b):
        """MobiCore trades some score, but not proportionally more than
        the power it saves."""
        assert fig9b.mobicore_score >= 0.8 * fig9b.android_score

    def test_render(self, fig9b):
        assert "GeekBench" in fig9b.render()


class TestFig10:
    def test_all_games_present(self, fig10):
        assert [row.game for row in fig10.rows] == list(GAME_NAMES)

    def test_mean_saving_near_paper(self, fig10):
        """Paper: 5.3% average across the games."""
        assert fig10.mean_saving_percent == pytest.approx(5.3, abs=3.0)

    def test_subway_surf_best(self, fig10):
        """Paper: Subway Surf saves the most (11.7%)."""
        assert fig10.best_game == "Subway Surf"

    def test_real_racing_worst(self, fig10):
        """Paper: Real Racing 3 saves the least (0.04%)."""
        assert fig10.worst_game == "Real Racing 3"

    def test_never_worse(self, fig10):
        assert fig10.always_saves()


class TestFig11:
    def test_default_always_higher_fps(self, fig11):
        assert fig11.default_always_higher()

    def test_mobicore_in_acceptable_band(self, fig11):
        """Paper: MobiCore's FPS stays in the 15-20 band."""
        assert fig11.mobicore_in_acceptable_band()

    def test_mean_ratio_band(self, fig11):
        """Paper: ~0.78; model: 0.75-0.95."""
        assert 0.70 <= fig11.mean_ratio <= 0.97


class TestFig12:
    def test_mobicore_uses_fewer_cores(self, fig12):
        """Paper: 2.52 vs 2.75 average cores."""
        assert fig12.mobicore_uses_fewer_cores()

    def test_real_racing_frequency_increases(self, fig12):
        """Paper: Real Racing 3 is the negative-reduction game."""
        assert fig12.real_racing_frequency_increases()

    def test_render(self, fig12):
        assert "cores" in fig12.render()


class TestFig13:
    def test_default_does_more_work(self, fig13):
        """Paper: the default's cores are busier (executed-work view)."""
        assert fig13.default_does_more_work()

    def test_work_difference_modest(self, fig13):
        """The gap is a few points, not an order of magnitude."""
        assert 0.0 <= fig13.mean_work_difference_points <= 20.0

    def test_render(self, fig13):
        assert "load" in fig13.render()
