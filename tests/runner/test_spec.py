"""FactoryRef and SessionSpec: portability, resolution, content address."""

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.errors import RunnerError
from repro.policies.static import StaticPolicy
from repro.runner import (
    CACHE_FORMAT_VERSION,
    KEY_SCHEMA_VERSION,
    FactoryRef,
    SessionSpec,
)
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp


STATIC = FactoryRef.to("repro.policies.static:StaticPolicy", 2, 960_000)
BUSY = FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", 40.0)


def make_spec(**overrides):
    values = dict(platform="Nexus 5", policy=STATIC, workload=BUSY)
    values.update(overrides)
    return SessionSpec(**values)


class TestFactoryRef:
    def test_resolves_to_a_fresh_instance(self):
        policy = STATIC.resolve()
        assert isinstance(policy, StaticPolicy)
        assert STATIC.resolve() is not policy

    def test_ref_is_itself_a_factory(self):
        workload = BUSY()
        assert isinstance(workload, BusyLoopApp)

    def test_kwargs_are_sorted_for_stable_hashing(self):
        a = FactoryRef.to("m.o:f", x=1, y=2)
        b = FactoryRef.to("m.o:f", y=2, x=1)
        assert a == b

    def test_kwargs_normalise_on_every_constructor_path(self):
        # The direct constructor used to bypass .to()'s sorting, so refs
        # built with different kwarg orders hashed to different cache
        # addresses.  Normalisation now happens in __post_init__.
        a = FactoryRef("m.o:f", kwargs=(("y", 2), ("x", 1)))
        b = FactoryRef("m.o:f", kwargs=(("x", 1), ("y", 2)))
        assert a == b
        assert a.kwargs == (("x", 1), ("y", 2))
        assert a.payload() == b.payload()

    def test_kwarg_order_does_not_change_spec_cache_key(self):
        spec_a = make_spec(workload=FactoryRef("m.o:f", kwargs=(("y", 2), ("x", 1))))
        spec_b = make_spec(workload=FactoryRef("m.o:f", kwargs=(("x", 1), ("y", 2))))
        assert spec_a.cache_key() == spec_b.cache_key()

    def test_duplicate_kwarg_names_rejected(self):
        with pytest.raises(RunnerError, match="duplicate kwarg"):
            FactoryRef("m.o:f", kwargs=(("x", 1), ("x", 2)))

    def test_target_must_have_module_and_attr(self):
        with pytest.raises(RunnerError):
            FactoryRef.to("repro.policies.static.StaticPolicy")
        with pytest.raises(RunnerError):
            FactoryRef.to(":StaticPolicy")

    def test_arguments_must_be_primitives(self):
        with pytest.raises(RunnerError):
            FactoryRef.to("m.o:f", object())
        with pytest.raises(RunnerError):
            FactoryRef.to("m.o:f", option=object())

    def test_unresolvable_targets_fail_cleanly(self):
        with pytest.raises(RunnerError):
            FactoryRef.to("no.such.module:thing").resolve()
        with pytest.raises(RunnerError):
            FactoryRef.to("repro.policies.static:NoSuchPolicy").resolve()


class TestPortability:
    def test_named_platform_and_refs_are_portable(self):
        assert make_spec().is_portable

    def test_lambda_factory_is_not_portable(self):
        assert not make_spec(policy=lambda: StaticPolicy(4, 960_000)).is_portable

    def test_live_platform_spec_is_not_portable(self):
        assert not make_spec(platform=nexus5_spec()).is_portable

    def test_non_portable_spec_has_no_cache_identity(self):
        spec = make_spec(workload=lambda: BusyLoopApp(40.0))
        with pytest.raises(RunnerError):
            spec.cache_key()

    def test_non_portable_spec_still_resolves(self):
        spec = make_spec(platform=nexus5_spec())
        assert spec.resolve_platform_spec().name == "Nexus 5"
        assert isinstance(spec.build_policy(), StaticPolicy)


class TestCacheKey:
    def test_key_is_stable_across_equal_specs(self):
        assert make_spec().cache_key() == make_spec().cache_key()

    def test_payload_covers_every_config_field(self):
        payload = make_spec().cache_payload()
        # Keys hash the *key schema* version, decoupled from the entry
        # file format so format bumps never re-address existing entries.
        assert payload["version"] == KEY_SCHEMA_VERSION
        for field in dataclasses.fields(SimulationConfig):
            assert field.name in payload["config"]

    def test_key_schema_and_entry_format_are_decoupled(self):
        # Bumping CACHE_FORMAT_VERSION (v3 columns) must not have moved
        # any content address: addresses still hash schema version 2.
        assert KEY_SCHEMA_VERSION == 2
        assert CACHE_FORMAT_VERSION == 3

    def test_keep_columns_does_not_change_cache_identity(self):
        spec = make_spec()
        with_columns = dataclasses.replace(spec, keep_columns=True)
        assert spec.cache_key() == with_columns.cache_key()

    @pytest.mark.parametrize(
        "variant",
        [
            lambda spec: dataclasses.replace(spec, platform="Nexus S"),
            lambda spec: dataclasses.replace(spec, pin_uncore_max=False),
            lambda spec: dataclasses.replace(
                spec, config=dataclasses.replace(spec.config, seed=7)
            ),
            lambda spec: dataclasses.replace(
                spec, config=dataclasses.replace(spec.config, warmup_seconds=9.0)
            ),
            lambda spec: dataclasses.replace(
                spec,
                policy=FactoryRef.to("repro.policies.static:StaticPolicy", 4, 960_000),
            ),
        ],
    )
    def test_any_field_change_changes_the_key(self, variant):
        base = make_spec()
        assert variant(base).cache_key() != base.cache_key()

    def test_platform_ref_and_name_hash_differently(self):
        by_ref = make_spec(
            platform=FactoryRef.to("repro.soc.catalog:nexus5_spec")
        )
        assert by_ref.is_portable
        assert by_ref.cache_key() != make_spec().cache_key()
