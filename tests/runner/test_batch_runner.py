"""The runner's ``batch=`` knob: grouping, fallback, and ordering.

Batched execution must be invisible except for speed: report rows stay
in spec order no matter how grouping packs them, unbatchable specs
(faults, traces, non-vectorizable shapes) transparently take the normal
pool/inline path, and the summaries equal a plain runner's bit for bit.
"""

import pytest

from repro.config import SimulationConfig
from repro.faults import FaultPlan, ThermalThrottleFault
from repro.runner.runner import SessionRunner
from repro.runner.spec import SessionSpec
from repro.scenario import (
    Scenario,
    ScenarioMatrix,
    platform_ref,
    policy_ref,
    run_scenarios,
    workload_ref,
)

PLATFORM = "Nexus 5"


def sweep_spec(index, policy="mobicore", workload="busyloop", faults=None, config=None):
    """One labelled sweep point; busy-loop intensity varies with index."""
    params = {"target_load_percent": 15.0 + 9.0 * index} if workload == "busyloop" else {}
    return SessionSpec(
        platform=platform_ref(PLATFORM),
        policy=policy_ref(policy, platform=PLATFORM),
        workload=workload_ref(workload, **params),
        config=config
        or SimulationConfig(duration_seconds=2.0, seed=index, warmup_seconds=0.2),
        faults=faults,
        label=f"s{index}",
    )


def faulted_plan():
    return FaultPlan(
        (ThermalThrottleFault(at_seconds=0.5, duration_seconds=0.5, steps=2),)
    )


class TestBatchedRunner:
    def test_mixed_sweep_matches_plain_runner_jobs4(self):
        # Batchable and non-batchable (faulted) specs interleaved: the
        # faulted ones must transparently fall back to the pool while
        # the rest batch, and the report must match a plain run exactly.
        specs = [
            sweep_spec(0),
            sweep_spec(1, policy="android-default"),
            sweep_spec(2, faults=faulted_plan()),
            sweep_spec(3),
            sweep_spec(4, workload="geekbench"),
            sweep_spec(5, faults=faulted_plan()),
            sweep_spec(6, policy="race-to-idle"),
            sweep_spec(7),
        ]
        expected = SessionRunner(jobs=1).run(specs)
        report = SessionRunner(jobs=4, batch=True).run_report(specs)
        assert report.summaries == expected
        details = [outcome.detail for outcome in report.outcomes]
        assert details[0].startswith("batched("), details
        assert details[3].startswith("batched("), details
        for unbatchable in (2, 4, 5):
            assert details[unbatchable] == "", details
        assert all(outcome.status == "ok" for outcome in report.outcomes)

    def test_report_rows_stay_in_spec_order(self):
        # Group packing pulls indices 0/2/4 into one batch; every
        # summary must still land at its own spec's index.
        specs = [
            sweep_spec(0),
            sweep_spec(1, config=SimulationConfig(duration_seconds=1.0, seed=1)),
            sweep_spec(2),
            sweep_spec(3, config=SimulationConfig(duration_seconds=1.0, seed=3)),
            sweep_spec(4),
        ]
        summaries = SessionRunner(batch=True).run(specs)
        for spec, summary in zip(specs, summaries):
            assert summary.seed == spec.config.seed
            assert summary.duration_seconds == spec.config.duration_seconds

    def test_batched_results_fill_memo_and_cache(self, tmp_path):
        specs = [sweep_spec(index) for index in range(3)]
        runner = SessionRunner(batch=True, cache_dir=tmp_path)
        first = runner.run(specs)
        assert runner.last_stats.sessions_executed == 3
        again = runner.run(specs)
        assert again == first
        assert runner.last_stats.memo_hits == 3
        cold = SessionRunner(batch=True, cache_dir=tmp_path)
        assert cold.run(specs) == first
        assert cold.last_stats.cache_hits == 3
        assert cold.last_stats.sessions_executed == 0

    def test_single_spec_groups_use_the_normal_path(self):
        report = SessionRunner(batch=True).run_report([sweep_spec(0)])
        assert report.outcomes[0].detail == ""
        assert report.outcomes[0].source == "executed"
        assert report.summaries[0] is not None

    def test_duplicate_specs_alias_not_rebatch(self):
        spec = sweep_spec(0)
        runner = SessionRunner(batch=True)
        report = runner.run_report([spec, spec, sweep_spec(1), sweep_spec(2)])
        assert report.outcomes[1].source == "alias"
        assert report.summaries[0] == report.summaries[1]
        assert runner.last_stats.sessions_executed == 3


class TestScenarioOrderingRegression:
    def test_run_scenarios_order_is_expansion_order(self):
        # Regression: batch grouping must not reorder run_scenarios
        # output.  The matrix interleaves batchable and non-batchable
        # workloads, so naive group-then-concatenate would shuffle it.
        matrix = ScenarioMatrix(
            base=Scenario(
                platform=PLATFORM,
                policy="mobicore",
                config=SimulationConfig(duration_seconds=1.0, warmup_seconds=0.2),
            ),
            axes=(
                ("workload", ("busyloop", "geekbench")),
                ("config.seed", (1, 2, 3)),
            ),
        )
        scenarios = matrix.expand()
        expected = run_scenarios(scenarios, runner=SessionRunner())
        got = run_scenarios(scenarios, runner=SessionRunner(batch=True, jobs=2))
        assert got == expected
        for scenario, summary in zip(scenarios, got):
            assert summary.workload.startswith(
                "busyloop" if scenario.workload == "busyloop" else "geekbench"
            )
            assert summary.seed == scenario.config.seed


class TestUnenforcedTimeoutAccounting:
    """Batched groups run in the driver process, so --timeout cannot be
    enforced there; the gap must be *visible*, never silent."""

    def test_batched_specs_surface_the_timeout_gap(self):
        specs = [sweep_spec(index) for index in range(3)]
        runner = SessionRunner(batch=True, timeout_seconds=60.0)
        report = runner.run_report(specs)
        report.raise_on_failure()
        assert runner.last_stats.unenforced_timeouts == len(specs)
        for outcome in report.outcomes:
            assert "timeout not enforced" in outcome.detail

    def test_no_timeout_means_no_gap_to_report(self):
        specs = [sweep_spec(index) for index in range(2)]
        runner = SessionRunner(batch=True)
        report = runner.run_report(specs)
        assert runner.last_stats.unenforced_timeouts == 0
        for outcome in report.outcomes:
            assert "timeout not enforced" not in outcome.detail

    def test_pool_path_still_enforces_without_counting(self):
        # Unbatchable (faulted) specs take the pool path where the
        # timeout IS real; nothing should count as unenforced there.
        specs = [sweep_spec(0, faults=faulted_plan())]
        runner = SessionRunner(batch=True, timeout_seconds=60.0, jobs=2)
        runner.run(specs)
        assert runner.last_stats.unenforced_timeouts == 0

    def test_single_spec_group_enforces_normally(self):
        # A group of one takes the normal (enforceable) path, so no gap.
        runner = SessionRunner(batch=True, timeout_seconds=60.0)
        runner.run([sweep_spec(0)])
        assert runner.last_stats.unenforced_timeouts == 0

    def test_stats_table_reports_the_counter(self):
        from repro.obs.metrics_plane import stats_rows

        runner = SessionRunner(batch=True, timeout_seconds=60.0)
        runner.run([sweep_spec(0), sweep_spec(1)])
        rows = dict(stats_rows(runner.last_stats))
        assert rows["unenforced timeouts"] == "2"
