"""Cache format v3: column blobs, v2 read-migration, runner telemetry."""

import dataclasses
import json

from repro.config import SimulationConfig
from repro.kernel.trace_buffer import TraceBuffer
from repro.runner import (
    FactoryRef,
    ResultCache,
    SessionRunner,
    SessionSpec,
    execute_spec_full,
    summary_checksum,
    summary_to_dict,
)
from repro.runner.cache import READABLE_VERSIONS

CFG = SimulationConfig(duration_seconds=2.0, seed=0, warmup_seconds=0.5)


def busyloop_spec(**overrides):
    values = dict(
        platform="Nexus 5",
        policy=FactoryRef.to("repro.policies.static:StaticPolicy", 2, 960_000),
        workload=FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", 40.0),
        config=CFG,
        pin_uncore_max=False,
    )
    values.update(overrides)
    return SessionSpec(**values)


def rewrite_as_v2(cache, key):
    """Rewrite *key*'s entry as a pre-columnar version-2 document."""
    path = cache.path(key)
    document = json.loads(path.read_text())
    document["version"] = 2
    document.pop("columns", None)
    path.write_text(json.dumps(document, sort_keys=True))
    cache.columns_path(key).unlink(missing_ok=True)


class TestV2Migration:
    def test_v2_entry_is_a_verified_hit(self, tmp_path):
        spec = busyloop_spec()
        warm = SessionRunner(jobs=1, cache_dir=tmp_path)
        first = warm.run([spec])
        cache = ResultCache(tmp_path)
        rewrite_as_v2(cache, spec.cache_key())

        lookup = cache.lookup(spec.cache_key())
        assert lookup.hit and lookup.version == 2

        cold = SessionRunner(jobs=1, cache_dir=tmp_path)
        assert cold.run([spec]) == first
        assert cold.last_stats.cache_hits == 1
        assert cold.last_stats.sessions_executed == 0

    def test_unknown_future_version_is_a_miss_not_corrupt(self, tmp_path):
        spec = busyloop_spec()
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        cache = ResultCache(tmp_path)
        path = cache.path(spec.cache_key())
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        assert cache.lookup(spec.cache_key()).status == "miss"

    def test_readable_versions_pin(self):
        assert READABLE_VERSIONS == {2, 3}


class TestColumnBlobs:
    def test_keep_columns_stores_a_loadable_blob(self, tmp_path):
        spec = busyloop_spec(keep_columns=True)
        runner = SessionRunner(jobs=1, cache_dir=tmp_path)
        runner.run([spec])
        cache = ResultCache(tmp_path)
        key = spec.cache_key()
        assert cache.has_columns(key)
        blob = cache.load_columns(key)
        buffer = TraceBuffer.from_npz_bytes(blob)
        assert len(buffer) == CFG.total_ticks
        document = json.loads(cache.path(key).read_text())
        assert document["columns"]["bytes"] == len(blob)

    def test_blob_matches_the_session_trace(self, tmp_path):
        spec = busyloop_spec(keep_columns=True)
        execution = execute_spec_full(spec)
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        blob = ResultCache(tmp_path).load_columns(spec.cache_key())
        assert blob == execution.columns

    def test_plain_spec_stores_no_blob(self, tmp_path):
        spec = busyloop_spec()
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        cache = ResultCache(tmp_path)
        assert not cache.has_columns(spec.cache_key())
        assert cache.load_columns(spec.cache_key()) is None

    def test_corrupt_blob_is_quarantined_and_none(self, tmp_path):
        spec = busyloop_spec(keep_columns=True)
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        cache = ResultCache(tmp_path)
        key = spec.cache_key()
        cache.columns_path(key).write_bytes(b"flipped bits")
        assert cache.load_columns(key) is None
        assert not cache.columns_path(key).exists()
        assert (cache.quarantine_root / cache.columns_path(key).name).exists()

    def test_quarantine_moves_blob_with_entry(self, tmp_path):
        spec = busyloop_spec(keep_columns=True)
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        cache = ResultCache(tmp_path)
        key = spec.cache_key()
        cache.quarantine(key)
        assert not cache.path(key).exists()
        assert not cache.columns_path(key).exists()
        assert (cache.quarantine_root / f"{key}.npz").exists()


class TestKeepColumnsExecution:
    def test_summary_only_entry_forces_reexecution(self, tmp_path):
        plain = busyloop_spec()
        runner = SessionRunner(jobs=1, cache_dir=tmp_path)
        runner.run([plain])
        wants_columns = dataclasses.replace(plain, keep_columns=True)
        runner.run([wants_columns])
        # Same cache identity, but the entry had no blob: must re-run.
        assert runner.last_stats.sessions_executed == 1
        assert ResultCache(tmp_path).has_columns(plain.cache_key())

    def test_entry_with_blob_serves_keep_columns_spec(self, tmp_path):
        spec = busyloop_spec(keep_columns=True)
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        cold = SessionRunner(jobs=1, cache_dir=tmp_path)
        cold.run([spec])
        assert cold.last_stats.sessions_executed == 0
        assert cold.last_stats.cache_hits == 1


class TestTraceTelemetry:
    def test_execution_reports_trace_memory(self):
        execution = execute_spec_full(busyloop_spec())
        assert execution.trace_bytes > 0
        assert execution.peak_recorder_bytes >= execution.trace_bytes
        assert execution.columns is None

    def test_runner_stats_accumulate_trace_bytes(self):
        runner = SessionRunner(jobs=1)
        runner.run([busyloop_spec(), busyloop_spec(config=dataclasses.replace(CFG, seed=5))])
        stats = runner.last_stats
        single = execute_spec_full(busyloop_spec())
        assert stats.trace_bytes == 2 * single.trace_bytes
        assert stats.peak_recorder_bytes == single.peak_recorder_bytes

    def test_cache_hits_record_no_trace_bytes(self, tmp_path):
        spec = busyloop_spec()
        SessionRunner(jobs=1, cache_dir=tmp_path).run([spec])
        cold = SessionRunner(jobs=1, cache_dir=tmp_path)
        cold.run([spec])
        assert cold.last_stats.trace_bytes == 0
        assert cold.last_stats.peak_recorder_bytes == 0


class TestStoreChecksums:
    def test_store_records_summary_checksum(self, tmp_path):
        spec = busyloop_spec()
        execution = execute_spec_full(spec)
        cache = ResultCache(tmp_path)
        cache.store(spec.cache_key(), execution.summary, spec.cache_payload())
        document = json.loads(cache.path(spec.cache_key()).read_text())
        assert document["version"] == 3
        assert document["checksum"] == summary_checksum(
            summary_to_dict(execution.summary)
        )
