"""SessionRunner: ordering, parallel determinism, memo and disk cache."""

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.errors import RunnerError
from repro.experiments.common import GAME_NAMES
from repro.metrics.summary import SessionSummary
from repro.runner import (
    FactoryRef,
    ResultCache,
    SessionRunner,
    SessionSpec,
    configure_default_runner,
    default_runner,
    execute_spec,
    set_default_runner,
    summary_from_dict,
    summary_to_dict,
)
from repro.policies.static import StaticPolicy
from repro.workloads.busyloop import BusyLoopApp


CFG = SimulationConfig(duration_seconds=4.0, seed=0, warmup_seconds=1.0)

ANDROID = FactoryRef.to("repro.experiments.common:android_factory")
MOBICORE = FactoryRef.to("repro.experiments.common:mobicore_factory")


def busyloop_spec(level=40.0, seed=0):
    return SessionSpec(
        platform="Nexus 5",
        policy=FactoryRef.to("repro.policies.static:StaticPolicy", 2, 960_000),
        workload=FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", level),
        config=dataclasses.replace(CFG, seed=seed),
        pin_uncore_max=False,
    )


def game_matrix():
    """The paper's five games under both policies: one batch of ten."""
    return [
        SessionSpec(
            platform="Nexus 5",
            policy=policy,
            workload=FactoryRef.to("repro.workloads.games:game_workload", name),
            config=CFG,
        )
        for name in GAME_NAMES
        for policy in (ANDROID, MOBICORE)
    ]


class TestBatchSemantics:
    def test_results_come_back_in_spec_order(self):
        specs = [busyloop_spec(level) for level in (10.0, 50.0, 90.0)]
        results = SessionRunner(jobs=1).run(specs)
        assert [r.workload for r in results] == [s.workload().name for s in specs]
        powers = [r.mean_power_mw for r in results]
        assert powers == sorted(powers)  # more load, more power

    def test_run_one(self):
        summary = SessionRunner(jobs=1).run_one(busyloop_spec())
        assert isinstance(summary, SessionSummary)
        assert summary.platform == "Nexus 5"

    def test_rejects_non_spec_entries(self):
        with pytest.raises(RunnerError):
            SessionRunner(jobs=1).run([busyloop_spec(), "not a spec"])

    def test_rejects_bad_jobs(self):
        with pytest.raises(RunnerError):
            SessionRunner(jobs=0)

    def test_rejects_cache_dir_that_is_a_file(self, tmp_path):
        target = tmp_path / "occupied"
        target.write_text("not a cache")
        with pytest.raises(RunnerError):
            SessionRunner(jobs=1, cache_dir=target)

    def test_duplicate_specs_simulate_once(self):
        runner = SessionRunner(jobs=1)
        results = runner.run([busyloop_spec(), busyloop_spec()])
        assert runner.last_stats.sessions_executed == 1
        assert runner.last_stats.memo_hits == 1
        assert results[0] == results[1]

    def test_non_portable_specs_run_inline(self):
        spec = SessionSpec(
            platform="Nexus 5",
            policy=lambda: StaticPolicy(2, 960_000),
            workload=lambda: BusyLoopApp(40.0),
            config=CFG,
            pin_uncore_max=False,
        )
        runner = SessionRunner(jobs=4)
        results = runner.run([spec, busyloop_spec()])
        assert runner.last_stats.sessions_executed == 2
        assert results[0] == execute_spec(spec)


class TestParallelDeterminism:
    def test_jobs4_matches_serial_bit_for_bit(self):
        """The acceptance matrix: five games x two policies, serial vs
        four worker processes, identical summaries in identical order."""
        specs = game_matrix()
        serial = SessionRunner(jobs=1).run(specs)
        parallel = SessionRunner(jobs=4).run(specs)
        assert parallel == serial
        for summary, spec in zip(serial, specs):
            assert summary.seed == spec.config.seed


class TestCaching:
    def test_memo_serves_repeat_batches(self):
        runner = SessionRunner(jobs=1)
        first = runner.run([busyloop_spec()])
        second = runner.run([busyloop_spec()])
        assert runner.last_stats.sessions_executed == 0
        assert runner.last_stats.ticks_simulated == 0
        assert runner.last_stats.memo_hits == 1
        assert second == first

    def test_disk_cache_round_trip(self, tmp_path):
        spec = busyloop_spec()
        warm = SessionRunner(jobs=1, cache_dir=tmp_path)
        first = warm.run([spec])
        assert warm.last_stats.sessions_executed == 1
        assert spec.cache_key() in ResultCache(tmp_path)
        cold = SessionRunner(jobs=1, cache_dir=tmp_path)
        second = cold.run([spec])
        assert cold.last_stats.cache_hits == 1
        assert cold.last_stats.ticks_simulated == 0
        assert second == first

    def test_clear_memo_falls_back_to_disk(self, tmp_path):
        runner = SessionRunner(jobs=1, cache_dir=tmp_path)
        runner.run([busyloop_spec()])
        runner.clear_memo()
        runner.run([busyloop_spec()])
        assert runner.last_stats.sessions_executed == 0
        assert runner.last_stats.cache_hits == 1

    def test_different_seed_is_a_miss(self, tmp_path):
        runner = SessionRunner(jobs=1, cache_dir=tmp_path)
        runner.run([busyloop_spec(seed=0)])
        runner.run([busyloop_spec(seed=1)])
        assert runner.last_stats.sessions_executed == 1
        assert runner.last_stats.cache_hits == 0

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        spec = busyloop_spec()
        runner = SessionRunner(jobs=1, cache_dir=tmp_path)
        runner.run([spec])
        cache = ResultCache(tmp_path)
        cache.path(spec.cache_key()).write_text("{not json")
        fresh = SessionRunner(jobs=1, cache_dir=tmp_path)
        fresh.run([spec])
        assert fresh.last_stats.sessions_executed == 1


class TestSummarySerde:
    def test_round_trip_is_identity(self):
        summary = SessionRunner(jobs=1).run_one(busyloop_spec())
        assert summary_from_dict(summary_to_dict(summary)) == summary


class TestDefaultRunner:
    @pytest.fixture(autouse=True)
    def isolate_default(self):
        set_default_runner(None)
        yield
        set_default_runner(None)

    def test_configure_installs(self, tmp_path):
        runner = configure_default_runner(jobs=2, cache_dir=tmp_path)
        assert default_runner() is runner
        assert default_runner().jobs == 2

    def test_lazy_default_reads_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = default_runner()
        assert runner.jobs == 3
        assert str(runner.cache_dir) == str(tmp_path)
