"""Figure 11: average FPS reached and FPS ratio per game.

Paper headlines: the default always reaches a higher FPS; MobiCore stays
in the acceptable 15-20 band; ~22% fewer FPS on average.
"""

from repro.experiments import fig11_fps


def test_fig11_fps(bench_once, evaluation_config):
    result = bench_once(fig11_fps.run, evaluation_config, seeds=(1, 2, 3))
    print("\n" + result.render())
    print(f"\nmean ratio {result.mean_ratio:.2f} (paper ~0.78)")
    assert result.default_always_higher()
    assert result.mobicore_in_acceptable_band()
    assert 0.70 <= result.mean_ratio <= 0.97
