"""Figure 10: average gaming power per game, MobiCore vs Android default.

Paper headlines: savings from 0.04% (Real Racing 3) to 11.7%
(Subway Surf); 5.3% on average; never meaningfully worse.
"""

from repro.experiments import fig10_game_power


def test_fig10_game_power(bench_once, evaluation_config):
    result = bench_once(fig10_game_power.run, evaluation_config, seeds=(1, 2, 3))
    print("\n" + result.render())
    print(
        f"\nbest: {result.best_game} (paper: Subway Surf), "
        f"worst: {result.worst_game} (paper: Real Racing 3), "
        f"mean {result.mean_saving_percent:.1f}% (paper 5.3%)"
    )
    assert result.best_game == "Subway Surf"
    assert result.worst_game == "Real Racing 3"
    assert result.always_saves()
