"""Ablation: MobiCore's robustness to a miscalibrated energy model.

Section 6.4's caveat: "our simple assumptions can certainly not be
generalized due to the wide variety of type of processors".  This bench
hands MobiCore deliberately skewed power parameters (dynamic coefficient
and leakage off by +/-35%) and measures how much of the savings survive
-- the policy's thresholds and Eq. (9) do most of the work, so the
answer should be "almost all of it".
"""

import dataclasses

from repro.analysis.sweep import run_session
from repro.core.mobicore import MobiCorePolicy
from repro.metrics.summary import summarize
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp


def skewed_params(params, dynamic_factor, leak_factor):
    """Skew the model's dynamic and leakage terms independently.

    Asymmetric skews shift the dynamic/static trade-off the
    operating-point optimizer reasons about -- the harder robustness
    case (a uniform scale leaves every argmin unchanged).
    """
    return dataclasses.replace(
        params,
        ceff_mw_per_ghz_v2=params.ceff_mw_per_ghz_v2 * dynamic_factor,
        leak_coefficient_mw=params.leak_coefficient_mw * leak_factor,
    )


def run_model_error_ablation(config):
    spec = nexus5_spec()
    baseline = summarize(
        run_session(
            spec, BusyLoopApp(30.0), AndroidDefaultPolicy(), config, pin_uncore_max=False
        )
    )
    savings = {}
    for label, dynamic_factor, leak_factor in (
        ("exact", 1.0, 1.0),
        ("dyn-35%", 0.65, 1.0),
        ("leak+35%", 1.0, 1.35),
        ("crossed", 0.65, 1.35),
    ):
        policy = MobiCorePolicy(
            power_params=skewed_params(spec.power_params, dynamic_factor, leak_factor),
            opp_table=spec.opp_table,
            num_cores=spec.num_cores,
        )
        summary = summarize(
            run_session(spec, BusyLoopApp(30.0), policy, config, pin_uncore_max=False)
        )
        savings[label] = 100.0 * (1.0 - summary.mean_power_mw / baseline.mean_power_mw)
    return savings


def test_model_error_robustness(bench_once, evaluation_config):
    savings = bench_once(run_model_error_ablation, evaluation_config)
    for label, value in savings.items():
        print(f"\nmodel {label:9s}: saving {value:+.1f}%")
    assert savings["exact"] > 5.0
    # A 35% asymmetric model error keeps at least two thirds of the
    # exact-model savings.
    for label in ("dyn-35%", "leak+35%", "crossed"):
        assert savings[label] > savings["exact"] * 0.66
