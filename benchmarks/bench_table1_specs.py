"""Table 1: the Nexus 5 specification sheet."""

from repro.experiments import table1_specs


def test_table1_specs(bench_once):
    result = bench_once(table1_specs.run)
    print("\n" + result.render())
    assert result.opp_count == 14
