"""Figure 2: full-stress CPU-area temperatures (the infrared image).

Paper anchors: 26.9 degC (Nexus S) vs 42.1 degC (Nexus 5).
"""

from repro.experiments import fig02_thermal


def test_fig02_infrared_readings(bench_once):
    result = bench_once(fig02_thermal.run)
    print("\n" + result.render())
    assert abs(result.row("Nexus S").peak_temperature_c - 26.9) < 1.0
    assert abs(result.row("Nexus 5").peak_temperature_c - 42.1) < 1.0
