"""Extension bench: the section-7 future work (component-aware DVFS).

ComponentAwareMobiCore drops the memory bus to its low point when the
forecast demand has been quiet for a hold time; on a light workload this
recovers the ~190 mW the section-3.2 experiments spent pinning the bus
high, without starving bursts.
"""

from repro.analysis.sweep import run_session
from repro.core import ComponentAwareMobiCore, MobiCorePolicy
from repro.metrics.summary import summarize
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.synthetic import StepWorkload


def run_uncore_extension(config):
    spec = nexus5_spec()

    def policy(cls):
        return cls(
            power_params=spec.power_params,
            opp_table=spec.opp_table,
            num_cores=spec.num_cores,
        )

    results = {}
    for label, factory, workload in (
        ("mobicore/light", lambda: policy(MobiCorePolicy), BusyLoopApp(12.0)),
        ("+uncore/light", lambda: policy(ComponentAwareMobiCore), BusyLoopApp(12.0)),
        ("mobicore/steps", lambda: policy(MobiCorePolicy),
         StepWorkload([(5.0, 10.0), (5.0, 70.0)])),
        ("+uncore/steps", lambda: policy(ComponentAwareMobiCore),
         StepWorkload([(5.0, 10.0), (5.0, 70.0)])),
    ):
        results[label] = summarize(
            run_session(spec, workload, factory(), config, pin_uncore_max=True)
        )
    return results


def test_component_aware_extension(bench_once, evaluation_config):
    results = bench_once(run_uncore_extension, evaluation_config)
    for label, summary in results.items():
        print(
            f"\n{label:15s}: {summary.mean_power_mw:7.1f} mW  "
            f"work {summary.mean_scaled_load_percent:5.1f}%"
        )
    light_gain = (
        results["mobicore/light"].mean_power_mw
        - results["+uncore/light"].mean_power_mw
    )
    print(f"\nuncore scaling recovers {light_gain:.0f} mW on the light workload")
    # The extension saves meaningful uncore power when quiet...
    assert light_gain > 100.0
    # ...and still executes the same work on the bursty step workload.
    assert results["+uncore/steps"].mean_scaled_load_percent >= (
        results["mobicore/steps"].mean_scaled_load_percent - 1.5
    )
