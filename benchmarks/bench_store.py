"""Experiment store: sqlite index reads vs full blob scans.

Fabricates a ``STORE_BENCH_RUNS``-entry store (default 1024) of genuine
cache entries — real :class:`~repro.runner.spec.SessionSpec` documents
with their real ``cache_key()`` and deterministic synthesized summaries,
written through :meth:`~repro.runner.cache.ResultCache.store` — then
opens it as an :class:`~repro.store.ExperimentStore` (lazy backfill
indexes every blob on open, zero recomputes) and times the same
selective read both ways:

* :meth:`~repro.store.ExperimentStore.query` — one indexed sqlite
  SELECT, and
* :meth:`~repro.store.ExperimentStore.scan` — the blob-only reference
  implementation (full directory walk, one JSON parse per entry).

The bench fails unless every representative query returns **identical
rows** through both paths (parity is asserted before any timing), and
the indexed path is at least ``STORE_BENCH_MIN_SPEEDUP`` times faster
(default 10.0; CI's smoke job relaxes it for noisy shared runners).

Results land in ``BENCH_store.json`` (override the location with
``STORE_BENCH_OUT``) so CI can archive the measured ratio.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.config import SimulationConfig
from repro.metrics.summary import SessionSummary
from repro.runner.cache import ResultCache
from repro.runner.spec import SessionSpec
from repro.scenario import policy_ref, workload_ref
from repro.store import ExperimentStore, StoreQuery

RUNS = int(os.environ.get("STORE_BENCH_RUNS", "1024"))
REPEATS = 5
MIN_SPEEDUP = float(os.environ.get("STORE_BENCH_MIN_SPEEDUP", "10.0"))
OUT_PATH = Path(os.environ.get("STORE_BENCH_OUT", "BENCH_store.json"))

_POLICIES = ("android-default", "mobicore")
_LOAD_LEVELS = (20.0, 40.0, 60.0, 80.0)


def _spec(index):
    """Grid point *index* as a real, cache-keyed session spec."""
    policy = _POLICIES[index % len(_POLICIES)]
    level = _LOAD_LEVELS[(index // len(_POLICIES)) % len(_LOAD_LEVELS)]
    seed = index // (len(_POLICIES) * len(_LOAD_LEVELS))
    return SessionSpec(
        platform="Nexus 5",
        policy=policy_ref(policy, platform="Nexus 5")
        if policy == "mobicore"
        else policy_ref(policy),
        workload=workload_ref("busyloop", target_load_percent=level),
        config=SimulationConfig(duration_seconds=30.0, seed=seed),
    )


def _summary(spec, index):
    """A deterministic synthetic summary for *spec* (no simulation).

    Values are derived from the grid index so every entry is distinct
    and reproducible; the store only ever round-trips them, so genuine
    simulation output is not needed to measure read paths.
    """
    return SessionSummary(
        platform="Nexus 5",
        policy=spec.policy.target.rsplit(".", 1)[-1],
        workload="BusyLoopApp",
        seed=spec.config.seed,
        duration_seconds=30.0,
        mean_power_mw=1500.0 + index * 0.25,
        mean_cpu_power_mw=900.0 + index * 0.125,
        energy_mj=45000.0 + index * 7.5,
        mean_frequency_khz=1_500_000.0 + index * 100.0,
        mean_online_cores=2.0 + (index % 3),
        mean_load_percent=30.0 + (index % 50),
        mean_scaled_load_percent=25.0 + (index % 50),
        load_std_percent=4.0 + (index % 7) * 0.5,
        mean_quota=1.5 + (index % 5) * 0.25,
        mean_fps=None if index % 2 else 55.0 + (index % 10) * 0.5,
        dvfs_transitions=100 + index,
        hotplug_transitions=10 + index % 20,
        workload_metrics={"bench_index": float(index)},
    )


def _populate(root, runs):
    """Write *runs* genuine v3 cache entries under *root*."""
    cache = ResultCache(root)
    for index in range(runs):
        spec = _spec(index)
        cache.store(spec.cache_key(), _summary(spec, index), spec.cache_payload())
    return cache


#: The reads timed and parity-checked: a selective axis probe (what the
#: index is for), a policy slice, and the unfiltered overview.
_QUERIES = (
    ("point", StoreQuery(policy="mobicore", seed=7)),
    ("policy-slice", StoreQuery(policy="android-default")),
    ("full", StoreQuery()),
)


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def run_store_benchmark(runs=RUNS):
    """Build the store, assert query/scan parity, time both; report."""
    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        _populate(root, runs)
        with ExperimentStore(root) as store:
            assert store.counters.backfilled == runs, "backfill missed entries"

            parity = True
            for _, query in _QUERIES:
                if store.query(query) != store.scan(query):
                    parity = False
            assert parity, "indexed query diverged from the blob scan"

            probe = _QUERIES[0][1]
            matched = len(store.query(probe))
            query_s = scan_s = float("inf")
            for _ in range(REPEATS):
                elapsed, _rows = _timed(store.query, probe)
                query_s = min(query_s, elapsed)
                elapsed, _rows = _timed(store.scan, probe)
                scan_s = min(scan_s, elapsed)

    return {
        "runs": runs,
        "probe_matched": matched,
        "query_s": query_s,
        "scan_s": scan_s,
        "speedup": scan_s / query_s,
        "min_speedup": MIN_SPEEDUP,
        "parity": parity,
    }


def _check(report):
    assert report["parity"], "indexed query diverged from the blob scan"
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"index speedup x{report['speedup']:.2f} "
        f"below the x{MIN_SPEEDUP:.1f} floor"
    )


def test_store_index(bench_once):
    report = bench_once(run_store_benchmark)
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\n{report['runs']} runs: scan {report['scan_s'] * 1e3:.1f} ms, "
        f"indexed query {report['query_s'] * 1e3:.2f} ms "
        f"(speedup x{report['speedup']:.1f}, floor x{MIN_SPEEDUP:.1f})"
    )
    _check(report)


if __name__ == "__main__":
    result = run_store_benchmark()
    OUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
