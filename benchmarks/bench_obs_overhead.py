"""Ops-plane overhead: an instrumented sweep vs the disabled fast path.

Runs the same cold ``jobs=4`` busyloop batch twice — once on a plain
:class:`~repro.runner.runner.SessionRunner` (no registry, no status
dir: the disabled-by-default fast path) and once with the full ops
plane on (metrics registry, heartbeat file, ``metrics.json`` snapshot)
— taking the min over ``REPEATS`` passes of each.  The bench fails
unless

* the instrumented batch is within ``OBS_BENCH_MAX_OVERHEAD`` of the
  plain one (default 3%; CI's smoke job relaxes it for noisy shared
  runners), and
* the summaries of the two runs are **bit-identical** — observability
  must never touch results.

Results land in ``BENCH_obs.json`` (override with ``OBS_BENCH_OUT``)
so the measured overhead is part of the record.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.config import SimulationConfig
from repro.runner import SessionRunner, SessionSpec
from repro.runner.cache import summary_to_dict
from repro.scenario import policy_ref, workload_ref

JOBS = max(2, min(4, os.cpu_count() or 1))
SPECS = 8
REPEATS = 5
MAX_OVERHEAD = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD", "0.03"))
OUT_PATH = Path(os.environ.get("OBS_BENCH_OUT", "BENCH_obs.json"))


def _specs():
    """A cold 8-spec busyloop batch (distinct seeds, no cache reuse)."""
    config = lambda seed: SimulationConfig(  # noqa: E731 - tiny local factory
        duration_seconds=20.0, seed=seed, warmup_seconds=2.0
    )
    return [
        SessionSpec(
            platform="Nexus 5",
            policy=policy_ref("android-default"),
            workload=workload_ref("busyloop", target_load_percent=60.0),
            config=config(seed),
            label=f"busyloop@{seed}",
        )
        for seed in range(1, SPECS + 1)
    ]


def _timed(status_dir):
    """One cold batch; *status_dir* None means the disabled fast path."""
    runner = SessionRunner(jobs=JOBS, status_dir=status_dir)
    start = time.perf_counter()
    summaries = runner.run(_specs())
    return time.perf_counter() - start, [summary_to_dict(s) for s in summaries]


def run_obs_overhead_benchmark():
    """Time disabled vs instrumented sweeps; return the report dict."""
    plain_s = instrumented_s = float("inf")
    for _ in range(REPEATS):
        elapsed, plain_rows = _timed(None)
        plain_s = min(plain_s, elapsed)
        with tempfile.TemporaryDirectory() as status_dir:
            elapsed, instrumented_rows = _timed(status_dir)
        instrumented_s = min(instrumented_s, elapsed)
    overhead = instrumented_s / plain_s - 1.0
    return {
        "jobs": JOBS,
        "specs": SPECS,
        "repeats": REPEATS,
        "plain_s": plain_s,
        "instrumented_s": instrumented_s,
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "summaries_identical": plain_rows == instrumented_rows,
    }


def _check(report):
    assert report["summaries_identical"], "ops plane changed session results"
    assert report["overhead"] <= MAX_OVERHEAD, (
        f"ops-plane overhead {report['overhead'] * 100:+.1f}% above the "
        f"{MAX_OVERHEAD * 100:.0f}% ceiling"
    )


def test_obs_overhead(bench_once):
    report = bench_once(run_obs_overhead_benchmark)
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\n{report['specs']} specs @ jobs={report['jobs']}: "
        f"plain {report['plain_s']:.2f} s, "
        f"instrumented {report['instrumented_s']:.2f} s "
        f"(overhead {report['overhead'] * 100:+.1f}%, "
        f"ceiling {MAX_OVERHEAD * 100:.0f}%)"
    )
    _check(report)


if __name__ == "__main__":
    result = run_obs_overhead_benchmark()
    OUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
