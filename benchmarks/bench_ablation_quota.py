"""Ablation: MobiCore with and without the bandwidth (quota) control.

Section 4.1.1 adds the quota "to create more power savings when facing a
slow mode"; this bench quantifies what the Table 2 controller buys on a
quiet, slowly varying workload and confirms it costs nothing on heavy
load.
"""

from repro.analysis.comparison import PolicyComparison
from repro.core.mobicore import MobiCorePolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp


def _mobicore(spec, use_quota):
    return MobiCorePolicy(
        power_params=spec.power_params,
        opp_table=spec.opp_table,
        num_cores=spec.num_cores,
        use_quota=use_quota,
    )


def run_quota_ablation(config):
    spec = nexus5_spec()
    comparison = PolicyComparison(
        spec,
        baseline_factory=lambda: _mobicore(spec, use_quota=False),
        candidate_factory=lambda: _mobicore(spec, use_quota=True),
        config=config,
        pin_uncore_max=False,
    )
    return {
        "light": comparison.compare(lambda: BusyLoopApp(20.0)),
        "heavy": comparison.compare(lambda: BusyLoopApp(90.0)),
    }


def test_quota_ablation(bench_once, evaluation_config):
    rows = bench_once(run_quota_ablation, evaluation_config)
    light, heavy = rows["light"], rows["heavy"]
    print(
        f"\nlight load: quota saves {light.power_saving_percent:+.1f}% "
        f"({light.baseline.mean_power_mw:.0f} -> {light.candidate.mean_power_mw:.0f} mW, "
        f"mean quota {light.candidate.mean_quota:.2f})"
    )
    print(
        f"heavy load: quota saves {heavy.power_saving_percent:+.1f}% "
        f"(mean quota {heavy.candidate.mean_quota:.2f})"
    )
    assert light.power_saving_percent > 0.5        # quota helps when quiet
    assert abs(heavy.power_saving_percent) < 2.0   # and is harmless when busy
