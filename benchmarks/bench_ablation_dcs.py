"""Ablation: the hybrid against DVFS-only and DCS-only management.

Section 2 argues neither mechanism alone is enough: DVFS-only leaks
static power on idle cores; DCS-only is "a little abrupt" and cannot set
the just-needed speed.  The hybrid should undercut both at light load.
"""

from repro.analysis.sweep import run_session
from repro.core.mobicore import MobiCorePolicy
from repro.metrics.summary import summarize
from repro.policies.single_mechanism import DcsOnlyPolicy, DvfsOnlyPolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp


def run_dcs_ablation(config):
    spec = nexus5_spec()
    results = {}
    for label, factory in (
        ("dvfs-only", lambda: DvfsOnlyPolicy()),
        ("dcs-only", lambda: DcsOnlyPolicy()),
        (
            "hybrid",
            lambda: MobiCorePolicy(
                power_params=spec.power_params,
                opp_table=spec.opp_table,
                num_cores=spec.num_cores,
            ),
        ),
    ):
        results[label] = summarize(
            run_session(
                spec, BusyLoopApp(20.0), factory(), config, pin_uncore_max=False
            )
        )
    return results


def test_single_mechanism_ablation(bench_once, evaluation_config):
    results = bench_once(run_dcs_ablation, evaluation_config)
    for label, summary in results.items():
        print(
            f"\n{label:10s}: {summary.mean_power_mw:7.1f} mW  "
            f"cores {summary.mean_online_cores:.2f}  "
            f"freq {summary.mean_frequency_khz / 1000:.0f} MHz"
        )
    assert results["hybrid"].mean_power_mw < results["dvfs-only"].mean_power_mw
    assert results["hybrid"].mean_power_mw < results["dcs-only"].mean_power_mw
