"""Figure 12: average frequency difference and active core count per game.

Paper headlines: MobiCore averages fewer active cores (2.52 vs 2.75);
Real Racing 3 is the game where MobiCore's frequency ends *higher*.
"""

from repro.experiments import fig12_hw_usage


def test_fig12_hw_usage(bench_once, evaluation_config):
    result = bench_once(fig12_hw_usage.run, evaluation_config, seeds=(1, 2, 3))
    print("\n" + result.render())
    print(
        f"\nmean cores: android {result.mean_android_cores:.2f} (paper 2.75), "
        f"mobicore {result.mean_mobicore_cores:.2f} (paper 2.52)"
    )
    assert result.mobicore_uses_fewer_cores()
    assert result.real_racing_frequency_increases()
