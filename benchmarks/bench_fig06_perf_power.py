"""Figure 6: performance and power over frequency (1 core, 100% load).

Paper headline: performance rises with frequency and flattens toward the
top of the ladder (the ~1.95 GHz plateau).
"""

from repro.config import SimulationConfig
from repro.experiments import fig06_perf_power


def test_fig06_single_core_curve(bench_once):
    config = SimulationConfig(duration_seconds=15.0, seed=0, warmup_seconds=2.0)
    result = bench_once(fig06_perf_power.run, config)
    print("\n" + result.render())
    print(
        f"\nscore gain over the top quarter: +{result.plateau_gain_percent():.0f}% "
        f"vs +{result.low_range_gain_percent():.0f}% over the bottom quarter"
    )
    assert result.performance_is_monotone()
    assert result.plateau_gain_percent() < result.low_range_gain_percent() / 2
