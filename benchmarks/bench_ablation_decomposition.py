"""Ablation: decompose MobiCore's gaming savings into its three levers.

Section 6.3's conclusion: "The power saving is mainly coming from DVFS
than DCS."  This bench runs Subway Surf (the biggest-savings game) under
four MobiCore variants -- full, DVFS-only (no DCS, no quota), +DCS,
+quota -- against the Android default, attributing the saving to each
mechanism.
"""

from repro.analysis.sweep import run_session
from repro.core.mobicore import MobiCorePolicy
from repro.metrics.summary import summarize
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.games import game_workload


def run_decomposition(config):
    spec = nexus5_spec()

    def mobicore(**flags):
        return MobiCorePolicy(
            power_params=spec.power_params,
            opp_table=spec.opp_table,
            num_cores=spec.num_cores,
            **flags,
        )

    variants = {
        "android": AndroidDefaultPolicy(),
        "eq9-dvfs only": mobicore(use_dcs=False, use_quota=False),
        "eq9 + dcs": mobicore(use_quota=False),
        "full mobicore": mobicore(),
    }
    results = {}
    for label, policy in variants.items():
        results[label] = summarize(
            run_session(
                spec,
                game_workload("Subway Surf"),
                policy,
                config,
                pin_uncore_max=True,
            )
        )
    return results


def test_savings_decomposition(bench_once, evaluation_config):
    results = bench_once(run_decomposition, evaluation_config)
    android = results["android"].mean_power_mw
    print(f"\nandroid default: {android:.0f} mW")
    savings = {}
    for label in ("eq9-dvfs only", "eq9 + dcs", "full mobicore"):
        summary = results[label]
        savings[label] = 100.0 * (1.0 - summary.mean_power_mw / android)
        print(
            f"{label:14s}: {summary.mean_power_mw:7.0f} mW  "
            f"saving {savings[label]:+5.1f}%  cores {summary.mean_online_cores:.2f}"
        )
    dvfs_share = savings["eq9-dvfs only"] / savings["full mobicore"]
    print(f"\nDVFS share of the full saving: {100 * dvfs_share:.0f}% "
          f"(paper section 6.3: 'mainly coming from DVFS')")
    # The DVFS step alone already provides the bulk of the saving (the
    # paper's finding; in our model it can even slightly exceed the full
    # policy on this game, because offlining pushes the surviving cores
    # to higher-voltage OPPs).  DCS/quota stay within noise of it.
    assert dvfs_share > 0.5
    assert savings["full mobicore"] >= savings["eq9-dvfs only"] - 1.5
    # Every variant beats the default.
    assert min(savings.values()) > 0.0
