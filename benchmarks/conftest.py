"""Benchmark configuration shared by all figure/table benches.

Every bench runs its experiment driver exactly once through
pytest-benchmark (``rounds=1``): the interesting output is the figure's
*content* (printed below each bench) plus the wall-clock cost of
regenerating it; statistical timing repetition would just re-simulate
identical deterministic sessions.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig


@pytest.fixture
def bench_once(benchmark):
    """Run a driver once under the benchmark, return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def characterisation_config():
    """Sweep-point sessions (static policies settle within seconds)."""
    return SimulationConfig(duration_seconds=15.0, seed=0, warmup_seconds=2.0)


@pytest.fixture
def evaluation_config():
    """Policy-comparison sessions (long enough for steady statistics)."""
    return SimulationConfig(duration_seconds=60.0, seed=0, warmup_seconds=4.0)
