"""Batched multi-session engine vs N scalar sessions.

Runs the same 256-session same-platform sweep — MobiCore on the Nexus 5
over a grid of busy-loop intensities and seeds — through both engines:
one scalar :class:`~repro.kernel.engine.Session` per spec, and a single
vectorized :class:`~repro.kernel.batch_engine.BatchSession` over all
of them.  The bench fails unless

* every per-session :class:`~repro.metrics.summary.SessionSummary` is
  **bit-identical** across the two paths (the same contract the
  Hypothesis parity test enforces per policy/workload pair, see
  ``docs/NUMERICS.md``), and
* the batched path is at least ``BATCH_BENCH_MIN_SPEEDUP`` times
  faster (default 4.0; CI's smoke job relaxes it to 2.0 for noisy
  shared runners).

Results land in ``BENCH_batch.json`` (override the location with
``BATCH_BENCH_OUT``) so CI can archive the measured ratio;
``docs/BENCHMARKS.md`` indexes the committed artifact.
"""

import json
import os
import time
from pathlib import Path

import repro.scenario.builtins  # noqa: F401  -- populate the registries
from repro.config import SimulationConfig
from repro.kernel.batch_engine import BatchSession
from repro.kernel.engine import Session
from repro.metrics.summary import summarize
from repro.runner.spec import SessionSpec
from repro.scenario.registry import platform_ref, policy_ref, workload_ref
from repro.soc.platform import Platform

PLATFORM = "Nexus 5"
SESSIONS = int(os.environ.get("BATCH_BENCH_SESSIONS", "256"))
#: Batch timed min-of-N; the scalar side is timed once (it dominates the
#: bench's wall clock a hundredfold, far outside timer-noise territory).
BATCH_REPEATS = 3
MIN_SPEEDUP = float(os.environ.get("BATCH_BENCH_MIN_SPEEDUP", "4.0"))
OUT_PATH = Path(os.environ.get("BATCH_BENCH_OUT", "BENCH_batch.json"))


def _sweep_specs(config_seconds=6.0):
    """The 256-point sweep: busy-loop intensity x seed, one platform."""
    return [
        SessionSpec(
            platform=platform_ref(PLATFORM),
            policy=policy_ref("mobicore", platform=PLATFORM),
            workload=workload_ref(
                "busyloop", target_load_percent=10.0 + (index % 32) * 2.5
            ),
            config=SimulationConfig(
                duration_seconds=config_seconds, seed=index, warmup_seconds=0.4
            ),
            label=f"sweep[{index}]",
        )
        for index in range(SESSIONS)
    ]


def _scalar_pass(specs):
    """One scalar Session per spec, timed as a whole."""
    start = time.perf_counter()
    summaries = [
        summarize(
            Session(
                Platform.from_spec(spec.resolve_platform_spec()),
                spec.build_workload(),
                spec.build_policy(),
                spec.config,
                pin_uncore_max=spec.pin_uncore_max,
            ).run()
        )
        for spec in specs
    ]
    return time.perf_counter() - start, summaries


def _batch_pass(specs):
    """All specs through one vectorized BatchSession, timed as a whole."""
    start = time.perf_counter()
    batch = BatchSession(specs)
    summaries = batch.run()
    elapsed = time.perf_counter() - start
    assert batch.fallback_count == 0, "sweep spec failed to vectorize"
    return elapsed, summaries


def run_batch_benchmark():
    """Time both engines on the identical sweep; return the report."""
    specs = _sweep_specs()
    scalar_s, scalar_summaries = _scalar_pass(specs)
    batch_s = float("inf")
    for _ in range(BATCH_REPEATS):
        elapsed, batch_summaries = _batch_pass(specs)
        batch_s = min(batch_s, elapsed)
    return {
        "platform": PLATFORM,
        "sessions": SESSIONS,
        "ticks_per_session": specs[0].config.total_ticks,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "min_speedup": MIN_SPEEDUP,
        "summaries_identical": scalar_summaries == batch_summaries,
        "mean_power_mw_first": scalar_summaries[0].mean_power_mw,
    }


def _check(report):
    assert report["summaries_identical"], "per-session summaries diverged"
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"batch speedup x{report['speedup']:.2f} "
        f"below the x{MIN_SPEEDUP:.1f} floor"
    )


def test_batch_engine(bench_once):
    report = bench_once(run_batch_benchmark)
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\n{report['sessions']} sessions x {report['ticks_per_session']} ticks: "
        f"scalar {report['scalar_s']:.2f} s, batch {report['batch_s']:.2f} s "
        f"(speedup x{report['speedup']:.1f}, floor x{MIN_SPEEDUP:.1f})"
    )
    _check(report)


if __name__ == "__main__":
    result = run_batch_benchmark()
    OUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
