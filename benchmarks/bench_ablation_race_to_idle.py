"""Ablation: off-lining vs race-to-idle (section 4.1.2's validation).

On a per-core-rail platform, idling cores leak 47-120 mW each, so
racing to idle loses to MobiCore's off-lining.  On a shared-rail
platform the gap narrows -- the design axis section 4.1.2 discusses.
"""

from repro.analysis.sweep import run_session
from repro.core.mobicore import MobiCorePolicy
from repro.metrics.summary import summarize
from repro.policies.single_mechanism import RaceToIdlePolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp


def run_race_to_idle_ablation(config):
    spec = nexus5_spec()
    racing = summarize(
        run_session(
            spec, BusyLoopApp(25.0), RaceToIdlePolicy(), config, pin_uncore_max=False
        )
    )
    offlining = summarize(
        run_session(
            spec,
            BusyLoopApp(25.0),
            MobiCorePolicy(
                power_params=spec.power_params,
                opp_table=spec.opp_table,
                num_cores=spec.num_cores,
            ),
            config,
            pin_uncore_max=False,
        )
    )
    return racing, offlining


def test_race_to_idle_ablation(bench_once, evaluation_config):
    racing, offlining = bench_once(run_race_to_idle_ablation, evaluation_config)
    saving = 100.0 * (1.0 - offlining.mean_power_mw / racing.mean_power_mw)
    print(
        f"\nrace-to-idle: {racing.mean_power_mw:.0f} mW "
        f"(4 cores at fmax, idling)\noff-lining:   {offlining.mean_power_mw:.0f} mW "
        f"(MobiCore)\nsaving: {saving:.1f}%"
    )
    assert offlining.mean_power_mw < racing.mean_power_mw
    assert saving > 20.0
