"""Figure 1: average power across the 2010-2014 phone fleet.

Paper anchors: Nexus S 980.6 mW, Nexus 5 2403.82 mW (~140% higher);
power grows almost linearly with core count.
"""

from repro.experiments import fig01_phones


def test_fig01_phone_fleet(bench_once, characterisation_config):
    result = bench_once(fig01_phones.run, characterisation_config)
    print("\n" + result.render())
    print(f"\nNexus 5 vs Nexus S: +{result.nexus5_vs_nexus_s_percent:.0f}% (paper: +140%)")
    assert result.power_increases_with_cores()
    assert abs(result.nexus5_vs_nexus_s_percent - 140.0) < 20.0
