"""Extension bench: the section-3.4 big.LITTLE aside, quantified.

"The use of little cores (and thus more of them) could improve the
energy efficiency when correct operating points are selected" -- for
sustained demand, the little cluster's cheapest operating point
undercuts the big cluster's at every feasible level; the big cores earn
their keep only beyond the little cluster's throughput ceiling.
"""

from repro.analysis.biglittle import (
    compare_clusters,
    default_big_cluster,
    default_little_cluster,
    render_comparison,
)

DEMANDS = (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0)


def run_biglittle_study():
    little = default_little_cluster()
    big = default_big_cluster()
    return compare_clusters(little, big, DEMANDS)


def test_biglittle_study(bench_once):
    points = bench_once(run_biglittle_study)
    print("\n" + render_comparison(points))
    feasible_on_little = [p for p in points if p.little is not None]
    assert feasible_on_little, "sweep should cover the little cluster's range"
    assert all(p.winner == "little" for p in feasible_on_little)
    beyond = [p for p in points if p.little is None]
    assert beyond, "sweep should exceed the little cluster's ceiling"
    assert all(p.big is not None for p in beyond)
