"""Figure 4: power over core count at 100% utilization, five frequencies.

Paper headlines at fmax: 1 -> 2 cores +28.3%, 2 -> 4 cores +7.7% --
strongly concave; the thermally-throttled Nexus 5 reproduces the shape.
"""

from repro.config import SimulationConfig
from repro.experiments import fig04_cores_power


def test_fig04_core_count_sweep(bench_once):
    config = SimulationConfig(duration_seconds=60.0, seed=0, warmup_seconds=20.0)
    result = bench_once(fig04_cores_power.run, config)
    print("\n" + result.render())
    top = max(result.frequencies_khz)
    print(
        f"\nat fmax: 1->2 cores {result.increase_percent(top, 1, 2):+.1f}% "
        f"(paper +28.3%), 2->4 cores {result.increase_percent(top, 2, 4):+.1f}% "
        f"(paper +7.7%)"
    )
    assert result.is_concave_at(top)
