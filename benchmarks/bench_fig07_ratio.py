"""Figure 7: performance/power ratio over frequency for 1 vs 4 cores.

Paper headline: the 1-core ratio rises slowly (log-like); the 4-core
ratio peaks around 960 MHz and then falls.
"""

from repro.config import SimulationConfig
from repro.experiments import fig07_ratio


def test_fig07_ratio_curves(bench_once):
    config = SimulationConfig(duration_seconds=15.0, seed=0, warmup_seconds=2.0)
    result = bench_once(fig07_ratio.run, config)
    print("\n" + result.render())
    print(
        f"\n4-core ratio peak at {result.four_core_peak_khz() / 1000:.0f} MHz "
        f"(paper: ~960 MHz)"
    )
    assert result.four_core_peak_is_interior()
    assert result.four_core_declines_after_peak()
