"""Figure 9(b): the GeekBench-like benchmark, MobiCore vs Android default.

Paper headline (per section 6.4): ~23% power saving on this benchmark.
"""

from repro.experiments import fig09_benchmarks


def test_fig09b_geekbench_comparison(bench_once, evaluation_config):
    result = bench_once(fig09_benchmarks.run_geekbench, evaluation_config)
    print("\n" + result.render())
    print(f"\npower saving {result.power_saving_percent:.1f}% (paper ~23%)")
    assert result.power_saving_percent > 5.0
    assert result.mobicore_score >= 0.8 * result.android_score
