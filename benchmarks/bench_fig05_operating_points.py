"""Figure 5: power over frequency across operating points at fixed loads.

Paper headline: the minimal-power point moves to more cores as global
load rises; the model's optimal curve tracks the measured minima.
"""

from repro.config import SimulationConfig
from repro.experiments import fig05_operating_points


def test_fig05_operating_points(bench_once):
    config = SimulationConfig(duration_seconds=10.0, seed=0, warmup_seconds=2.0)
    result = bench_once(fig05_operating_points.run, config)
    print("\n" + result.render())
    counts = result.best_core_counts()
    print(f"\nmeasured-optimal cores per load {list(result.loads)}: {counts}")
    assert counts == sorted(counts)
    assert result.model_matches_measurement()
