"""Table 2: the bandwidth-reduction algorithm trace."""

from repro.experiments import table2_quota


def test_table2_quota_trace(bench_once):
    result = bench_once(table2_quota.run)
    print("\n" + result.render())
    assert result.min_quota < 1.0
    assert result.recovered_full
