"""Figure 3: power over CPU utilization at five frequencies, one core.

Paper headlines: +74% from 10% to 100% load at fmax (+62.5% at fmin);
scaling fmax -> fmin at full load saves 28.2-71.9%.
"""

from repro.experiments import fig03_util_power


def test_fig03_utilization_sweep(bench_once, characterisation_config):
    result = bench_once(fig03_util_power.run, characterisation_config)
    print("\n" + result.render())
    top = max(result.frequencies_khz)
    print(
        f"\ngrowth at fmax: +{result.growth_percent(top):.0f}% (paper: +74%)   "
        f"saving fmax->fmin at 100%: {result.saving_at_full_load_percent():.0f}% "
        f"(paper band: 28.2-71.9%)"
    )
    assert result.is_monotone_in_utilization()
    assert 28.2 <= result.saving_at_full_load_percent() <= 71.9
