"""Extension bench: MobiCore vs a schedutil-class modern baseline.

schedutil (the governor that replaced ondemand upstream, after the
paper) removes exactly the waste MobiCore's Eq.-9 step targets: it picks
the just-needed frequency directly instead of jumping to fmax.  This
bench quantifies where MobiCore's remaining levers (off-lining, quota)
still pay:

* on steady busy loops, schedutil alone closes most of the gap to
  MobiCore (and both clearly beat ondemand);
* on a dynamic game, MobiCore's DCS + bandwidth control still win.
"""

from repro.analysis.sweep import run_session
from repro.core.mobicore import MobiCorePolicy
from repro.metrics.summary import summarize
from repro.policies.android_default import AndroidDefaultPolicy
from repro.soc.catalog import nexus5_spec
from repro.workloads.busyloop import BusyLoopApp
from repro.workloads.games import game_workload


def run_schedutil_extension(config):
    spec = nexus5_spec()

    def mobicore():
        return MobiCorePolicy(
            power_params=spec.power_params,
            opp_table=spec.opp_table,
            num_cores=spec.num_cores,
        )

    results = {}
    for workload_name, factory, pin in (
        ("busyloop-20%", lambda: BusyLoopApp(20.0), False),
        ("busyloop-50%", lambda: BusyLoopApp(50.0), False),
        ("Badland", lambda: game_workload("Badland"), True),
    ):
        results[workload_name] = {
            "ondemand": summarize(
                run_session(spec, factory(), AndroidDefaultPolicy(), config, pin)
            ),
            "schedutil": summarize(
                run_session(
                    spec,
                    factory(),
                    AndroidDefaultPolicy(governor_name="schedutil"),
                    config,
                    pin,
                )
            ),
            "mobicore": summarize(
                run_session(spec, factory(), mobicore(), config, pin)
            ),
        }
    return results


def test_schedutil_extension(bench_once, evaluation_config):
    results = bench_once(run_schedutil_extension, evaluation_config)
    for workload_name, by_policy in results.items():
        line = "  ".join(
            f"{policy}={summary.mean_power_mw:.0f}mW"
            for policy, summary in by_policy.items()
        )
        print(f"\n{workload_name:13s}: {line}")
    for workload_name, by_policy in results.items():
        # Both modern policies beat the 2006-era ondemand default.
        assert by_policy["schedutil"].mean_power_mw < by_policy["ondemand"].mean_power_mw
        assert by_policy["mobicore"].mean_power_mw < by_policy["ondemand"].mean_power_mw
    # On the dynamic game, MobiCore's extra levers (DCS + quota) still
    # beat a pure modern DVFS baseline.
    game = results["Badland"]
    assert game["mobicore"].mean_power_mw < game["schedutil"].mean_power_mw
