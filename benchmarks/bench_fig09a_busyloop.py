"""Figure 9(a): the busy-loop benchmark, MobiCore vs Android default.

Paper headlines: power reduction at every load level; worst 6.8% (50%),
best 20.9% (20%), average 13.9%.
"""

from repro.experiments import fig09_benchmarks


def test_fig09a_busyloop_comparison(bench_once, evaluation_config):
    result = bench_once(fig09_benchmarks.run_busyloop, evaluation_config)
    print("\n" + result.render())
    print(
        f"\nmean saving {result.mean_saving_percent:.1f}% (paper 13.9%), "
        f"best {result.best_saving_percent:.1f}% at {result.best_saving_load:.0f}% "
        f"(paper 20.9% at 20%)"
    )
    assert result.always_saves()
    assert result.mean_saving_percent >= 5.0
    assert result.best_saving_load <= 40.0
