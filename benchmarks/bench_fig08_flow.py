"""Figure 8: the MobiCore decision flow, traced on one sampling period."""

from repro.experiments import fig08_flow


def test_fig08_flow_trace(bench_once):
    result = bench_once(fig08_flow.run)
    print("\n" + result.render())
    assert result.quota < 1.0          # step 2 engaged
    assert result.active_cores == 2    # step 3 offlined the idle cores
