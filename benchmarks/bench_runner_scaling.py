"""Runner scaling: the Figure 10 game matrix, serial vs ``jobs=N``.

Times the same ten-session batch (five games x two policies) executed
serially and over worker processes, and checks the parallel run is
bit-identical to the serial one.  The speedup is bounded by the host's
core count — on a single-core runner the two times match; the point of
record is the ratio, not an absolute.
"""

import os
import time

from repro.config import SimulationConfig
from repro.experiments.game_eval import run_games
from repro.runner import SessionRunner

JOBS = max(2, min(4, os.cpu_count() or 1))


def _timed(jobs, config):
    runner = SessionRunner(jobs=jobs)  # fresh memo, no disk cache: cold run
    start = time.perf_counter()
    rows = run_games(config, seeds=(1,), runner=runner)
    return time.perf_counter() - start, rows, runner.last_stats


def test_runner_scaling(bench_once):
    config = SimulationConfig(duration_seconds=15.0, seed=0, warmup_seconds=2.0)

    def scale():
        serial_s, serial_rows, stats = _timed(1, config)
        parallel_s, parallel_rows, _ = _timed(JOBS, config)
        return serial_s, parallel_s, serial_rows, parallel_rows, stats

    serial_s, parallel_s, serial_rows, parallel_rows, stats = bench_once(scale)
    print(
        f"\n{stats.sessions_executed} sessions, {stats.ticks_simulated} ticks: "
        f"serial {serial_s:.2f} s, jobs={JOBS} {parallel_s:.2f} s "
        f"(speedup x{serial_s / parallel_s:.2f} on {os.cpu_count()} cpus)"
    )
    assert stats.sessions_executed == 10
    assert parallel_rows == serial_rows  # placement never changes results
