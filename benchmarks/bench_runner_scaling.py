"""Runner scaling: the Figure 10 game matrix, serial vs ``jobs=N``.

Times the same ten-session batch (five games x two policies) executed
serially and over worker processes, and checks the parallel run is
bit-identical to the serial one.  The speedup is bounded by the host's
core count — on a single-core runner the two times match; the point of
record is the ratio, not an absolute.

Results land in ``BENCH_runner.json`` (override the location with
``RUNNER_BENCH_OUT``) so scaling regressions show up in review.
"""

import json
import os
import time
from pathlib import Path

from repro.config import SimulationConfig
from repro.experiments.game_eval import run_games
from repro.runner import SessionRunner

JOBS = max(2, min(4, os.cpu_count() or 1))
OUT_PATH = Path(os.environ.get("RUNNER_BENCH_OUT", "BENCH_runner.json"))


def _timed(jobs, config):
    runner = SessionRunner(jobs=jobs)  # fresh memo, no disk cache: cold run
    start = time.perf_counter()
    rows = run_games(config, seeds=(1,), runner=runner)
    return time.perf_counter() - start, rows, runner.last_stats


def run_scaling_benchmark():
    """Time the game matrix serially and at ``jobs=N``; return the report."""
    config = SimulationConfig(duration_seconds=15.0, seed=0, warmup_seconds=2.0)
    serial_s, serial_rows, stats = _timed(1, config)
    parallel_s, parallel_rows, _ = _timed(JOBS, config)
    return {
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "sessions": stats.sessions_executed,
        "ticks": stats.ticks_simulated,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "rows_identical": parallel_rows == serial_rows,
    }


def _check(report):
    assert report["sessions"] == 10
    assert report["rows_identical"]  # placement never changes results


def test_runner_scaling(bench_once):
    report = bench_once(run_scaling_benchmark)
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\n{report['sessions']} sessions, {report['ticks']} ticks: "
        f"serial {report['serial_s']:.2f} s, "
        f"jobs={report['jobs']} {report['parallel_s']:.2f} s "
        f"(speedup x{report['speedup']:.2f} on {report['cpus']} cpus)"
    )
    _check(report)


if __name__ == "__main__":
    result = run_scaling_benchmark()
    OUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
