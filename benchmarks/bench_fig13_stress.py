"""Figure 13: CPU load stress level per game.

Paper headline: the default policy's cores are busier on average
(~3.1 points) -- reproduced in the executed-work (fmax-normalised)
view; the raw busy-time view also shown (see EXPERIMENTS.md).
"""

from repro.experiments import fig13_stress


def test_fig13_stress_level(bench_once, evaluation_config):
    result = bench_once(fig13_stress.run, evaluation_config, seeds=(1, 2, 3))
    print("\n" + result.render())
    print(
        f"\nmean executed-work difference "
        f"{result.mean_work_difference_points:+.1f} points (paper ~+3.1)"
    )
    assert result.default_does_more_work()
