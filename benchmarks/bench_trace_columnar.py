"""Columnar trace spine vs the frozen record-per-tick recorder.

Replays the exact per-tick row stream of a 60-second MobiCore game
session through both recorder implementations — the frozen pre-refactor
:class:`~repro.kernel._legacy_tracing.LegacyTraceRecorder` and the
columnar :class:`~repro.kernel.tracing.TraceRecorder` — timing the
record loop plus the full summary-statistics pass for each.  The bench
fails unless

* every summary statistic is **bit-identical** across the two paths
  (the CSV exports too), and
* the columnar path is at least ``TRACE_BENCH_MIN_SPEEDUP`` times
  faster (default 3.0; CI's smoke job relaxes it to 2.0 for noisy
  shared runners).

Results land in ``BENCH_trace.json`` (override the location with
``TRACE_BENCH_OUT``) so CI can archive the measured ratio.
"""

import json
import os
import time
from pathlib import Path

from repro.config import SimulationConfig
from repro.kernel._legacy_tracing import LegacyTickRecord, LegacyTraceRecorder
from repro.kernel.engine import Session
from repro.kernel.tracing import TraceRecorder
from repro.scenario.builtins import mobicore_policy
from repro.soc.catalog import nexus5_spec
from repro.soc.platform import Platform
from repro.workloads.games import game_workload

GAME = "Asphalt 8"
REPEATS = 5
#: Replays of the 60 s row stream per timed pass: 3000 ticks in ~4 ms is
#: within scheduler-noise territory, 15000 in ~20 ms is not.
REPLAY_FACTOR = 5
MIN_SPEEDUP = float(os.environ.get("TRACE_BENCH_MIN_SPEEDUP", "3.0"))
OUT_PATH = Path(os.environ.get("TRACE_BENCH_OUT", "BENCH_trace.json"))


def _capture_rows(config):
    """One real 60 s game session -> its per-tick row stream."""
    session = Session(
        Platform.from_spec(nexus5_spec()),
        game_workload(GAME),
        mobicore_policy(),
        config,
    )
    result = session.run()
    trace = result.trace
    return list(trace.buffer.iter_rows()), trace.warmup_ticks


def _replicate(rows, factor):
    """Concatenate *factor* replays, renumbering ticks to stay ordered."""
    period = rows[-1][0] + 1
    out = []
    for k in range(factor):
        offset = k * period
        out.extend((row[0] + offset,) + row[1:] for row in rows)
    return out


def _summaries(recorder, tick_seconds):
    """Every summary statistic both recorder APIs expose."""
    return {
        "mean_power_mw": recorder.mean_power_mw(),
        "mean_cpu_power_mw": recorder.mean_cpu_power_mw(),
        "mean_online_cores": recorder.mean_online_cores(),
        "mean_frequency_khz": recorder.mean_frequency_khz(),
        "mean_global_util_percent": recorder.mean_global_util_percent(),
        "mean_scaled_load_percent": recorder.mean_scaled_load_percent(),
        "mean_quota": recorder.mean_quota(),
        "mean_fps": recorder.mean_fps(),
        "max_temperature_c": recorder.max_temperature_c(),
        "energy_mj": recorder.energy_mj(tick_seconds),
    }


def _legacy_pass(rows, warmup_ticks, tick_seconds):
    start = time.perf_counter()
    recorder = LegacyTraceRecorder(warmup_ticks=warmup_ticks)
    append = recorder.append
    for row in rows:
        append(LegacyTickRecord(*row))
    summary = _summaries(recorder, tick_seconds)
    return time.perf_counter() - start, summary, recorder


def _columnar_pass(rows, warmup_ticks, tick_seconds):
    start = time.perf_counter()
    recorder = TraceRecorder(warmup_ticks=warmup_ticks, expected_ticks=len(rows))
    record = recorder.record_tick
    for row in rows:
        record(*row)
    summary = _summaries(recorder, tick_seconds)
    return time.perf_counter() - start, summary, recorder


def run_trace_benchmark(config=None):
    """Time both recorder paths on identical inputs; return the report."""
    config = config or SimulationConfig(
        duration_seconds=60.0, seed=0, warmup_seconds=4.0
    )
    rows, warmup_ticks = _capture_rows(config)
    rows = _replicate(rows, REPLAY_FACTOR)

    legacy_s = columnar_s = float("inf")
    for _ in range(REPEATS):
        elapsed, legacy_summary, legacy_recorder = _legacy_pass(
            rows, warmup_ticks, config.tick_seconds
        )
        legacy_s = min(legacy_s, elapsed)
        elapsed, columnar_summary, columnar_recorder = _columnar_pass(
            rows, warmup_ticks, config.tick_seconds
        )
        columnar_s = min(columnar_s, elapsed)

    summaries_identical = legacy_summary == columnar_summary
    csv_identical = legacy_recorder.to_csv() == columnar_recorder.to_csv()
    return {
        "game": GAME,
        "ticks": len(rows),
        "legacy_s": legacy_s,
        "columnar_s": columnar_s,
        "speedup": legacy_s / columnar_s,
        "min_speedup": MIN_SPEEDUP,
        "summaries_identical": summaries_identical,
        "csv_identical": csv_identical,
        "summary": columnar_summary,
    }


def _check(report):
    assert report["summaries_identical"], "summary statistics diverged"
    assert report["csv_identical"], "CSV exports diverged"
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"columnar speedup x{report['speedup']:.2f} "
        f"below the x{MIN_SPEEDUP:.1f} floor"
    )


def test_trace_columnar(bench_once):
    report = bench_once(run_trace_benchmark)
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\n{report['ticks']} ticks: legacy {report['legacy_s'] * 1e3:.1f} ms, "
        f"columnar {report['columnar_s'] * 1e3:.1f} ms "
        f"(speedup x{report['speedup']:.2f}, floor x{MIN_SPEEDUP:.1f})"
    )
    _check(report)


if __name__ == "__main__":
    result = run_trace_benchmark()
    OUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
