#!/usr/bin/env python
"""Docstring-coverage gate for the infrastructure packages.

Walks Python files with :mod:`ast` (no imports, no third-party tools)
and counts docstrings on every *public* definition: the module itself,
classes, functions, and methods whose names do not start with an
underscore (dunders other than ``__init__`` are exempt; so are
``TYPE_CHECKING``-style stubs with a body of ``...``).

Usage::

    python tools/docstring_coverage.py src/repro/faults src/repro/runner
    python tools/docstring_coverage.py --min 95 src/repro

Exits non-zero when coverage over all named paths is below ``--min``
(default 100), listing every undocumented definition so the failure is
actionable. CI runs this over ``repro/faults``, ``repro/runner``,
``repro/scenario``, the trace spine, the ops plane, and the batch
engine (``repro/kernel/batch_engine.py``).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

DEFINITIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def is_public(name: str) -> bool:
    """Public = no leading underscore; ``__init__`` counts as private.

    ``__init__`` docstrings are conventionally folded into the class
    docstring (which *is* required), so requiring both would demand
    duplication.
    """
    return not name.startswith("_")


def is_stub(node: ast.AST) -> bool:
    """True for ellipsis-only bodies (protocol/overload stubs)."""
    body = getattr(node, "body", [])
    if len(body) != 1 or not isinstance(body[0], ast.Expr):
        return False
    value = body[0].value
    return isinstance(value, ast.Constant) and value.value is Ellipsis


def walk_definitions(
    tree: ast.Module, qualifier: str
) -> Iterator[Tuple[str, int, bool]]:
    """Yield ``(qualified name, line, documented)`` for public definitions."""
    yield qualifier, 1, ast.get_docstring(tree) is not None
    stack: List[Tuple[ast.AST, str]] = [(tree, qualifier)]
    while stack:
        node, prefix = stack.pop()
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, DEFINITIONS):
                # Descend through if/try blocks but not into function
                # bodies: nested helpers are implementation detail.
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    stack.append((child, prefix))
                continue
            name = f"{prefix}.{child.name}"
            if is_public(child.name) and not is_stub(child):
                yield name, child.lineno, ast.get_docstring(child) is not None
            if isinstance(child, ast.ClassDef):
                stack.append((child, name))


def python_files(paths: List[str]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted for stable output."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def main(argv: List[str] = None) -> int:
    """Run the gate; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="files or directories to scan")
    parser.add_argument(
        "--min", type=float, default=100.0,
        help="minimum coverage percent to pass (default: 100)",
    )
    options = parser.parse_args(argv)

    documented = 0
    missing: List[Tuple[str, int]] = []
    for path in python_files(options.paths):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for name, line, has_doc in walk_definitions(tree, str(path)):
            if has_doc:
                documented += 1
            else:
                missing.append((name, line))

    total = documented + len(missing)
    if not total:
        print("docstring coverage: no definitions found", file=sys.stderr)
        return 2
    coverage = 100.0 * documented / total
    print(f"docstring coverage: {documented}/{total} ({coverage:.1f}%)")
    for name, line in missing:
        print(f"  MISSING {name}:{line}")
    return 0 if coverage >= options.min else 1


if __name__ == "__main__":
    sys.exit(main())
