#!/usr/bin/env python
"""Bring your own device: define a custom platform and run MobiCore on it.

Builds an octa-core "2016 flagship" spec from scratch -- OPP table,
power-model anchors, thermal node, uncore -- and compares MobiCore
against the Android default on it.  This is the template for porting the
library to a device the catalog does not ship.

Run:  python examples/custom_platform.py
"""

from repro import (
    AndroidDefaultPolicy,
    MobiCorePolicy,
    Platform,
    SimulationConfig,
    Simulator,
    game_workload,
    summarize,
)
from repro.soc import (
    GpuSpec,
    MemorySpec,
    OppTable,
    PlatformSpec,
    PowerParams,
    RailTopology,
    ThermalParams,
)
from repro.units import mhz


def octa_core_spec() -> PlatformSpec:
    """A hypothetical 2016 octa-core with per-core rails."""
    table = OppTable.linear(
        [mhz(f) for f in (307.2, 480, 652.8, 864, 1036.8, 1248, 1478.4, 1689.6, 1900.8)],
        min_voltage=0.85,
        max_voltage=1.15,
    )
    return PlatformSpec(
        name="Octa 2016",
        soc="Hypothetical 8x A72-class",
        release_year=2016,
        num_cores=8,
        opp_table=table,
        power_params=PowerParams.from_static_anchors(
            ceff_mw_per_ghz_v2=95.0,
            static_at_vmin_mw=28.0,
            static_at_vmax_mw=85.0,
            vmin=0.85,
            vmax=1.15,
            cluster_overhead_base_mw=50.0,
            cluster_overhead_span_mw=50.0,
            cache_base_mw=25.0,
            cache_span_mw=45.0,
            platform_base_mw=300.0,
        ),
        gpu=GpuSpec("Hypothetical GPU", mhz(600), 50.0, 800.0),
        memory=MemorySpec(mhz(300), mhz(1333), 35.0, 260.0, 8.0e9),
        rail_topology=RailTopology.PER_CORE,
        thermal=ThermalParams(ambient_c=24.0, resistance_c_per_w=7.0, time_constant_s=14.0),
        os_name="Android 7.0",
        l2_cache_kb=4096,
    )


def main() -> None:
    spec = octa_core_spec()
    config = SimulationConfig(duration_seconds=60.0, seed=11, warmup_seconds=4.0)

    def session(policy_factory):
        platform = Platform.from_spec(spec)
        policy = policy_factory(platform)
        return summarize(
            Simulator(platform, game_workload("Asphalt 8"), policy, config).run()
        )

    print(f"Platform: {spec.name} ({spec.num_cores} cores, {len(spec.opp_table)} OPPs)")
    baseline = session(lambda p: AndroidDefaultPolicy(num_cores=spec.num_cores))
    mobicore = session(MobiCorePolicy.for_platform)

    print(f"\nandroid : {baseline.mean_power_mw:7.0f} mW  "
          f"cores {baseline.mean_online_cores:.2f}  fps {baseline.mean_fps:.1f}")
    print(f"mobicore: {mobicore.mean_power_mw:7.0f} mW  "
          f"cores {mobicore.mean_online_cores:.2f}  fps {mobicore.mean_fps:.1f}")
    print(f"\npower saving on the custom device: "
          f"{mobicore.power_saving_percent(baseline):+.1f}%")
    print("\nNote: MobiCore's energy model was built from this spec's own")
    print("power parameters -- no retuning required (MobiCorePolicy.for_platform).")


if __name__ == "__main__":
    main()
