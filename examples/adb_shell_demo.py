#!/usr/bin/env python
"""Drive the simulated Nexus 5 the way the paper drove the real one.

Section 5.3 deploys MobiCore "by command line through adb shell" after
disabling the mpdecision service (section 2.2.2).  This demo replays
that operator session against the simulator's sysfs control plane:
inspect the knobs, watch mpdecision veto an offline request, disable it,
offline cores, set a userspace speed, and shrink the CFS quota.

Run:  python examples/adb_shell_demo.py
"""

from repro import Platform, SimulationConfig, Simulator, StaticPolicy, nexus5_spec
from repro.kernel.android_shell import build_sysfs
from repro.workloads import ConstantWorkload


def shell(tree, command: str) -> None:
    """Pretty-print one cat/echo interaction."""
    parts = command.split()
    if parts[0] == "cat":
        print(f"$ {command}\n{tree.read(parts[1])}")
    elif parts[0] == "echo":
        value, _, path = command[5:].partition(" > ")
        tree.write(path.strip(), value.strip())
        print(f"$ {command}")
    print()


def main() -> None:
    platform = Platform.from_spec(nexus5_spec())
    simulator = Simulator(
        platform,
        ConstantWorkload(20.0),
        StaticPolicy(4, 960_000),
        SimulationConfig(duration_seconds=2.0),
        pin_uncore_max=False,
    )
    simulator.hotplug.set_mpdecision(True)  # a stock device boots with it on
    tree = build_sysfs(simulator)

    print("# The knob tree a rooted device exposes:")
    for path in tree.list("sys/devices/system/cpu/cpu0"):
        print(f"  {path}")
    print()

    print("# mpdecision protects the phone from turning off cores (sec. 2.2.2):")
    shell(tree, "echo 0 > /sys/devices/system/cpu/cpu3/online")
    shell(tree, "cat /sys/devices/system/cpu/cpu3/online")

    print("# ... so the paper disables it first, then offlines:")
    shell(tree, "echo 0 > /sys/module/mpdecision/enabled")
    shell(tree, "echo 0 > /sys/devices/system/cpu/cpu3/online")
    shell(tree, "echo 0 > /sys/devices/system/cpu/cpu2/online")
    shell(tree, "cat /sys/devices/system/cpu/cpu2/online")

    print("# MobiCore deploys at the userspace governor's setspeed hook:")
    shell(tree, "echo 1190400 > /sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
    shell(tree, "cat /sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq")

    print("# ... and shrinks the global CPU bandwidth via the CFS quota:")
    shell(tree, "cat /sys/fs/cgroup/cpu/cpu.cfs_quota_us")
    shell(tree, "echo 90000 > /sys/fs/cgroup/cpu/cpu.cfs_quota_us")
    shell(tree, "cat /sys/fs/cgroup/cpu/cpu.cfs_quota_us")

    print("# Final hardware state:")
    print(f"  online mask: {platform.cluster.online_mask}")
    print(f"  cpu0 frequency: {platform.cluster.core(0).frequency_khz} kHz")
    print(f"  quota: {simulator.bandwidth.quota:.2f}")


if __name__ == "__main__":
    main()
