#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Walks the experiment registry in paper order and prints each driver's
rendered output.  This is the long-form companion to the benchmark
suite; expect a few minutes of simulation.

Run:  python examples/reproduce_paper.py [experiment-id ...]
e.g.  python examples/reproduce_paper.py fig9a fig10
"""

import sys
import time

from repro.experiments import get_experiment, list_experiments


def main() -> None:
    wanted = sys.argv[1:] if len(sys.argv) > 1 else list_experiments()
    for experiment_id in wanted:
        experiment = get_experiment(experiment_id)
        print("=" * 72)
        print(f"{experiment_id}: {experiment.description}")
        print("=" * 72)
        started = time.perf_counter()
        result = experiment.run()
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{experiment_id} regenerated in {elapsed:.1f} s]\n")


if __name__ == "__main__":
    main()
