#!/usr/bin/env python
"""Calibrate a power model from measurements, then deploy MobiCore on it.

The paper fits its analytic model on the deployment device (sections
4.1-4.2).  This example replays that workflow end to end:

1. run the section-3.3.1 characterisation sweep on a device (here the
   simulated Nexus 5 stands in for the phone + Monsoon rig);
2. fit Eq. (1)/(2) parameters from the samples by least squares;
3. build a MobiCore from the *fitted* parameters and verify it performs
   like one built from the ground-truth calibration.

Run:  python examples/calibrate_device.py
"""

from repro import (
    AndroidDefaultPolicy,
    MobiCorePolicy,
    Platform,
    SimulationConfig,
    Simulator,
    nexus5_spec,
    summarize,
)
from repro.analysis.fitting import collect_samples, fit_power_params
from repro.workloads import BusyLoopApp


def main() -> None:
    spec = nexus5_spec()

    print("Step 1: characterisation sweep (1 core, five OPPs x four loads) ...")
    samples = collect_samples(
        spec, config=SimulationConfig(duration_seconds=5.0, warmup_seconds=1.0)
    )
    print(f"  collected {len(samples)} (frequency, load, power) samples")

    print("\nStep 2: least-squares fit of the Eq. (1)/(2) model ...")
    fit = fit_power_params(samples)
    truth = spec.power_params
    print(f"  {'':22s}{'fitted':>10s}{'truth':>10s}")
    print(
        f"  {'Ceff (mW/GHz/V^2)':22s}{fit.params.ceff_mw_per_ghz_v2:10.1f}"
        f"{truth.ceff_mw_per_ghz_v2:10.1f}"
    )
    print(
        f"  {'static @ 0.9 V (mW)':22s}{fit.static_power_mw(0.9):10.1f}{47.0:10.1f}"
    )
    print(
        f"  {'static @ 1.2 V (mW)':22s}{fit.static_power_mw(1.2):10.1f}{120.0:10.1f}"
    )
    print(f"  fit RMSE: {fit.rmse_mw:.1f} mW over {fit.samples_used} samples")

    print("\nStep 3: deploy MobiCore with the fitted model ...")
    config = SimulationConfig(duration_seconds=30.0, seed=5, warmup_seconds=2.0)

    def session(policy_factory):
        platform = Platform.from_spec(spec)
        return summarize(
            Simulator(
                platform, BusyLoopApp(30.0), policy_factory(platform), config,
                pin_uncore_max=False,
            ).run()
        )

    baseline = session(lambda p: AndroidDefaultPolicy())
    fitted = session(
        lambda p: MobiCorePolicy(
            power_params=fit.params, opp_table=spec.opp_table, num_cores=spec.num_cores
        )
    )
    exact = session(MobiCorePolicy.for_platform)

    print(f"  android default      : {baseline.mean_power_mw:7.0f} mW")
    print(f"  mobicore (fitted)    : {fitted.mean_power_mw:7.0f} mW "
          f"({fitted.power_saving_percent(baseline):+.1f}%)")
    print(f"  mobicore (truth)     : {exact.mean_power_mw:7.0f} mW "
          f"({exact.power_saving_percent(baseline):+.1f}%)")
    print("\nThe fitted model matches the ground-truth deployment — the")
    print("calibration loop the paper ran on hardware, fully reproducible here.")


if __name__ == "__main__":
    main()
