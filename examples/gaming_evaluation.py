#!/usr/bin/env python
"""The full section 6 gaming evaluation: all five games, both policies.

Regenerates the content of Figures 10-13 in one run and writes each
session's per-tick trace to CSV (the "kernel app log file" of
section 3.1) for inspection.

Run:  python examples/gaming_evaluation.py [output-dir]
"""

import pathlib
import sys

from repro import (
    AndroidDefaultPolicy,
    MobiCorePolicy,
    Platform,
    SimulationConfig,
    Simulator,
    game_workload,
    nexus5_spec,
    summarize,
)
from repro.analysis.report import render_table

GAMES = ("Real Racing 3", "Subway Surf", "Badland", "Angry Birds", "Asphalt 8")


def run_session(game: str, policy_name: str, config, out_dir: pathlib.Path):
    platform = Platform.from_spec(nexus5_spec())
    policy = (
        AndroidDefaultPolicy()
        if policy_name == "android"
        else MobiCorePolicy.for_platform(platform)
    )
    result = Simulator(platform, game_workload(game), policy, config).run()
    slug = game.lower().replace(" ", "-")
    trace_path = out_dir / f"{slug}-{policy_name}.csv"
    trace_path.write_text(result.trace.to_csv())
    return summarize(result)


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path("game_traces")
    out_dir.mkdir(parents=True, exist_ok=True)
    config = SimulationConfig(duration_seconds=120.0, seed=1, warmup_seconds=4.0)

    print("Running five games x two policies x 2-minute sessions ...")
    rows = []
    savings = []
    for game in GAMES:
        android = run_session(game, "android", config, out_dir)
        mobicore = run_session(game, "mobicore", config, out_dir)
        saving = mobicore.power_saving_percent(android)
        savings.append(saving)
        rows.append(
            (
                game,
                f"{android.mean_power_mw:.0f}",
                f"{mobicore.mean_power_mw:.0f}",
                f"{saving:+.1f}%",
                f"{android.mean_fps:.1f}",
                f"{mobicore.mean_fps:.1f}",
                f"{android.mean_online_cores:.2f}",
                f"{mobicore.mean_online_cores:.2f}",
            )
        )

    print()
    print(
        render_table(
            (
                "game",
                "P and",
                "P mob",
                "saving",
                "fps and",
                "fps mob",
                "cores and",
                "cores mob",
            ),
            rows,
        )
    )
    print(f"\nmean power saving: {sum(savings) / len(savings):+.1f}% (paper: 5.3%)")
    print(f"per-tick traces written to {out_dir}/ (and = Android default, mob = MobiCore)")


if __name__ == "__main__":
    main()
