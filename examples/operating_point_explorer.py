#!/usr/bin/env python
"""Explore operating points: the section 4.2 optimal-combination curve.

For a sweep of global loads, prints every admissible (cores, frequency)
combination's predicted power and marks the model's choice -- the curve
that "looks like the scar on Harry Potter's face" -- then validates one
load level against a measured simulation sweep.

Run:  python examples/operating_point_explorer.py
"""

from repro import OperatingPointOptimizer, EnergyModel, SimulationConfig, nexus5_spec
from repro.analysis.report import render_series
from repro.experiments import fig05_operating_points


def main() -> None:
    spec = nexus5_spec()
    model = EnergyModel(spec.power_params, spec.opp_table)
    optimizer = OperatingPointOptimizer(model, spec.num_cores)

    loads = list(range(5, 101, 5))
    curve = optimizer.optimal_curve([float(load) for load in loads])

    print("The model's optimal operating point per global load:\n")
    print(f"{'load %':>7s}  {'cores':>5s}  {'frequency':>10s}  {'busy':>5s}  {'pred. mW':>9s}")
    for load, point in zip(loads, curve):
        print(
            f"{load:7d}  {point.online_count:5d}  "
            f"{point.frequency_khz / 1000:7.0f} MHz  "
            f"{point.busy_fraction:5.2f}  {point.predicted_power_mw:9.1f}"
        )

    print()
    print(
        render_series(
            "The 'scar' curve",
            "global load %",
            "optimal core count",
            loads,
            [float(p.online_count) for p in curve],
            bar_width=8,
        )
    )

    print("\nValidating against measured sweeps (Figure 5 driver) ...")
    result = fig05_operating_points.run(
        SimulationConfig(duration_seconds=8.0, seed=0, warmup_seconds=1.0)
    )
    for load in result.loads:
        best = result.measured_best(load)
        chosen = result.model_best[load]
        print(
            f"  load {load:4.0f}%: measured best {best.online_count}c@"
            f"{best.frequency_khz / 1000:.0f}MHz ({best.mean_power_mw:.0f} mW), "
            f"model picks {chosen.online_count}c@{chosen.frequency_khz / 1000:.0f}MHz"
        )
    print(
        "\nmodel-vs-measurement agreement within 10%:",
        result.model_matches_measurement(),
    )


if __name__ == "__main__":
    main()
