#!/usr/bin/env python
"""Quickstart: MobiCore vs the Android default on one gaming session.

Runs the paper's headline experiment in miniature: a Subway Surf session
on the calibrated Nexus 5 under both policies, same demand seed, and
prints power, FPS, and hardware-usage deltas (the Figure 10-12
quantities).

Run:  python examples/quickstart.py
"""

from repro import (
    AndroidDefaultPolicy,
    MobiCorePolicy,
    Platform,
    SimulationConfig,
    Simulator,
    game_workload,
    nexus5_spec,
    summarize,
)


def run_session(policy_factory, config):
    platform = Platform.from_spec(nexus5_spec())
    policy = policy_factory(platform)
    simulator = Simulator(
        platform, game_workload("Subway Surf"), policy, config
    )
    return summarize(simulator.run())


def main() -> None:
    config = SimulationConfig(duration_seconds=120.0, seed=7, warmup_seconds=4.0)

    print("Simulating a 2-minute Subway Surf session on the Nexus 5 ...")
    baseline = run_session(lambda p: AndroidDefaultPolicy(), config)
    mobicore = run_session(MobiCorePolicy.for_platform, config)

    saving = mobicore.power_saving_percent(baseline)
    print(f"\n{'':16s}{'android':>10s}{'mobicore':>10s}")
    print(f"{'power (mW)':16s}{baseline.mean_power_mw:10.0f}{mobicore.mean_power_mw:10.0f}")
    print(f"{'FPS':16s}{baseline.mean_fps:10.1f}{mobicore.mean_fps:10.1f}")
    print(f"{'active cores':16s}{baseline.mean_online_cores:10.2f}{mobicore.mean_online_cores:10.2f}")
    print(
        f"{'frequency (MHz)':16s}{baseline.mean_frequency_khz / 1000:10.0f}"
        f"{mobicore.mean_frequency_khz / 1000:10.0f}"
    )
    print(f"{'quota':16s}{baseline.mean_quota:10.2f}{mobicore.mean_quota:10.2f}")
    print(f"\nMobiCore power saving: {saving:+.1f}%")
    print(f"FPS ratio: {mobicore.fps_ratio(baseline):.2f} (paper band: ~0.78)")


if __name__ == "__main__":
    main()
