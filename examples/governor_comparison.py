#!/usr/bin/env python
"""Compare the six stock Linux governors and MobiCore on one workload.

Reproduces the section 2.2.1 taxonomy in numbers: each governor's power,
delivered work, and frequency behaviour on a moderately dynamic load --
plus MobiCore for reference.

Run:  python examples/governor_comparison.py [load-percent]
"""

import sys

from repro import (
    AndroidDefaultPolicy,
    MobiCorePolicy,
    Platform,
    SimulationConfig,
    Simulator,
    nexus5_spec,
    summarize,
)
from repro.analysis.report import render_table
from repro.governors import GOVERNOR_REGISTRY
from repro.workloads import SineWorkload


def main() -> None:
    mean_load = float(sys.argv[1]) if len(sys.argv) > 1 else 35.0
    config = SimulationConfig(duration_seconds=60.0, seed=3, warmup_seconds=4.0)
    spec = nexus5_spec()

    def session(policy):
        platform = Platform.from_spec(spec)
        workload = SineWorkload(mean_load, 15.0, period_seconds=8.0)
        return summarize(
            Simulator(platform, workload, policy, config, pin_uncore_max=False).run()
        )

    rows = []
    for name in GOVERNOR_REGISTRY:
        if name == "userspace":
            continue  # needs an external speed writer; MobiCore plays that role
        summary = session(AndroidDefaultPolicy(governor_name=name))
        rows.append((name, summary))
    platform = Platform.from_spec(spec)
    rows.append(("mobicore", session(MobiCorePolicy.for_platform(platform))))

    rows.sort(key=lambda item: item[1].mean_power_mw)
    print(f"Sine workload around {mean_load:.0f}% global load, 60 s sessions\n")
    print(
        render_table(
            ("policy", "power mW", "energy J", "cores", "freq MHz", "work %"),
            [
                (
                    name,
                    f"{s.mean_power_mw:.0f}",
                    f"{s.energy_mj / 1000:.1f}",
                    f"{s.mean_online_cores:.2f}",
                    f"{s.mean_frequency_khz / 1000:.0f}",
                    f"{s.mean_scaled_load_percent:.1f}",
                )
                for name, s in rows
            ],
        )
    )
    print(
        "\n'work %' is executed work relative to platform max -- policies"
        "\ndelivering similar work at lower power are winning the trade."
    )


if __name__ == "__main__":
    main()
