"""Setup shim so environments without the `wheel` package can still do
`pip install -e .` (falls back to `python setup.py develop`).  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
