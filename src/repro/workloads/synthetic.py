"""Synthetic utilization patterns: controlled demand shapes for tests.

All patterns express demand as a *global load percentage* (fraction of
platform-max throughput, as in section 3.4) evaluated per tick, spread
over one thread per core.  They are the unit-test vehicles for governor
dynamics and MobiCore's burst/slow-mode detector.
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

from .base import Workload, WorkloadContext
from ..errors import WorkloadError
from ..kernel.task import Task, TaskDemand
from ..units import clamp, require_percent

__all__ = [
    "SyntheticUtilizationWorkload",
    "ConstantWorkload",
    "StepWorkload",
    "RampWorkload",
    "SineWorkload",
    "BurstWorkload",
]


class SyntheticUtilizationWorkload(Workload):
    """Base class: subclasses define the load level at each tick."""

    def __init__(self, num_threads: int = 0) -> None:
        super().__init__()
        self.num_threads = num_threads
        self._tasks: List[Task] = []

    def prepare(self, context: WorkloadContext) -> None:
        super().prepare(context)
        threads = self.num_threads if self.num_threads > 0 else context.num_cores
        self._tasks = [
            Task(task_id=i, name=f"{self.name}-{i}", parallel=False)
            for i in range(threads)
        ]

    def tasks(self) -> List[Task]:
        return list(self._tasks)

    @abc.abstractmethod
    def level_percent(self, tick: int) -> float:
        """Global load percentage demanded at *tick*."""

    def demand(self, tick: int) -> List[TaskDemand]:
        level = clamp(self.level_percent(tick), 0.0, 100.0)
        if level == 0.0:
            return []
        per_thread = (
            (level / 100.0)
            * self.context.platform_max_cycles_per_tick
            / len(self._tasks)
        )
        return [TaskDemand(task=task, cycles=per_thread) for task in self._tasks]


class ConstantWorkload(SyntheticUtilizationWorkload):
    """A flat global load."""

    def __init__(self, level_percent: float, num_threads: int = 0) -> None:
        super().__init__(num_threads)
        require_percent(level_percent, "level_percent")
        self._level = level_percent
        self.name = f"constant({level_percent:.0f}%)"

    def level_percent(self, tick: int) -> float:
        return self._level


class StepWorkload(SyntheticUtilizationWorkload):
    """Piecewise-constant levels: [(duration_seconds, percent), ...], looping."""

    def __init__(self, steps: Sequence[Tuple[float, float]], num_threads: int = 0) -> None:
        super().__init__(num_threads)
        if not steps:
            raise WorkloadError("StepWorkload needs at least one step")
        for duration, percent in steps:
            if duration <= 0:
                raise WorkloadError(f"step duration must be positive, got {duration}")
            require_percent(percent, "step percent")
        self.steps = list(steps)
        self._period = sum(duration for duration, _ in steps)
        self.name = f"step({len(steps)} levels)"

    def level_percent(self, tick: int) -> float:
        time_in_period = (tick * self.context.dt_seconds) % self._period
        elapsed = 0.0
        for duration, percent in self.steps:
            elapsed += duration
            if time_in_period < elapsed:
                return percent
        return self.steps[-1][1]


class RampWorkload(SyntheticUtilizationWorkload):
    """Linear ramp from *start* to *end* percent over *ramp_seconds*, then hold."""

    def __init__(
        self, start_percent: float, end_percent: float, ramp_seconds: float,
        num_threads: int = 0,
    ) -> None:
        super().__init__(num_threads)
        require_percent(start_percent, "start_percent")
        require_percent(end_percent, "end_percent")
        if ramp_seconds <= 0:
            raise WorkloadError("ramp_seconds must be positive")
        self.start_percent = start_percent
        self.end_percent = end_percent
        self.ramp_seconds = ramp_seconds
        self.name = f"ramp({start_percent:.0f}->{end_percent:.0f}%)"

    def level_percent(self, tick: int) -> float:
        progress = min(tick * self.context.dt_seconds / self.ramp_seconds, 1.0)
        return self.start_percent + (self.end_percent - self.start_percent) * progress


class SineWorkload(SyntheticUtilizationWorkload):
    """Sinusoidal load around a mean: smooth periodic dynamics."""

    def __init__(
        self, mean_percent: float, amplitude_percent: float, period_seconds: float,
        num_threads: int = 0,
    ) -> None:
        super().__init__(num_threads)
        require_percent(mean_percent, "mean_percent")
        if amplitude_percent < 0:
            raise WorkloadError("amplitude_percent must be non-negative")
        if period_seconds <= 0:
            raise WorkloadError("period_seconds must be positive")
        self.mean_percent = mean_percent
        self.amplitude_percent = amplitude_percent
        self.period_seconds = period_seconds
        self.name = f"sine({mean_percent:.0f}+-{amplitude_percent:.0f}%)"

    def level_percent(self, tick: int) -> float:
        phase = 2.0 * math.pi * tick * self.context.dt_seconds / self.period_seconds
        return self.mean_percent + self.amplitude_percent * math.sin(phase)


class BurstWorkload(SyntheticUtilizationWorkload):
    """A base load with random rectangular bursts (Markov on/off).

    Each tick, an inactive burst starts with probability
    ``burst_start_prob`` and then lasts a geometric number of ticks with
    mean ``mean_burst_ticks``.  This is the "sudden change in workload"
    dynamic the paper says prior schemes react too slowly to
    (section 1.3).
    """

    def __init__(
        self,
        base_percent: float,
        burst_percent: float,
        burst_start_prob: float = 0.05,
        mean_burst_ticks: int = 10,
        num_threads: int = 0,
    ) -> None:
        super().__init__(num_threads)
        require_percent(base_percent, "base_percent")
        require_percent(burst_percent, "burst_percent")
        if not 0.0 <= burst_start_prob <= 1.0:
            raise WorkloadError("burst_start_prob must be in [0, 1]")
        if mean_burst_ticks < 1:
            raise WorkloadError("mean_burst_ticks must be >= 1")
        self.base_percent = base_percent
        self.burst_percent = burst_percent
        self.burst_start_prob = burst_start_prob
        self.mean_burst_ticks = mean_burst_ticks
        self.name = f"burst({base_percent:.0f}|{burst_percent:.0f}%)"
        self._in_burst = False

    def prepare(self, context: WorkloadContext) -> None:
        super().prepare(context)
        self._in_burst = False

    def level_percent(self, tick: int) -> float:
        if self._in_burst:
            if self.rng.random() < 1.0 / self.mean_burst_ticks:
                self._in_burst = False
        elif self.rng.random() < self.burst_start_prob:
            self._in_burst = True
        return self.burst_percent if self._in_burst else self.base_percent
