"""The workload interface: demand generators the simulator drives.

A :class:`Workload` owns a set of :class:`~repro.kernel.task.Task`
objects and, each tick, emits the cycles each task wants to run.  After
the scheduler executes the tick, the simulator reports back what actually
ran via :meth:`Workload.record_execution`, which is how frame pipelines
measure FPS and benchmarks measure completion.

All randomness flows from the :class:`WorkloadContext` seed, so sessions
replay exactly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import WorkloadError
from ..kernel.task import Task, TaskDemand
from ..soc.opp import OppTable
from ..units import require_positive

__all__ = ["WorkloadContext", "Workload"]


@dataclass(frozen=True)
class WorkloadContext:
    """Everything a workload may know about the session it runs in.

    Attributes:
        num_cores: Platform core count.
        opp_table: Platform DVFS table (for capacity-relative demand).
        dt_seconds: Tick duration.
        seed: Session seed; the workload derives its RNG from it.
    """

    num_cores: int
    opp_table: OppTable
    dt_seconds: float
    seed: int

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise WorkloadError(f"num_cores must be positive, got {self.num_cores}")
        require_positive(self.dt_seconds, "dt_seconds")

    @property
    def core_max_cycles_per_tick(self) -> float:
        """Cycles one core executes per tick at fmax."""
        return self.opp_table.max_frequency_khz * 1000.0 * self.dt_seconds

    @property
    def platform_max_cycles_per_tick(self) -> float:
        """Cycles the whole platform executes per tick with all cores at fmax.

        The denominator of the paper's "global CPU load" (section 3.4):
        100% global load needs all cores active at their highest
        frequency.
        """
        return self.core_max_cycles_per_tick * self.num_cores

    def rng(self) -> np.random.Generator:
        """A fresh deterministic generator for this context's seed."""
        return np.random.default_rng(self.seed)


class Workload(abc.ABC):
    """A demand generator driving one simulation session."""

    #: Human-readable name used in reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self._context: Optional[WorkloadContext] = None
        self._rng: Optional[np.random.Generator] = None

    @property
    def context(self) -> WorkloadContext:
        """The bound session context; raises before :meth:`prepare`."""
        if self._context is None:
            raise WorkloadError(f"workload {self.name!r} is not prepared yet")
        return self._context

    @property
    def rng(self) -> np.random.Generator:
        """The session RNG; raises before :meth:`prepare`."""
        if self._rng is None:
            raise WorkloadError(f"workload {self.name!r} is not prepared yet")
        return self._rng

    def prepare(self, context: WorkloadContext) -> None:
        """Bind to a session.  Subclasses extend this to build their tasks."""
        self._context = context
        self._rng = context.rng()

    @abc.abstractmethod
    def tasks(self) -> List[Task]:
        """All tasks this workload may ever schedule."""

    @abc.abstractmethod
    def demand(self, tick: int) -> List[TaskDemand]:
        """Cycles each task wants during *tick* (omit idle tasks)."""

    def record_execution(self, tick: int, executed_by_task: Mapping[int, float]) -> None:
        """Learn what actually ran this tick (default: ignore)."""

    def tick_fps(self) -> Optional[float]:
        """FPS delivered over the last tick, if this workload renders frames."""
        return None

    def metrics(self) -> Dict[str, float]:
        """Workload-specific end-of-session metrics (scores, FPS stats)."""
        return {}
