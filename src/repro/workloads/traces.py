"""Demand-trace record and replay.

A :class:`DemandTrace` is a per-tick table of task demands -- the
trace-driven side of "trace-driven simulation".  Record one from any
workload with :meth:`DemandTrace.capture`, serialise it to CSV text, and
replay it byte-identically with :class:`TraceWorkload`, e.g. to compare
two policies on *exactly* the same demand sequence (stochastic workloads
already replay per-seed; traces make the sequence portable and
inspectable).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, List

from .base import Workload, WorkloadContext
from ..errors import TraceError
from ..kernel.task import Task, TaskDemand

__all__ = ["DemandTrace", "TraceWorkload"]


@dataclass(frozen=True)
class _TraceTask:
    """Task identity as stored in a trace."""

    task_id: int
    name: str
    parallel: bool


class DemandTrace:
    """An immutable recording of per-tick task demands."""

    def __init__(
        self,
        tasks: List[_TraceTask],
        ticks: List[Dict[int, float]],
        source_name: str = "trace",
    ) -> None:
        self._tasks = list(tasks)
        self._ticks = [dict(t) for t in ticks]
        self.source_name = source_name
        known = {t.task_id for t in tasks}
        for index, tick in enumerate(self._ticks):
            unknown = set(tick) - known
            if unknown:
                raise TraceError(f"tick {index} references unknown tasks {sorted(unknown)}")

    def __len__(self) -> int:
        return len(self._ticks)

    @property
    def tasks(self) -> List[_TraceTask]:
        """Task identities in the trace."""
        return list(self._tasks)

    def demand_at(self, tick: int) -> Dict[int, float]:
        """task_id -> cycles at *tick* (ticks past the end are empty)."""
        if tick < 0:
            raise TraceError(f"tick must be non-negative, got {tick}")
        if tick >= len(self._ticks):
            return {}
        return dict(self._ticks[tick])

    @classmethod
    def capture(cls, workload: Workload, context: WorkloadContext, ticks: int) -> "DemandTrace":
        """Run *workload*'s demand generator for *ticks* and record it."""
        if ticks < 1:
            raise TraceError(f"ticks must be positive, got {ticks}")
        workload.prepare(context)
        tasks = [
            _TraceTask(task_id=t.task_id, name=t.name, parallel=t.parallel)
            for t in workload.tasks()
        ]
        rows: List[Dict[int, float]] = []
        for tick in range(ticks):
            demands = workload.demand(tick)
            rows.append({d.task.task_id: d.cycles for d in demands})
        return cls(tasks, rows, source_name=workload.name)

    # -- CSV round trip ----------------------------------------------------

    def to_csv(self) -> str:
        """Serialise: a task header block, then one row per tick."""
        out = io.StringIO()
        out.write(f"#source,{self.source_name}\n")
        for task in self._tasks:
            out.write(f"#task,{task.task_id},{task.name},{int(task.parallel)}\n")
        out.write("tick,task_id,cycles\n")
        for tick, row in enumerate(self._ticks):
            for task_id in sorted(row):
                out.write(f"{tick},{task_id},{row[task_id]:.1f}\n")
            if not row:
                out.write(f"{tick},,\n")
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "DemandTrace":
        """Parse :meth:`to_csv` output back into a trace."""
        tasks: List[_TraceTask] = []
        rows: Dict[int, Dict[int, float]] = {}
        source = "trace"
        max_tick = -1
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line == "tick,task_id,cycles":
                continue
            if line.startswith("#source,"):
                source = line.split(",", 1)[1]
                continue
            if line.startswith("#task,"):
                parts = line.split(",")
                if len(parts) != 4:
                    raise TraceError(f"line {line_number}: malformed task header {line!r}")
                tasks.append(
                    _TraceTask(
                        task_id=int(parts[1]), name=parts[2], parallel=bool(int(parts[3]))
                    )
                )
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise TraceError(f"line {line_number}: malformed row {line!r}")
            tick = int(parts[0])
            max_tick = max(max_tick, tick)
            if parts[1] == "":
                rows.setdefault(tick, {})
                continue
            rows.setdefault(tick, {})[int(parts[1])] = float(parts[2])
        if max_tick < 0:
            raise TraceError("trace has no ticks")
        ordered = [rows.get(tick, {}) for tick in range(max_tick + 1)]
        return cls(tasks, ordered, source_name=source)


class TraceWorkload(Workload):
    """Replays a :class:`DemandTrace` exactly (looping past the end if asked)."""

    def __init__(self, trace: DemandTrace, loop: bool = False) -> None:
        super().__init__()
        self.trace = trace
        self.loop = loop
        self.name = f"replay({trace.source_name})"
        self._tasks = [
            Task(task_id=t.task_id, name=t.name, parallel=t.parallel)
            for t in trace.tasks
        ]
        self._by_id = {t.task_id: t for t in self._tasks}

    def tasks(self) -> List[Task]:
        return list(self._tasks)

    def demand(self, tick: int) -> List[TaskDemand]:
        if self.loop and len(self.trace):
            tick = tick % len(self.trace)
        row = self.trace.demand_at(tick)
        return [
            TaskDemand(task=self._by_id[task_id], cycles=cycles)
            for task_id, cycles in sorted(row.items())
        ]
