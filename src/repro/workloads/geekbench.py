"""A GeekBench-4-like benchmark: phased, scored, memory-aware.

Section 3.5: "This application performs a complex real-life benchmark on
the available CPU resources to push the limits of the system ensuring
meaningful results by providing a value corresponding to the computing
performance.  The score represents the use of 1 single thread running on
each of the active CPU cores."

Model: a repeating sequence of sub-benchmark phases (crypto / integer /
floating-point / memory), each either single-core (one non-divisible
thread) or multi-core (one thread per core).  Each phase has a memory
intensity; effective progress rolls off as aggregate demand approaches
the memory-bus bandwidth -- that roofline is why performance plateaus at
high frequency (Figure 6) and why the 4-core performance/power ratio
peaks mid-table and then falls (Figure 7).

The score is the effective (stall-discounted) throughput normalised to a
reference, so higher is better and values are comparable across
operating points and policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from .base import Workload, WorkloadContext
from ..errors import WorkloadError
from ..kernel.task import Task, TaskDemand
from ..units import require_fraction, require_positive

__all__ = ["GeekbenchPhase", "GeekbenchWorkload", "DEFAULT_PHASES"]


@dataclass(frozen=True)
class GeekbenchPhase:
    """One sub-benchmark.

    Attributes:
        name: Sub-benchmark label.
        multicore: Single-thread or one-thread-per-core section.
        duration_seconds: How long the phase runs before the next starts.
        memory_intensity: Fraction of the instruction stream that is
            memory traffic (drives the bandwidth roofline).
    """

    name: str
    multicore: bool
    duration_seconds: float
    memory_intensity: float

    def __post_init__(self) -> None:
        require_positive(self.duration_seconds, "duration_seconds")
        require_fraction(self.memory_intensity, "memory_intensity")


#: A GB4-flavoured rotation: single-core then multi-core sections.
#: Single-core phases barely touch the bandwidth roofline (one stream
#: cannot saturate the bus), so single-core performance keeps rising
#: with frequency; multi-core phases contend hard for the shared bus,
#: which is what bends the Figure 7 four-core ratio over at mid-ladder.
#: Phases interleave single- and multi-core so any measurement window of
#: a few seconds samples both sections evenly.
DEFAULT_PHASES = (
    GeekbenchPhase("sc-crypto", multicore=False, duration_seconds=1.0, memory_intensity=0.08),
    GeekbenchPhase("mc-crypto", multicore=True, duration_seconds=1.0, memory_intensity=0.60),
    GeekbenchPhase("sc-integer", multicore=False, duration_seconds=1.5, memory_intensity=0.12),
    GeekbenchPhase("mc-integer", multicore=True, duration_seconds=1.5, memory_intensity=0.80),
    GeekbenchPhase("sc-float", multicore=False, duration_seconds=1.5, memory_intensity=0.10),
    GeekbenchPhase("mc-float", multicore=True, duration_seconds=1.5, memory_intensity=0.72),
    GeekbenchPhase("sc-memory", multicore=False, duration_seconds=1.0, memory_intensity=0.40),
    GeekbenchPhase("mc-memory", multicore=True, duration_seconds=1.0, memory_intensity=1.00),
)

#: Throughput that maps to a score of 1000: one Krait core at 1 GHz with
#: no stalls.  Chosen so Nexus-5 class results land in GB4's familiar
#: four-digit range.
REFERENCE_CYCLES_PER_SECOND = 1.0e9


class GeekbenchWorkload(Workload):
    """Phased benchmark; ``metrics()['score']`` is the headline number.

    Args:
        phases: The sub-benchmark rotation (repeats for the session).
        memory_bandwidth_cps: Memory-side cycles per second the bus can
            serve before stalls dominate (the roofline knee).
    """

    name = "geekbench4-like"

    def __init__(
        self,
        phases=DEFAULT_PHASES,
        memory_bandwidth_cps: float = 4.5e9,
    ) -> None:
        super().__init__()
        if not phases:
            raise WorkloadError("GeekbenchWorkload needs at least one phase")
        require_positive(memory_bandwidth_cps, "memory_bandwidth_cps")
        self.phases: List[GeekbenchPhase] = list(phases)
        self.memory_bandwidth_cps = memory_bandwidth_cps
        self._rotation_seconds = sum(p.duration_seconds for p in self.phases)
        self._tasks: List[Task] = []
        self._effective_cycles = 0.0
        self._raw_cycles = 0.0
        self._elapsed_seconds = 0.0

    def prepare(self, context: WorkloadContext) -> None:
        super().prepare(context)
        self._tasks = [
            Task(task_id=i, name=f"gb4-thread-{i}", parallel=False)
            for i in range(context.num_cores)
        ]
        self._effective_cycles = 0.0
        self._raw_cycles = 0.0
        self._elapsed_seconds = 0.0

    def tasks(self) -> List[Task]:
        return list(self._tasks)

    def phase_at(self, tick: int) -> GeekbenchPhase:
        """The sub-benchmark active at *tick* (the rotation repeats)."""
        time_in_rotation = (tick * self.context.dt_seconds) % self._rotation_seconds
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.duration_seconds
            if time_in_rotation < elapsed:
                return phase
        return self.phases[-1]

    def demand(self, tick: int) -> List[TaskDemand]:
        phase = self.phase_at(tick)
        # A benchmark thread always wants more work than one tick can
        # execute (it "pushes the limits of the system"): demand a full
        # fmax tick per participating thread.
        per_thread = self.context.core_max_cycles_per_tick
        if phase.multicore:
            return [TaskDemand(task=task, cycles=per_thread) for task in self._tasks]
        return [TaskDemand(task=self._tasks[0], cycles=per_thread)]

    def record_execution(self, tick: int, executed_by_task: Mapping[int, float]) -> None:
        executed = sum(executed_by_task.values())
        phase = self.phase_at(tick)
        dt = self.context.dt_seconds
        rate = executed / dt if dt else 0.0
        # Roofline discount: progress slows as the memory traffic this
        # phase generates approaches the bus bandwidth.
        stall_denominator = 1.0 + phase.memory_intensity * rate / self.memory_bandwidth_cps
        self._effective_cycles += executed / stall_denominator
        self._raw_cycles += executed
        self._elapsed_seconds += dt

    @property
    def effective_rate_cps(self) -> float:
        """Stall-discounted cycles per second so far."""
        if self._elapsed_seconds == 0:
            return 0.0
        return self._effective_cycles / self._elapsed_seconds

    def score(self) -> float:
        """The GB4-style score: effective throughput vs the reference."""
        return 1000.0 * self.effective_rate_cps / REFERENCE_CYCLES_PER_SECOND

    def metrics(self) -> Dict[str, float]:
        return {
            "score": self.score(),
            "effective_cycles": self._effective_cycles,
            "raw_cycles": self._raw_cycles,
        }
