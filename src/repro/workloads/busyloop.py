"""The in-house kernel application: configurable busy loops.

Section 3.1: "This application is characterized by configurable busy
loops which do not include any memory accesses.  The load is going on
for a certain number of iterations and includes a period of idleness,
which is about 40ms.  This application allows us to change the number of
active CPU cores, the allowed overall CPU utilization and the frequency
of each core."

Demand semantics: the target is a **global CPU load** in the paper's
sense (section 3.4) -- a percentage of the platform's maximum throughput
(all cores at fmax).  The app spawns one pinnable busy-loop thread per
core slot; each thread demands ``target% x one-core-fmax`` cycles per
tick during the busy phase, and nothing during the periodic idle gap.
"""

from __future__ import annotations

from typing import List

from .base import Workload, WorkloadContext
from ..errors import WorkloadError
from ..kernel.task import Task, TaskDemand
from ..units import require_percent

__all__ = ["BusyLoopApp"]


class BusyLoopApp(Workload):
    """Busy loops at a configurable global utilization with idle gaps.

    Args:
        target_load_percent: The allowed CPU utilization.  With the
            default ``reference_frequency_khz=None`` this is a **global
            load**: a percentage of platform-max throughput (all cores at
            fmax, section 3.4), spread over the threads.  With a
            reference frequency it is a **per-thread local utilization**:
            each thread demands that percentage of one core's capacity at
            the reference frequency -- the semantics of the Figure 3/4
            characterisation sweeps, where utilization is measured at the
            pinned operating point.
        num_threads: Busy-loop threads; defaults to one per core at
            :meth:`prepare` time.
        idle_gap_seconds: Length of the periodic idleness (paper: ~40 ms).
        cycle_seconds: Length of one busy+idle iteration.
        reference_frequency_khz: See ``target_load_percent``.
    """

    def __init__(
        self,
        target_load_percent: float,
        num_threads: int = 0,
        idle_gap_seconds: float = 0.040,
        cycle_seconds: float = 1.0,
        reference_frequency_khz: int = 0,
    ) -> None:
        super().__init__()
        require_percent(target_load_percent, "target_load_percent")
        if reference_frequency_khz < 0:
            raise WorkloadError("reference_frequency_khz must be non-negative")
        self.reference_frequency_khz = reference_frequency_khz
        if idle_gap_seconds < 0:
            raise WorkloadError("idle_gap_seconds must be non-negative")
        if cycle_seconds <= idle_gap_seconds:
            raise WorkloadError(
                f"cycle_seconds {cycle_seconds} must exceed idle_gap_seconds "
                f"{idle_gap_seconds}"
            )
        self.target_load_percent = target_load_percent
        self.num_threads = num_threads
        self.idle_gap_seconds = idle_gap_seconds
        self.cycle_seconds = cycle_seconds
        self.name = f"busyloop({target_load_percent:.0f}%)"
        self._tasks: List[Task] = []
        self._executed_cycles = 0.0

    def prepare(self, context: WorkloadContext) -> None:
        super().prepare(context)
        threads = self.num_threads if self.num_threads > 0 else context.num_cores
        self._tasks = [
            Task(task_id=i, name=f"busyloop-{i}", parallel=False) for i in range(threads)
        ]
        self._executed_cycles = 0.0

    def tasks(self) -> List[Task]:
        return list(self._tasks)

    def _in_idle_gap(self, tick: int) -> bool:
        """True during the periodic idleness window of the iteration."""
        if self.idle_gap_seconds == 0:
            return False
        dt = self.context.dt_seconds
        time_in_cycle = (tick * dt) % self.cycle_seconds
        return time_in_cycle >= self.cycle_seconds - self.idle_gap_seconds

    def demand(self, tick: int) -> List[TaskDemand]:
        if self._in_idle_gap(tick):
            return []
        # The busy phase is scaled up so the *average* over the whole
        # iteration (busy + idle gap) hits the target.
        busy_fraction_of_cycle = 1.0 - self.idle_gap_seconds / self.cycle_seconds
        if self.reference_frequency_khz:
            # Local-utilization mode: each thread wants target% of one
            # core's capacity at the reference frequency.
            per_thread = (
                (self.target_load_percent / 100.0)
                * self.reference_frequency_khz
                * 1000.0
                * self.context.dt_seconds
                / busy_fraction_of_cycle
            )
        else:
            # Global-load mode: target% of platform-max throughput,
            # spread over the threads.
            per_thread = (
                (self.target_load_percent / 100.0)
                * self.context.platform_max_cycles_per_tick
                / (len(self._tasks) * busy_fraction_of_cycle)
            )
        return [TaskDemand(task=task, cycles=per_thread) for task in self._tasks]

    def record_execution(self, tick: int, executed_by_task) -> None:
        self._executed_cycles += sum(executed_by_task.values())

    def metrics(self):
        return {"executed_cycles": self._executed_cycles}
