"""Workloads: the demand generators behind every experiment.

* :class:`BusyLoopApp` -- the paper's in-house kernel application
  (configurable busy loops, no memory accesses, ~40 ms idle period).
* synthetic patterns (step / ramp / sine / bursts) for controlled tests.
* :class:`GeekbenchWorkload` -- a GeekBench-4-like phased benchmark
  producing a score.
* the five game workloads of the evaluation section, built on a frame
  pipeline that measures FPS.
* demand-trace record/replay.
"""

from .base import Workload, WorkloadContext
from .busyloop import BusyLoopApp
from .synthetic import (
    ConstantWorkload,
    StepWorkload,
    RampWorkload,
    SineWorkload,
    BurstWorkload,
)
from .frames import FramePipeline
from .geekbench import GeekbenchWorkload, GeekbenchPhase
from .games import GameProfile, GameWorkload, GAME_PROFILES, game_workload
from .traces import DemandTrace, TraceWorkload

__all__ = [
    "Workload",
    "WorkloadContext",
    "BusyLoopApp",
    "ConstantWorkload",
    "StepWorkload",
    "RampWorkload",
    "SineWorkload",
    "BurstWorkload",
    "FramePipeline",
    "GeekbenchWorkload",
    "GeekbenchPhase",
    "GameProfile",
    "GameWorkload",
    "GAME_PROFILES",
    "game_workload",
    "DemandTrace",
    "TraceWorkload",
]
