"""The five evaluation games as parameterised stochastic workloads.

Section 6 evaluates MobiCore on "5 modern representative games ... Real
Racing 3, Subway Surf, Badland, Angry Birds, and Asphalt 8 (numbered
from 1 to 5) ... designed to run on multicore architecture and ...
multithreaded".

Each game is modelled as:

* one **render thread** feeding a :class:`~repro.workloads.frames.FramePipeline`
  -- single-threaded, so one core's throughput caps FPS (section 5.1's
  reason games sit at 15-20 FPS);
* several **worker threads** (physics, audio, asset streaming) whose
  load follows a mean-reverting (Ornstein-Uhlenbeck-like) process with
  superimposed rectangular bursts -- the "specific dynamicity of games"
  (section 1.3).

Profile parameters are set from the per-game statistics the paper
reports in Figures 10-13 (cores used, frequency gap, load level,
savings): Real Racing 3 is steady and heavy (little headroom, ~0%
savings), Subway Surf is bursty and thread-rich (default burns 3.9
cores; the largest savings), the others sit in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from .base import Workload, WorkloadContext
from .frames import FramePipeline
from ..errors import WorkloadError
from ..kernel.task import Task, TaskDemand
from ..units import clamp, require_fraction, require_positive

__all__ = ["GameProfile", "GameWorkload", "GAME_PROFILES", "game_workload"]


@dataclass(frozen=True)
class GameProfile:
    """Tunable description of one game's demand dynamics.

    Attributes:
        name: Game title.
        frame_cost_cycles: CPU cycles per frame on the render thread;
            sets the FPS ceiling (one core at fmax / frame cost).
        worker_count: Background threads beside the render thread.
        worker_mean_percent: Mean per-worker load, percent of one core
            at fmax.
        worker_theta: Mean-reversion rate of the worker load process.
        worker_sigma: Per-tick noise of the worker load process.
        burst_add_percent: Extra per-worker load during a burst.
        burst_start_prob: Per-tick probability an idle worker bursts.
        mean_burst_ticks: Mean burst length (geometric).
        target_fps: Rendering target (60 for games, section 5.1).
    """

    name: str
    frame_cost_cycles: float
    worker_count: int
    worker_mean_percent: float
    worker_theta: float = 0.15
    worker_sigma: float = 4.0
    burst_add_percent: float = 0.0
    burst_start_prob: float = 0.0
    mean_burst_ticks: int = 8
    target_fps: float = 60.0

    def __post_init__(self) -> None:
        require_positive(self.frame_cost_cycles, "frame_cost_cycles")
        if self.worker_count < 0:
            raise WorkloadError("worker_count must be non-negative")
        if not 0.0 <= self.worker_mean_percent <= 100.0:
            raise WorkloadError("worker_mean_percent must be in [0, 100]")
        require_fraction(self.worker_theta, "worker_theta")
        if self.worker_sigma < 0:
            raise WorkloadError("worker_sigma must be non-negative")
        if self.burst_add_percent < 0:
            raise WorkloadError("burst_add_percent must be non-negative")
        require_fraction(self.burst_start_prob, "burst_start_prob")
        if self.mean_burst_ticks < 1:
            raise WorkloadError("mean_burst_ticks must be >= 1")
        require_positive(self.target_fps, "target_fps")


class GameWorkload(Workload):
    """A game session: render pipeline plus stochastic worker threads."""

    def __init__(self, profile: GameProfile) -> None:
        super().__init__()
        self.profile = profile
        self.name = profile.name
        self.pipeline = FramePipeline(
            frame_cost_cycles=profile.frame_cost_cycles, target_fps=profile.target_fps
        )
        self._render_task: Optional[Task] = None
        self._worker_tasks: List[Task] = []
        self._worker_levels: List[float] = []
        self._worker_bursting: List[bool] = []

    def prepare(self, context: WorkloadContext) -> None:
        super().prepare(context)
        self.pipeline.reset()
        self._render_task = Task(task_id=0, name=f"{self.name}-render", parallel=False)
        self._worker_tasks = [
            Task(task_id=i + 1, name=f"{self.name}-worker{i}", parallel=False)
            for i in range(self.profile.worker_count)
        ]
        self._worker_levels = [
            float(self.profile.worker_mean_percent)
        ] * self.profile.worker_count
        self._worker_bursting = [False] * self.profile.worker_count

    def tasks(self) -> List[Task]:
        return [self._render_task] + list(self._worker_tasks)

    def _advance_worker(self, index: int) -> float:
        """One OU + burst step for a worker; returns its load percent."""
        profile = self.profile
        level = self._worker_levels[index]
        level += profile.worker_theta * (profile.worker_mean_percent - level)
        level += profile.worker_sigma * float(self.rng.standard_normal())
        level = clamp(level, 0.0, 100.0)
        self._worker_levels[index] = level
        if self._worker_bursting[index]:
            if self.rng.random() < 1.0 / profile.mean_burst_ticks:
                self._worker_bursting[index] = False
        elif profile.burst_start_prob > 0 and self.rng.random() < profile.burst_start_prob:
            self._worker_bursting[index] = True
        if self._worker_bursting[index]:
            level = clamp(level + profile.burst_add_percent, 0.0, 100.0)
        return level

    def demand(self, tick: int) -> List[TaskDemand]:
        dt = self.context.dt_seconds
        core_cycles = self.context.core_max_cycles_per_tick
        demands = [
            TaskDemand(task=self._render_task, cycles=self.pipeline.demand_cycles(dt))
        ]
        for index, task in enumerate(self._worker_tasks):
            level = self._advance_worker(index)
            if level > 0:
                demands.append(TaskDemand(task=task, cycles=core_cycles * level / 100.0))
        return demands

    def record_execution(self, tick: int, executed_by_task: Mapping[int, float]) -> None:
        render_cycles = executed_by_task.get(self._render_task.task_id, 0.0)
        self.pipeline.record(render_cycles, self.context.dt_seconds)

    def tick_fps(self) -> Optional[float]:
        return self.pipeline.last_tick_fps

    def metrics(self) -> Dict[str, float]:
        return {
            "mean_fps": self.pipeline.mean_fps,
            "completed_frames": self.pipeline.completed_frames,
        }


#: Nexus-5-scale profiles.  frame_cost sets the FPS ceiling at fmax
#: (2.2656e9 / frame_cost); worker statistics set how many cores the
#: default policy ends up using and how bursty the load is.
GAME_PROFILES: Dict[str, GameProfile] = {
    # Steady, heavy: demand keeps every allocated core busy, so MobiCore
    # finds almost nothing to trim (paper: 0.04% savings, and the only
    # game where its mean frequency ends *higher* than the default's).
    "Real Racing 3": GameProfile(
        name="Real Racing 3",
        frame_cost_cycles=1.05e8,   # ~21.6 FPS ceiling
        worker_count=2,
        worker_mean_percent=80.0,
        worker_theta=0.10,
        worker_sigma=1.5,
        burst_add_percent=0.0,
        burst_start_prob=0.0,
    ),
    # Bursty and thread-rich: the default policy spreads over ~3.9 cores
    # and jumps to fmax on every burst; MobiCore's biggest win (11.7%).
    "Subway Surf": GameProfile(
        name="Subway Surf",
        frame_cost_cycles=1.00e8,   # ~22.7 FPS ceiling
        worker_count=4,
        worker_mean_percent=12.0,
        worker_theta=0.20,
        worker_sigma=6.0,
        burst_add_percent=85.0,
        burst_start_prob=0.06,
        mean_burst_ticks=5,
    ),
    # Light 2D physics game: low, mildly varying load.
    "Badland": GameProfile(
        name="Badland",
        frame_cost_cycles=1.05e8,   # ~21.6 FPS ceiling
        worker_count=3,
        worker_mean_percent=35.0,
        worker_theta=0.15,
        worker_sigma=4.0,
        burst_add_percent=20.0,
        burst_start_prob=0.02,
    ),
    # Event-driven casual game: mostly quiet with sharp spikes.
    "Angry Birds": GameProfile(
        name="Angry Birds",
        frame_cost_cycles=1.10e8,   # ~20.6 FPS ceiling
        worker_count=3,
        worker_mean_percent=40.0,
        worker_theta=0.18,
        worker_sigma=3.0,
        burst_add_percent=25.0,
        burst_start_prob=0.02,
        mean_burst_ticks=5,
    ),
    # Heavy racing game with moderate dynamics.
    "Asphalt 8": GameProfile(
        name="Asphalt 8",
        frame_cost_cycles=1.10e8,   # ~20.6 FPS ceiling
        worker_count=4,
        worker_mean_percent=45.0,
        worker_theta=0.12,
        worker_sigma=4.0,
        burst_add_percent=30.0,
        burst_start_prob=0.02,
    ),
}


def game_workload(name: str) -> GameWorkload:
    """Build the workload for a catalog game by title."""
    try:
        profile = GAME_PROFILES[name]
    except KeyError:
        known = ", ".join(GAME_PROFILES)
        raise WorkloadError(f"unknown game {name!r}; catalog has: {known}") from None
    return GameWorkload(profile)
