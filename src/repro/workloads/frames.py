"""The frame pipeline: how CPU cycles become frames per second.

Section 5.1: "The performance of MobiCore is measured in frames per
second (FPS) ... If the frequency at which the process is running is
high, the FPS will be high as the execution time per frame will be
shorter."  With the GPU pinned at max (no GPU bottleneck), delivered FPS
is CPU-bound: each frame costs a fixed number of CPU cycles on the
render thread, and the thread is single-threaded, so one core's
throughput caps the frame rate -- which is why the paper's games sit at
15-20 FPS even under the default policy.
"""

from __future__ import annotations

from typing import List

from ..errors import WorkloadError
from ..units import require_positive

__all__ = ["FramePipeline"]


class FramePipeline:
    """Converts executed render cycles into delivered frames.

    Args:
        frame_cost_cycles: CPU cycles to prepare one frame.
        target_fps: The rate the game *tries* to render at (60 for games
            and movies, section 5.1); demand is generated at this rate
            and delivery saturates at it.
    """

    def __init__(self, frame_cost_cycles: float, target_fps: float = 60.0) -> None:
        require_positive(frame_cost_cycles, "frame_cost_cycles")
        require_positive(target_fps, "target_fps")
        self.frame_cost_cycles = frame_cost_cycles
        self.target_fps = target_fps
        self._partial_frame_cycles = 0.0
        self._completed_frames = 0.0
        self._elapsed_seconds = 0.0
        self._tick_fps: List[float] = []

    def reset(self) -> None:
        """Start a fresh session."""
        self._partial_frame_cycles = 0.0
        self._completed_frames = 0.0
        self._elapsed_seconds = 0.0
        self._tick_fps.clear()

    def demand_cycles(self, dt_seconds: float) -> float:
        """Render cycles wanted this tick to hit the target FPS."""
        require_positive(dt_seconds, "dt_seconds")
        return self.frame_cost_cycles * self.target_fps * dt_seconds

    def record(self, executed_cycles: float, dt_seconds: float) -> float:
        """Account one tick of executed render cycles; returns the tick FPS."""
        if executed_cycles < 0:
            raise WorkloadError(f"executed_cycles must be non-negative, got {executed_cycles}")
        require_positive(dt_seconds, "dt_seconds")
        self._partial_frame_cycles += executed_cycles
        frames = self._partial_frame_cycles // self.frame_cost_cycles
        self._partial_frame_cycles -= frames * self.frame_cost_cycles
        self._completed_frames += frames
        self._elapsed_seconds += dt_seconds
        fps = min(frames / dt_seconds, self.target_fps)
        self._tick_fps.append(fps)
        return fps

    @property
    def last_tick_fps(self) -> float:
        """FPS delivered over the most recent tick (0 before any tick)."""
        return self._tick_fps[-1] if self._tick_fps else 0.0

    @property
    def completed_frames(self) -> float:
        """Frames fully rendered so far."""
        return self._completed_frames

    @property
    def mean_fps(self) -> float:
        """Session-average FPS (the Figure 11 quantity)."""
        if self._elapsed_seconds == 0:
            return 0.0
        return min(self._completed_frames / self._elapsed_seconds, self.target_fps)
