"""Trial statistics: means and confidence intervals over repeated seeds.

The paper reports single-session numbers; a simulation can afford
repetition.  These helpers aggregate per-seed results into a mean with a
Student-t confidence interval, so EXPERIMENTS.md claims like "5.3 %
average saving" carry an uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from ..errors import ExperimentError

__all__ = ["TrialStats", "trial_statistics"]


@dataclass(frozen=True)
class TrialStats:
    """Aggregate of one metric over repeated trials.

    Attributes:
        mean: Sample mean.
        std: Sample standard deviation (ddof=1; 0 for a single trial).
        ci_low / ci_high: Student-t confidence interval bounds (equal to
            the mean for a single trial).
        n: Number of trials.
        confidence: The interval's confidence level.
    """

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int
    confidence: float

    @property
    def half_width(self) -> float:
        """The +/- half-width of the interval."""
        return (self.ci_high - self.ci_low) / 2.0

    def contains(self, value: float) -> bool:
        """True when *value* lies inside the interval."""
        return self.ci_low <= value <= self.ci_high

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.2f} (single trial)"
        return (
            f"{self.mean:.2f} +/- {self.half_width:.2f} "
            f"({int(self.confidence * 100)}% CI, n={self.n})"
        )


def trial_statistics(
    values: Sequence[float], confidence: float = 0.95
) -> TrialStats:
    """Mean and Student-t confidence interval of repeated trials."""
    if not values:
        raise ExperimentError("trial_statistics needs at least one value")
    if not 0.0 < confidence < 1.0:
        raise ExperimentError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return TrialStats(
            mean=mean, std=0.0, ci_low=mean, ci_high=mean, n=1, confidence=confidence
        )
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    sem = std / math.sqrt(n)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return TrialStats(
        mean=mean,
        std=std,
        ci_low=mean - t_crit * sem,
        ci_high=mean + t_crit * sem,
        n=n,
        confidence=confidence,
    )
