"""ASCII renderers for tables and series.

Every experiment driver can print its figure as a plain-text table or a
labelled series, so benchmark output is readable in a terminal and easy
to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ExperimentError

__all__ = ["render_table", "render_series", "format_mw", "format_mhz", "format_percent"]


def format_mw(value: float) -> str:
    """Milliwatts with one decimal ("980.6 mW")."""
    return f"{value:.1f} mW"


def format_mhz(value_khz: float) -> str:
    """A kHz value shown as MHz ("2265.6 MHz")."""
    return f"{value_khz / 1000.0:.1f} MHz"


def format_percent(value: float, signed: bool = False) -> str:
    """A percentage with one decimal, optionally signed."""
    return f"{value:+.1f}%" if signed else f"{value:.1f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a header separator."""
    if not headers:
        raise ExperimentError("table needs at least one column")
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells for {len(headers)} columns: {row!r}"
            )
        cells.append([str(value) for value in row])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    y_label: str,
    xs: Sequence[object],
    ys: Sequence[float],
    bar_width: int = 40,
) -> str:
    """Render a labelled series with proportional ASCII bars.

    The bars scale to the series maximum, giving a terminal-readable
    silhouette of the figure.
    """
    if len(xs) != len(ys):
        raise ExperimentError(f"{len(xs)} x values for {len(ys)} y values")
    if not xs:
        raise ExperimentError("series needs at least one point")
    if bar_width < 1:
        raise ExperimentError("bar_width must be >= 1")
    peak = max(ys)
    lines = [f"{title}  ({y_label} by {x_label})"]
    label_width = max(len(str(x)) for x in xs)
    for x, y in zip(xs, ys):
        filled = 0 if peak <= 0 else int(round(bar_width * y / peak))
        bar = "#" * filled
        lines.append(f"  {str(x).rjust(label_width)}  {y:10.2f}  {bar}")
    return "\n".join(lines)
