"""Policy A/B comparison on identical demand (the section 6 harness).

Every evaluation figure compares MobiCore against the Android default on
the *same* workload.  :class:`PolicyComparison` runs both policies with
the same seed (so stochastic workloads emit the same demand sequence),
optionally over several seeds, and reports the paper's deltas: power
saving, FPS ratio, frequency reduction, core-count difference, load
difference.

All sessions execute through a
:class:`~repro.runner.runner.SessionRunner`, so a comparison built from
portable pieces (a catalog platform name plus
:class:`~repro.runner.spec.FactoryRef` factories) parallelises over the
runner's worker pool and hits its on-disk cache; plain callables still
work and simply run serially in-process.

Comparisons can also be rebuilt *without* running anything:
:func:`comparison_rows_from_store` reads both policies' summaries back
out of a :class:`~repro.store.ExperimentStore` index and pairs them by
(platform, workload, seed) — the figure-regeneration path over an
already-populated store.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..faults.plan import FaultPlan
from ..kernel.trace_buffer import sequential_sum
from ..metrics.summary import SessionSummary
from ..runner.runner import SessionRunner, default_runner
from ..runner.spec import FactoryLike, FactoryRef, PlatformLike, SessionSpec
from ..soc.catalog import get_phone_spec
from ..soc.platform import PlatformSpec

__all__ = [
    "ComparisonRow",
    "PolicyComparison",
    "comparison_rows",
    "comparison_rows_from_store",
]


def comparison_rows(summaries: Sequence[SessionSummary]) -> List["ComparisonRow"]:
    """Fold a flat (baseline, candidate, baseline, ...) list into rows.

    The folding half of the A/B contract: any batch whose policy axis is
    innermost — ``PolicyComparison`` pairs, or a scenario matrix ending
    in a two-policy axis — alternates baseline/candidate summaries, and
    this pairs them back up.
    """
    if len(summaries) % 2:
        raise ExperimentError(
            f"comparison batches pair baseline/candidate summaries; "
            f"got an odd count ({len(summaries)})"
        )
    return [
        ComparisonRow(
            workload=summaries[i].workload,
            baseline=summaries[i],
            candidate=summaries[i + 1],
        )
        for i in range(0, len(summaries), 2)
    ]


def comparison_rows_from_store(
    store: Union["object", str, Path],
    baseline: str,
    candidate: str,
    workload: Optional[str] = None,
    platform: Optional[str] = None,
    label: Optional[str] = None,
) -> List["ComparisonRow"]:
    """Rebuild A/B rows from an experiment store, running nothing.

    Reads both policies' summaries out of the store index (registry
    policy names, e.g. ``"android-default"`` vs ``"mobicore"``) and
    pairs them by (platform, workload, seed), so a figure can be
    regenerated from any store populated earlier — including one merged
    from sharded sweeps.  Only complete pairs make rows; a seed that
    ran under one policy but not the other is skipped.  Summaries come
    back bit-identical to the cached blobs, so the derived deltas equal
    a fresh :class:`PolicyComparison` run on a warm cache.

    Args:
        store: An open :class:`~repro.store.ExperimentStore` or the
            path of a store/cache directory to open.
        baseline / candidate: Registry policy names for the two sides.
        workload / platform / label: Optional axis filters narrowing
            the grid (any combination).

    Raises:
        ExperimentError: When no complete baseline/candidate pair
            exists under the given filters.
    """
    from ..store import ExperimentStore, StoreQuery

    opened = store if isinstance(store, ExperimentStore) else ExperimentStore(store)

    def side(policy: str) -> Dict[tuple, SessionSummary]:
        query = StoreQuery(
            policy=policy, workload=workload, platform=platform, label=label
        )
        by_point: Dict[tuple, SessionSummary] = {}
        for summary in opened.summaries(query):
            by_point[(summary.platform, summary.workload, summary.seed)] = summary
        return by_point

    baselines, candidates = side(baseline), side(candidate)
    points = sorted(set(baselines) & set(candidates))
    if not points:
        raise ExperimentError(
            f"store holds no complete ({baseline!r}, {candidate!r}) pair "
            f"under the given filters"
        )
    return [
        ComparisonRow(
            workload=baselines[point].workload,
            baseline=baselines[point],
            candidate=candidates[point],
        )
        for point in points
    ]


@dataclass(frozen=True)
class ComparisonRow:
    """Both policies' summaries for one workload plus the paper's deltas."""

    workload: str
    baseline: SessionSummary
    candidate: SessionSummary

    @property
    def power_saving_percent(self) -> float:
        """Candidate's power saving over the baseline (Figures 9-10)."""
        return self.candidate.power_saving_percent(self.baseline)

    @property
    def fps_ratio(self) -> Optional[float]:
        """Candidate/baseline FPS ratio (Figure 11), None without FPS."""
        if self.candidate.mean_fps is None or self.baseline.mean_fps is None:
            return None
        if self.baseline.mean_fps == 0:
            return None
        return self.candidate.mean_fps / self.baseline.mean_fps

    @property
    def frequency_reduction_percent(self) -> float:
        """Candidate's mean-frequency reduction (Figure 12 left)."""
        return self.candidate.frequency_reduction_percent(self.baseline)

    @property
    def core_difference(self) -> float:
        """Baseline minus candidate mean active cores (Figure 12 right)."""
        return self.baseline.mean_online_cores - self.candidate.mean_online_cores

    @property
    def load_difference_points(self) -> float:
        """Baseline minus candidate mean load, percent points (Figure 13)."""
        return self.baseline.mean_load_percent - self.candidate.mean_load_percent


class PolicyComparison:
    """Runs baseline and candidate policies on identical workloads.

    Args:
        spec: Platform to simulate — a live :class:`PlatformSpec`, a
            catalog phone name, or a :class:`FactoryRef`.  Named forms
            keep the comparison portable (parallelisable, cacheable).
        baseline_factory / candidate_factory: Build a *fresh* policy per
            session (policies are stateful); refs or plain callables.
        config: Session configuration; the seed is varied per trial.
        pin_uncore_max: Experiment constraint (games pin the GPU high).
        runner: Execution service; defaults to the process-wide default
            runner at call time.
        faults: Optional :class:`~repro.faults.plan.FaultPlan` injected
            into *every* session of the comparison, so both policies are
            measured under the same adversity (e.g. the same thermal
            clamp window).
    """

    def __init__(
        self,
        spec: PlatformLike,
        baseline_factory: FactoryLike,
        candidate_factory: FactoryLike,
        config: Optional[SimulationConfig] = None,
        pin_uncore_max: bool = True,
        runner: Optional[SessionRunner] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.platform = spec
        self.baseline_factory = baseline_factory
        self.candidate_factory = candidate_factory
        self.config = config if config is not None else SimulationConfig()
        self.pin_uncore_max = pin_uncore_max
        self.runner = runner
        self.faults = faults

    @property
    def spec(self) -> PlatformSpec:
        """The resolved platform datasheet (kept for existing callers)."""
        if isinstance(self.platform, PlatformSpec):
            return self.platform
        if isinstance(self.platform, FactoryRef):
            return self.platform.resolve()
        return get_phone_spec(self.platform)

    def _runner(self) -> SessionRunner:
        return self.runner if self.runner is not None else default_runner()

    def _pair(
        self, workload_factory: FactoryLike, config: SimulationConfig
    ) -> List[SessionSpec]:
        """The (baseline, candidate) spec pair for one workload and seed."""
        return [
            SessionSpec(
                platform=self.platform,
                policy=policy_factory,
                workload=workload_factory,
                config=config,
                pin_uncore_max=self.pin_uncore_max,
                faults=self.faults,
            )
            for policy_factory in (self.baseline_factory, self.candidate_factory)
        ]

    @staticmethod
    def _rows(summaries: Sequence[SessionSummary]) -> List[ComparisonRow]:
        """Fold a flat summary list into rows (see :func:`comparison_rows`)."""
        return comparison_rows(summaries)

    def compare(
        self, workload_factory: FactoryLike, seed: Optional[int] = None
    ) -> ComparisonRow:
        """One A/B run: same workload construction, same seed, two policies."""
        config = self.config if seed is None else self.config.with_seed(seed)
        summaries = self._runner().run(self._pair(workload_factory, config))
        return self._rows(summaries)[0]

    def compare_seeds(
        self, workload_factory: FactoryLike, seeds: Sequence[int]
    ) -> List[ComparisonRow]:
        """Repeat the A/B run over several seeds (trial averaging).

        All ``2 x len(seeds)`` sessions go to the runner as one batch, so
        trials parallelise across seeds, not just across policies.
        """
        if not seeds:
            raise ExperimentError("compare_seeds needs at least one seed")
        specs: List[SessionSpec] = []
        for seed in seeds:
            specs.extend(self._pair(workload_factory, self.config.with_seed(seed)))
        return self._rows(self._runner().run(specs))

    def compare_matrix(
        self,
        workload_factories: Mapping[str, FactoryLike],
        seeds: Sequence[int],
    ) -> Dict[str, List[ComparisonRow]]:
        """The full (workload x seed x policy) matrix as ONE runner batch.

        This is how the evaluation figures execute: every session of the
        matrix is independent, so a parallel runner saturates its workers
        across the whole grid at once.  Returns rows keyed like the
        input mapping, one row per seed, in seed order.
        """
        if not seeds:
            raise ExperimentError("compare_matrix needs at least one seed")
        if not workload_factories:
            raise ExperimentError("compare_matrix needs at least one workload")
        specs: List[SessionSpec] = []
        for factory in workload_factories.values():
            for seed in seeds:
                specs.extend(self._pair(factory, self.config.with_seed(seed)))
        summaries = self._runner().run(specs)
        rows = self._rows(summaries)
        per_workload = len(seeds)
        return {
            name: rows[i * per_workload : (i + 1) * per_workload]
            for i, name in enumerate(workload_factories)
        }

    @staticmethod
    def mean_power_saving(rows: Sequence[ComparisonRow]) -> float:
        """Average power saving over rows (the 'on average' numbers of section 6).

        One vectorized reduction over the per-row savings: both means
        come straight from the rows' columnar session summaries, and the
        sequential sum keeps the result bit-identical to the Python loop
        this replaced.
        """
        if not rows:
            raise ExperimentError("no rows to average")
        savings = np.asarray([row.power_saving_percent for row in rows])
        return sequential_sum(savings) / len(rows)
