"""Policy A/B comparison on identical demand (the section 6 harness).

Every evaluation figure compares MobiCore against the Android default on
the *same* workload.  :class:`PolicyComparison` runs both policies with
the same seed (so stochastic workloads emit the same demand sequence),
optionally over several seeds, and reports the paper's deltas: power
saving, FPS ratio, frequency reduction, core-count difference, load
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..metrics.summary import SessionSummary, summarize
from ..policies.base import CpuPolicy
from ..soc.platform import PlatformSpec
from ..workloads.base import Workload
from .sweep import run_session

__all__ = ["ComparisonRow", "PolicyComparison"]


@dataclass(frozen=True)
class ComparisonRow:
    """Both policies' summaries for one workload plus the paper's deltas."""

    workload: str
    baseline: SessionSummary
    candidate: SessionSummary

    @property
    def power_saving_percent(self) -> float:
        """Candidate's power saving over the baseline (Figures 9-10)."""
        return self.candidate.power_saving_percent(self.baseline)

    @property
    def fps_ratio(self) -> Optional[float]:
        """Candidate/baseline FPS ratio (Figure 11), None without FPS."""
        if self.candidate.mean_fps is None or self.baseline.mean_fps is None:
            return None
        if self.baseline.mean_fps == 0:
            return None
        return self.candidate.mean_fps / self.baseline.mean_fps

    @property
    def frequency_reduction_percent(self) -> float:
        """Candidate's mean-frequency reduction (Figure 12 left)."""
        return self.candidate.frequency_reduction_percent(self.baseline)

    @property
    def core_difference(self) -> float:
        """Baseline minus candidate mean active cores (Figure 12 right)."""
        return self.baseline.mean_online_cores - self.candidate.mean_online_cores

    @property
    def load_difference_points(self) -> float:
        """Baseline minus candidate mean load, percent points (Figure 13)."""
        return self.baseline.mean_load_percent - self.candidate.mean_load_percent


class PolicyComparison:
    """Runs baseline and candidate policies on identical workloads.

    Args:
        spec: Platform to simulate.
        baseline_factory / candidate_factory: Build a *fresh* policy per
            session (policies are stateful).
        config: Session configuration; the seed is varied per trial.
        pin_uncore_max: Experiment constraint (games pin the GPU high).
    """

    def __init__(
        self,
        spec: PlatformSpec,
        baseline_factory: Callable[[], CpuPolicy],
        candidate_factory: Callable[[], CpuPolicy],
        config: Optional[SimulationConfig] = None,
        pin_uncore_max: bool = True,
    ) -> None:
        self.spec = spec
        self.baseline_factory = baseline_factory
        self.candidate_factory = candidate_factory
        self.config = config if config is not None else SimulationConfig()
        self.pin_uncore_max = pin_uncore_max

    def compare(
        self, workload_factory: Callable[[], Workload], seed: Optional[int] = None
    ) -> ComparisonRow:
        """One A/B run: same workload construction, same seed, two policies."""
        config = self.config if seed is None else self.config.with_seed(seed)
        baseline_result = run_session(
            self.spec,
            workload_factory(),
            self.baseline_factory(),
            config,
            pin_uncore_max=self.pin_uncore_max,
        )
        candidate_result = run_session(
            self.spec,
            workload_factory(),
            self.candidate_factory(),
            config,
            pin_uncore_max=self.pin_uncore_max,
        )
        return ComparisonRow(
            workload=baseline_result.workload_name,
            baseline=summarize(baseline_result),
            candidate=summarize(candidate_result),
        )

    def compare_seeds(
        self, workload_factory: Callable[[], Workload], seeds: Sequence[int]
    ) -> List[ComparisonRow]:
        """Repeat the A/B run over several seeds (trial averaging)."""
        if not seeds:
            raise ExperimentError("compare_seeds needs at least one seed")
        return [self.compare(workload_factory, seed) for seed in seeds]

    @staticmethod
    def mean_power_saving(rows: Sequence[ComparisonRow]) -> float:
        """Average power saving over rows (the 'on average' numbers of section 6)."""
        if not rows:
            raise ExperimentError("no rows to average")
        return sum(row.power_saving_percent for row in rows) / len(rows)
