"""Battery-life projection: what a power saving means in hours.

The paper's motivation is battery life ("due to battery constraints,
energy efficiency is, today, the main concern in mobile devices",
section 1).  These helpers translate the simulator's mean-power numbers
into the quantity a user feels: hours of runtime on a given battery, and
the extra minutes a policy's saving buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import require_positive

__all__ = ["BatterySpec", "NEXUS5_BATTERY", "battery_life_hours", "extra_minutes"]


@dataclass(frozen=True)
class BatterySpec:
    """A battery's usable energy.

    Attributes:
        capacity_mah: Rated charge capacity.
        nominal_voltage: Chemistry nominal (3.8 V for the Nexus 5's
            Li-polymer cell).
        usable_fraction: Fraction of the rated energy actually available
            between full and shutdown.
    """

    capacity_mah: float
    nominal_voltage: float = 3.8
    usable_fraction: float = 0.95

    def __post_init__(self) -> None:
        require_positive(self.capacity_mah, "capacity_mah")
        require_positive(self.nominal_voltage, "nominal_voltage")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigError(
                f"usable_fraction must be in (0, 1], got {self.usable_fraction}"
            )

    @property
    def energy_mwh(self) -> float:
        """Usable energy in milliwatt-hours."""
        return self.capacity_mah * self.nominal_voltage * self.usable_fraction


#: The Nexus 5's BL-T9 cell: 2300 mAh.
NEXUS5_BATTERY = BatterySpec(capacity_mah=2300.0)


def battery_life_hours(mean_power_mw: float, battery: BatterySpec = NEXUS5_BATTERY) -> float:
    """Runtime in hours at a constant *mean_power_mw* draw."""
    require_positive(mean_power_mw, "mean_power_mw")
    return battery.energy_mwh / mean_power_mw


def extra_minutes(
    baseline_power_mw: float,
    candidate_power_mw: float,
    battery: BatterySpec = NEXUS5_BATTERY,
) -> float:
    """Extra runtime (minutes) the candidate's lower draw buys.

    Negative when the candidate draws more than the baseline.
    """
    baseline = battery_life_hours(baseline_power_mw, battery)
    candidate = battery_life_hours(candidate_power_mw, battery)
    return (candidate - baseline) * 60.0
