"""Parameter sweeps over operating points and workload levels.

The section 3 characterisation experiments are sweeps: utilization at
fixed operating points (Figure 3), core count at fixed frequency
(Figure 4), frequency at fixed load (Figures 5-7).  Each sweep builds a
batch of declarative :class:`~repro.runner.spec.SessionSpec` and hands
it to a :class:`~repro.runner.runner.SessionRunner`, so grid points run
in parallel (and cache) whenever the platform is given by catalog name
or ref; a live :class:`PlatformSpec` still works and runs in-process.

:func:`run_session` remains the single-session primitive for callers
that need the *full trace* (fitting, thermal, operating-point drivers) —
traces never cross process boundaries, so it executes directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..kernel.simulator import SessionResult, Simulator
from ..metrics.summary import SessionSummary
from ..policies.base import CpuPolicy
from ..runner.runner import SessionRunner, default_runner
from ..runner.spec import FactoryLike, FactoryRef, PlatformLike, SessionSpec
from ..scenario.registry import policy_ref, workload_ref
from ..soc.platform import Platform, PlatformSpec
from ..workloads.base import Workload

__all__ = [
    "run_session",
    "summary_columns",
    "summary_columns_from_store",
    "utilization_sweep",
    "frequency_sweep",
    "core_count_sweep",
]

#: SessionSummary fields :func:`summary_columns` extracts by default —
#: the quantities the characterisation figures plot against sweep axes.
_DEFAULT_SUMMARY_FIELDS = (
    "mean_power_mw",
    "mean_cpu_power_mw",
    "energy_mj",
    "mean_frequency_khz",
    "mean_online_cores",
    "mean_load_percent",
    "mean_scaled_load_percent",
)


def summary_columns(
    summaries: Sequence[SessionSummary],
    fields: Sequence[str] = _DEFAULT_SUMMARY_FIELDS,
) -> Dict[str, np.ndarray]:
    """Transpose sweep summaries into per-field numpy columns.

    Every sweep returns one :class:`SessionSummary` per grid point; the
    figures then want *columns* (power vs level, frequency vs point...).
    This builds them in one pass — ``fields`` may name any float-valued
    summary attribute.  ``mean_fps`` is allowed and maps its ``None``
    (no-FPS session) entries to ``NaN``, mirroring the trace buffer's
    FPS column convention.
    """
    if not summaries:
        raise ExperimentError("no summaries to columnise")
    columns: Dict[str, np.ndarray] = {}
    for field in fields:
        values = [getattr(summary, field) for summary in summaries]
        columns[field] = np.asarray(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
    return columns


def summary_columns_from_store(
    store,
    query=None,
    fields: Sequence[str] = _DEFAULT_SUMMARY_FIELDS,
) -> Dict[str, np.ndarray]:
    """Per-field numpy columns straight from an experiment store.

    The store-reading twin of :func:`summary_columns`: summaries are
    read back from the sqlite index (bit-identical to the cached
    blobs, ordered by cache key) and columnised without running a
    single session — how characterisation figures rebuild from a store
    populated by earlier sweeps.

    Args:
        store: An open :class:`~repro.store.ExperimentStore` or the
            path of a store/cache directory to open.
        query: Optional :class:`~repro.store.StoreQuery` narrowing the
            axes (its projection is ignored; full summaries are read).
        fields: Summary attributes to extract, as in
            :func:`summary_columns`.

    Raises:
        ExperimentError: When the query matches no runs.
    """
    from ..store import ExperimentStore

    opened = store if isinstance(store, ExperimentStore) else ExperimentStore(store)
    return summary_columns(opened.summaries(query), fields)


def run_session(
    spec: PlatformSpec,
    workload: Workload,
    policy: CpuPolicy,
    config: Optional[SimulationConfig] = None,
    pin_uncore_max: bool = True,
) -> SessionResult:
    """Run one fresh session (new platform instance every time).

    A new :class:`Platform` per session keeps sweeps independent -- no
    thermal or hotplug state leaks between grid points.
    """
    platform = Platform.from_spec(spec)
    simulator = Simulator(
        platform, workload, policy, config, pin_uncore_max=pin_uncore_max
    )
    return simulator.run()


def _static_policy_ref(online_count: int, frequency_khz: int) -> FactoryRef:
    return policy_ref(
        "static", online_count=online_count, frequency_khz=frequency_khz
    )


def _busyloop_ref(
    level: float, num_threads: int = 0, reference_frequency_khz: int = 0
) -> FactoryRef:
    return workload_ref(
        "busyloop",
        target_load_percent=level,
        num_threads=num_threads,
        reference_frequency_khz=reference_frequency_khz,
    )


def _run_grid(
    spec: PlatformLike,
    points: Sequence[tuple],
    config: Optional[SimulationConfig],
    pin_uncore_max: bool,
    runner: Optional[SessionRunner],
) -> List[SessionSummary]:
    """Execute (policy, workload) grid points as one runner batch."""
    config = config if config is not None else SimulationConfig()
    batch = [
        SessionSpec(
            platform=spec,
            policy=policy,
            workload=workload,
            config=config,
            pin_uncore_max=pin_uncore_max,
        )
        for policy, workload in points
    ]
    active = runner if runner is not None else default_runner()
    return active.run(batch)


def utilization_sweep(
    spec: PlatformLike,
    online_count: int,
    frequency_khz: int,
    utilization_percents: Sequence[float],
    config: Optional[SimulationConfig] = None,
    pin_uncore_max: bool = False,
    runner: Optional[SessionRunner] = None,
) -> List[SessionSummary]:
    """Figure 3's sweep: busy-loop utilization at one fixed operating point.

    Utilization levels are *local*: each online core runs one thread at
    that percentage of its capacity at the pinned frequency, matching the
    paper's per-point characterisation.
    """
    if not utilization_percents:
        raise ExperimentError("utilization sweep needs at least one level")
    points = [
        (
            _static_policy_ref(online_count, frequency_khz),
            _busyloop_ref(
                level, num_threads=online_count, reference_frequency_khz=frequency_khz
            ),
        )
        for level in utilization_percents
    ]
    return _run_grid(spec, points, config, pin_uncore_max, runner)


def frequency_sweep(
    spec: PlatformLike,
    online_count: int,
    frequencies_khz: Sequence[int],
    utilization_percent: float,
    config: Optional[SimulationConfig] = None,
    workload_factory: Optional[FactoryLike] = None,
    pin_uncore_max: bool = False,
    runner: Optional[SessionRunner] = None,
) -> List[SessionSummary]:
    """Frequency sweep at a fixed core count and load (Figures 5-7).

    ``workload_factory`` substitutes a different demand generator (e.g.
    the GeekBench-like benchmark for Figures 6-7); the default is the
    busy-loop app at *utilization_percent*.  Pass a
    :class:`FactoryRef` to keep the sweep portable.
    """
    if not frequencies_khz:
        raise ExperimentError("frequency sweep needs at least one frequency")
    points = [
        (
            _static_policy_ref(online_count, frequency),
            workload_factory if workload_factory is not None
            else _busyloop_ref(utilization_percent),
        )
        for frequency in frequencies_khz
    ]
    return _run_grid(spec, points, config, pin_uncore_max, runner)


def core_count_sweep(
    spec: PlatformLike,
    core_counts: Sequence[int],
    frequency_khz: int,
    utilization_percent: float = 100.0,
    config: Optional[SimulationConfig] = None,
    pin_uncore_max: bool = False,
    runner: Optional[SessionRunner] = None,
) -> List[SessionSummary]:
    """Figure 4's sweep: core count at one frequency, 100% local load."""
    if not core_counts:
        raise ExperimentError("core-count sweep needs at least one count")
    points = [
        (
            _static_policy_ref(count, frequency_khz),
            _busyloop_ref(
                utilization_percent,
                num_threads=count,
                reference_frequency_khz=frequency_khz,
            ),
        )
        for count in core_counts
    ]
    return _run_grid(spec, points, config, pin_uncore_max, runner)
