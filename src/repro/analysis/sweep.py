"""Parameter sweeps over operating points and workload levels.

The section 3 characterisation experiments are sweeps: utilization at
fixed operating points (Figure 3), core count at fixed frequency
(Figure 4), frequency at fixed load (Figures 5-7).  Each sweep here runs
full sessions through the simulator and returns summary rows.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..kernel.simulator import SessionResult, Simulator
from ..metrics.summary import SessionSummary, summarize
from ..policies.base import CpuPolicy
from ..policies.static import StaticPolicy
from ..soc.platform import Platform, PlatformSpec
from ..workloads.base import Workload
from ..workloads.busyloop import BusyLoopApp

__all__ = ["run_session", "utilization_sweep", "frequency_sweep", "core_count_sweep"]


def run_session(
    spec: PlatformSpec,
    workload: Workload,
    policy: CpuPolicy,
    config: Optional[SimulationConfig] = None,
    pin_uncore_max: bool = True,
) -> SessionResult:
    """Run one fresh session (new platform instance every time).

    A new :class:`Platform` per session keeps sweeps independent -- no
    thermal or hotplug state leaks between grid points.
    """
    platform = Platform.from_spec(spec)
    simulator = Simulator(
        platform, workload, policy, config, pin_uncore_max=pin_uncore_max
    )
    return simulator.run()


def utilization_sweep(
    spec: PlatformSpec,
    online_count: int,
    frequency_khz: int,
    utilization_percents: Sequence[float],
    config: Optional[SimulationConfig] = None,
    pin_uncore_max: bool = False,
) -> List[SessionSummary]:
    """Figure 3's sweep: busy-loop utilization at one fixed operating point.

    Utilization levels are *local*: each online core runs one thread at
    that percentage of its capacity at the pinned frequency, matching the
    paper's per-point characterisation.
    """
    if not utilization_percents:
        raise ExperimentError("utilization sweep needs at least one level")
    summaries = []
    for level in utilization_percents:
        result = run_session(
            spec,
            BusyLoopApp(
                level,
                num_threads=online_count,
                reference_frequency_khz=frequency_khz,
            ),
            StaticPolicy(online_count, frequency_khz),
            config,
            pin_uncore_max=pin_uncore_max,
        )
        summaries.append(summarize(result))
    return summaries


def frequency_sweep(
    spec: PlatformSpec,
    online_count: int,
    frequencies_khz: Sequence[int],
    utilization_percent: float,
    config: Optional[SimulationConfig] = None,
    workload_factory: Optional[Callable[[], Workload]] = None,
    pin_uncore_max: bool = False,
) -> List[SessionSummary]:
    """Frequency sweep at a fixed core count and load (Figures 5-7).

    ``workload_factory`` substitutes a different demand generator (e.g.
    the GeekBench-like benchmark for Figures 6-7); the default is the
    busy-loop app at *utilization_percent*.
    """
    if not frequencies_khz:
        raise ExperimentError("frequency sweep needs at least one frequency")
    summaries = []
    for frequency in frequencies_khz:
        workload = (
            workload_factory() if workload_factory is not None
            else BusyLoopApp(utilization_percent)
        )
        result = run_session(
            spec,
            workload,
            StaticPolicy(online_count, frequency),
            config,
            pin_uncore_max=pin_uncore_max,
        )
        summaries.append(summarize(result))
    return summaries


def core_count_sweep(
    spec: PlatformSpec,
    core_counts: Sequence[int],
    frequency_khz: int,
    utilization_percent: float = 100.0,
    config: Optional[SimulationConfig] = None,
    pin_uncore_max: bool = False,
) -> List[SessionSummary]:
    """Figure 4's sweep: core count at one frequency, 100% local load."""
    if not core_counts:
        raise ExperimentError("core-count sweep needs at least one count")
    summaries = []
    for count in core_counts:
        result = run_session(
            spec,
            BusyLoopApp(
                utilization_percent,
                num_threads=count,
                reference_frequency_khz=frequency_khz,
            ),
            StaticPolicy(count, frequency_khz),
            config,
            pin_uncore_max=pin_uncore_max,
        )
        summaries.append(summarize(result))
    return summaries
