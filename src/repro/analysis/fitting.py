"""Fit the section-4.1 power model from measurements.

The paper validates its analytic model against Monsoon measurements
(section 4.2); this module closes that loop for any device: collect
(operating point, busy fraction, power) samples -- from a real meter or
from :func:`collect_samples`' simulated characterisation sweep -- and
recover :class:`~repro.soc.power_model.PowerParams` by least squares.

The fitted core model is

    P = base + n * u * Ceff * f_GHz * V^2 + n * c * V^p

i.e. the Eq. (1)/(2) terms plus a constant floor.  The leakage exponent
``p`` makes the problem nonlinear, so the fit grid-searches ``p`` and
solves the remaining coefficients linearly at each candidate (ordinary
least squares via numpy), keeping the best residual.  Shared-domain and
cache terms are deliberately excluded: fit from single-core sweeps (as
the paper characterises, section 3.3.1) where they are negligible, or
subtract them beforehand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .sweep import run_session
from ..config import SimulationConfig
from ..errors import ExperimentError
from ..metrics.summary import summarize
from ..policies.static import StaticPolicy
from ..soc.platform import PlatformSpec
from ..soc.power_model import PowerParams
from ..units import require_fraction, require_positive
from ..workloads.busyloop import BusyLoopApp

__all__ = ["PowerSample", "FitResult", "fit_power_params", "collect_samples"]


@dataclass(frozen=True)
class PowerSample:
    """One measured operating point.

    Attributes:
        frequency_khz: Core frequency during the measurement.
        voltage: Supply voltage at that OPP.
        busy_fraction: Mean per-core busy fraction (0-1).
        online_count: Cores online during the measurement.
        power_mw: Measured platform power (uncore subtracted or stable).
    """

    frequency_khz: int
    voltage: float
    busy_fraction: float
    online_count: int
    power_mw: float

    def __post_init__(self) -> None:
        require_positive(self.frequency_khz, "frequency_khz")
        require_positive(self.voltage, "voltage")
        require_fraction(self.busy_fraction, "busy_fraction")
        if self.online_count < 1:
            raise ExperimentError("online_count must be >= 1")
        require_positive(self.power_mw, "power_mw")


@dataclass(frozen=True)
class FitResult:
    """The recovered parameters and the fit quality."""

    params: PowerParams
    leak_exponent: float
    rmse_mw: float
    samples_used: int

    def static_power_mw(self, voltage: float) -> float:
        """The fitted leakage law evaluated at *voltage*."""
        return self.params.leak_coefficient_mw * voltage ** self.params.leak_exponent


def _solve_at_exponent(
    samples: Sequence[PowerSample], exponent: float
) -> Optional[tuple]:
    """OLS for (Ceff, leak_coeff, base) at a fixed leakage exponent."""
    design = np.array(
        [
            [
                s.online_count * s.busy_fraction * (s.frequency_khz / 1e6) * s.voltage ** 2,
                s.online_count * s.voltage ** exponent,
                1.0,
            ]
            for s in samples
        ]
    )
    target = np.array([s.power_mw for s in samples])
    coefficients, _, rank, _ = np.linalg.lstsq(design, target, rcond=None)
    if rank < 3:
        return None
    ceff, leak, base = coefficients
    if ceff <= 0 or leak <= 0 or base < 0:
        return None
    residual = design @ coefficients - target
    rmse = float(np.sqrt(np.mean(residual ** 2)))
    return float(ceff), float(leak), float(base), rmse


def fit_power_params(
    samples: Sequence[PowerSample],
    exponents: Sequence[float] = tuple(np.arange(1.0, 5.01, 0.05)),
) -> FitResult:
    """Recover PowerParams from measurements.

    Needs samples spanning several frequencies *and* several busy
    fractions (otherwise dynamic and static power are not separable).
    Raises :class:`~repro.errors.ExperimentError` when no admissible fit
    exists.
    """
    if len(samples) < 4:
        raise ExperimentError(f"need at least 4 samples, got {len(samples)}")
    frequencies = {s.frequency_khz for s in samples}
    fractions = {round(s.busy_fraction, 3) for s in samples}
    if len(frequencies) < 2 or len(fractions) < 2:
        raise ExperimentError(
            "samples must span at least two frequencies and two busy levels"
        )
    best = None
    best_exponent = None
    for exponent in exponents:
        solved = _solve_at_exponent(samples, float(exponent))
        if solved is None:
            continue
        if best is None or solved[3] < best[3]:
            best = solved
            best_exponent = float(exponent)
    if best is None:
        raise ExperimentError("no admissible fit (all candidates degenerate)")
    ceff, leak, base, rmse = best
    params = PowerParams(
        ceff_mw_per_ghz_v2=ceff,
        leak_coefficient_mw=leak,
        leak_exponent=best_exponent,
        platform_base_mw=base,
    )
    return FitResult(
        params=params,
        leak_exponent=best_exponent,
        rmse_mw=rmse,
        samples_used=len(samples),
    )


def collect_samples(
    spec: PlatformSpec,
    utilization_percents: Sequence[float] = (10.0, 40.0, 70.0, 100.0),
    frequencies_khz: Optional[Sequence[int]] = None,
    config: Optional[SimulationConfig] = None,
) -> List[PowerSample]:
    """Run the paper's single-core characterisation sweep and sample it.

    One static session per (frequency, utilization) pair with a single
    online core (GPU/memory idle), exactly the section 3.3.1 procedure.
    The idle-uncore floor lands in the fitted base term.
    """
    if frequencies_khz is None:
        frequencies_khz = [opp.frequency_khz for opp in spec.opp_table.representative_five()]
    if config is None:
        config = SimulationConfig(duration_seconds=5.0, warmup_seconds=1.0)
    samples: List[PowerSample] = []
    for frequency in frequencies_khz:
        voltage = spec.opp_table.voltage_for(frequency)
        for level in utilization_percents:
            result = run_session(
                spec,
                BusyLoopApp(
                    level,
                    num_threads=1,
                    idle_gap_seconds=0.0,
                    reference_frequency_khz=frequency,
                ),
                StaticPolicy(1, frequency),
                config,
                pin_uncore_max=False,
            )
            summary = summarize(result)
            samples.append(
                PowerSample(
                    frequency_khz=frequency,
                    voltage=voltage,
                    busy_fraction=min(level / 100.0, 1.0),
                    online_count=1,
                    power_mw=summary.mean_power_mw,
                )
            )
    return samples
