"""Performance/power ratio analysis (Figures 6 and 7).

Section 3.5 evaluates "the ratio between performance and power
consumption over the frequency range for one core and for four cores"
with GeekBench 4.  We run the GeekBench-like workload pinned at each
OPP and compute score / watt; the paper's findings to reproduce:

* one core: the ratio is stable and rises slowly (log-like trend);
* four cores: the ratio peaks at a mid-table frequency (~960 MHz on the
  Nexus 5) and then *falls* -- too many cores at too high a state is not
  worth the power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import SimulationConfig
from ..errors import ExperimentError
from ..metrics.summary import summarize
from ..policies.static import StaticPolicy
from ..soc.platform import PlatformSpec
from ..workloads.geekbench import GeekbenchWorkload
from .sweep import run_session

__all__ = ["RatioPoint", "performance_power_ratio"]


@dataclass(frozen=True)
class RatioPoint:
    """One (frequency, performance, power, ratio) sample."""

    frequency_khz: int
    online_count: int
    score: float
    mean_power_mw: float

    @property
    def ratio_score_per_w(self) -> float:
        """Performance per watt -- the Figure 7 y-axis."""
        if self.mean_power_mw <= 0:
            raise ExperimentError("non-positive power; ratio undefined")
        return self.score / (self.mean_power_mw / 1000.0)


def performance_power_ratio(
    spec: PlatformSpec,
    online_count: int,
    frequencies_khz: Optional[Sequence[int]] = None,
    config: Optional[SimulationConfig] = None,
) -> List[RatioPoint]:
    """Score and power at every requested OPP for a fixed core count.

    Defaults to the full OPP ladder.  The GPU/memory stay unpinned so the
    ratio reflects CPU behaviour (the paper subtracts stable uncore
    terms).
    """
    if online_count < 1 or online_count > spec.num_cores:
        raise ExperimentError(
            f"online_count {online_count} out of range 1..{spec.num_cores}"
        )
    if frequencies_khz is None:
        frequencies_khz = spec.opp_table.frequencies_khz
    if config is None:
        config = SimulationConfig(duration_seconds=20.0, warmup_seconds=1.0)
    points: List[RatioPoint] = []
    for frequency in frequencies_khz:
        result = run_session(
            spec,
            GeekbenchWorkload(),
            StaticPolicy(online_count, frequency),
            config,
            pin_uncore_max=False,
        )
        summary = summarize(result)
        points.append(
            RatioPoint(
                frequency_khz=frequency,
                online_count=online_count,
                score=result.workload_metrics["score"],
                mean_power_mw=summary.mean_power_mw,
            )
        )
    return points
