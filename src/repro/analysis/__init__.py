"""Analysis harnesses: sweeps, ratios, policy comparisons, and reports.

These are the reusable pieces the per-figure experiment drivers build
on: run a session, sweep a grid of operating points or workloads,
compare two policies on identical demand, and render ASCII tables or
series the way the paper's figures tabulate them.
"""

from .sweep import (
    run_session,
    summary_columns,
    summary_columns_from_store,
    utilization_sweep,
    frequency_sweep,
    core_count_sweep,
)
from .ratio import performance_power_ratio, RatioPoint
from .comparison import (
    PolicyComparison,
    ComparisonRow,
    comparison_rows,
    comparison_rows_from_store,
)
from .report import render_table, render_series, format_mw, format_mhz
from .battery import BatterySpec, NEXUS5_BATTERY, battery_life_hours, extra_minutes
from .fitting import PowerSample, FitResult, fit_power_params, collect_samples
from .stats import TrialStats, trial_statistics
from .biglittle import (
    ClusterModel,
    compare_clusters,
    default_big_cluster,
    default_little_cluster,
)

__all__ = [
    "ClusterModel",
    "compare_clusters",
    "default_big_cluster",
    "default_little_cluster",
    "TrialStats",
    "trial_statistics",
    "PowerSample",
    "FitResult",
    "fit_power_params",
    "collect_samples",
    "BatterySpec",
    "NEXUS5_BATTERY",
    "battery_life_hours",
    "extra_minutes",
    "run_session",
    "summary_columns",
    "summary_columns_from_store",
    "utilization_sweep",
    "frequency_sweep",
    "core_count_sweep",
    "performance_power_ratio",
    "RatioPoint",
    "PolicyComparison",
    "ComparisonRow",
    "comparison_rows",
    "comparison_rows_from_store",
    "render_table",
    "render_series",
    "format_mw",
    "format_mhz",
]
