"""An analytical big.LITTLE exploration (the section 3.4 aside).

The thesis excludes heterogeneous platforms from its *evaluation* but
makes a concrete claim about them: "the use of little cores (and thus
more of them) could improve the energy efficiency when correct operating
points are selected", specifically for spinning workloads "without
implying any period of idleness" (sections 3.4, 4.1.2).

This module checks that claim with the same Eq. (1)/(2) machinery the
rest of the library uses, at the model level (no scheduler simulation:
big.LITTLE *scheduling* is exactly the problem the thesis defers to
[22]).  A :class:`ClusterModel` wraps an OPP table, power parameters,
and an IPC scale (a little core retires fewer instructions per cycle);
:func:`compare_clusters` finds each cluster's cheapest operating point
for a sustained throughput demand and reports who wins where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .report import render_table
from ..errors import ExperimentError
from ..soc.opp import OppTable
from ..soc.power_model import CpuPowerModel, PowerParams
from ..units import clamp, require_positive

__all__ = [
    "ClusterModel",
    "ClusterPoint",
    "ComparisonPoint",
    "compare_clusters",
    "render_comparison",
    "default_little_cluster",
    "default_big_cluster",
]


@dataclass(frozen=True)
class ClusterModel:
    """One homogeneous cluster of a heterogeneous SoC.

    Attributes:
        name: "little" / "big".
        opp_table: The cluster's DVFS ladder.
        params: Eq. (1)/(2) power constants for one core of this type.
        ipc_scale: Instructions per cycle relative to the reference core
            (a little in-order core does less work per cycle).
        num_cores: Cores in the cluster.
    """

    name: str
    opp_table: OppTable
    params: PowerParams
    ipc_scale: float
    num_cores: int

    def __post_init__(self) -> None:
        require_positive(self.ipc_scale, "ipc_scale")
        if self.num_cores < 1:
            raise ExperimentError(f"{self.name}: num_cores must be >= 1")

    @classmethod
    def from_spec(cls, spec, name: str = "") -> "ClusterModel":
        """The analytical model of one catalog frequency domain.

        Args:
            spec: A :class:`~repro.soc.topology.ClusterSpec` — the same
                object the simulator builds its
                :class:`~repro.soc.topology.CpuTopology` from, so the
                analytical sweep and a simulated run of the same board
                share one calibration by construction.
            name: Display name; defaults to the spec's cluster name.
        """
        return cls(
            name=name or spec.name,
            opp_table=spec.opp_table,
            params=spec.power_params,
            ipc_scale=spec.ipc_scale,
            num_cores=spec.num_cores,
        )

    def max_throughput_ips(self) -> float:
        """Reference instructions/second with every core at fmax."""
        return (
            self.num_cores
            * self.opp_table.max_frequency_khz
            * 1000.0
            * self.ipc_scale
        )


@dataclass(frozen=True)
class ClusterPoint:
    """A cluster's cheapest operating point for one demand level."""

    cluster: str
    online_count: int
    frequency_khz: int
    busy_fraction: float
    power_mw: float


@dataclass(frozen=True)
class ComparisonPoint:
    """Both clusters' best points at one demand, and the winner."""

    demand_ips: float
    little: Optional[ClusterPoint]
    big: Optional[ClusterPoint]

    @property
    def winner(self) -> str:
        """"little", "big", or "big (only feasible)"."""
        if self.little is None and self.big is None:
            return "none"
        if self.little is None:
            return f"{self.big.cluster} (only feasible)"
        if self.big is None:
            return f"{self.little.cluster} (only feasible)"
        return (
            self.little.cluster
            if self.little.power_mw <= self.big.power_mw
            else self.big.cluster
        )


def _best_point(cluster: ClusterModel, demand_ips: float) -> Optional[ClusterPoint]:
    """The cheapest (n, f) of *cluster* sustaining *demand_ips*, or None."""
    model = CpuPowerModel(cluster.params, cluster.opp_table)
    best: Optional[ClusterPoint] = None
    for count in range(1, cluster.num_cores + 1):
        for opp in cluster.opp_table:
            throughput = count * opp.frequency_khz * 1000.0 * cluster.ipc_scale
            if throughput + 1e-9 < demand_ips:
                continue
            busy = clamp(demand_ips / throughput, 0.0, 1.0)
            power = model.predict_cpu_mw(count, opp.frequency_khz, busy)
            if best is None or power < best.power_mw:
                best = ClusterPoint(
                    cluster=cluster.name,
                    online_count=count,
                    frequency_khz=opp.frequency_khz,
                    busy_fraction=busy,
                    power_mw=power,
                )
    return best


def compare_clusters(
    little: ClusterModel,
    big: ClusterModel,
    demand_fractions: Sequence[float],
) -> List[ComparisonPoint]:
    """Best point per cluster over a sweep of sustained demands.

    *demand_fractions* are fractions of the **big** cluster's maximum
    throughput (so 1.0 is only feasible on big silicon).
    """
    if not demand_fractions:
        raise ExperimentError("compare_clusters needs at least one demand level")
    reference = big.max_throughput_ips()
    points = []
    for fraction in demand_fractions:
        if fraction <= 0:
            raise ExperimentError("demand fractions must be positive")
        demand = fraction * reference
        points.append(
            ComparisonPoint(
                demand_ips=demand,
                little=_best_point(little, demand),
                big=_best_point(big, demand),
            )
        )
    return points


def render_comparison(points: Sequence[ComparisonPoint]) -> str:
    """ASCII table of the sweep."""
    rows = []
    for point in points:
        def cell(best: Optional[ClusterPoint]) -> str:
            if best is None:
                return "infeasible"
            return (
                f"{best.online_count}c@{best.frequency_khz / 1000:.0f}MHz "
                f"{best.power_mw:.0f}mW"
            )

        rows.append(
            (
                f"{point.demand_ips / 1e9:.2f}",
                cell(point.little),
                cell(point.big),
                point.winner,
            )
        )
    return render_table(("demand (Gips)", "little best", "big best", "winner"), rows)


def default_little_cluster() -> ClusterModel:
    """A Cortex-A7-class quad: low ceilings, very low power, IPC ~0.6."""
    from ..soc.topology import ClusterSpec

    table = OppTable.linear(
        [300_000, 400_000, 600_000, 800_000, 1_000_000, 1_200_000],
        min_voltage=0.85,
        max_voltage=1.05,
    )
    return ClusterModel.from_spec(
        ClusterSpec(
            name="little",
            core_type="Cortex-A7",
            num_cores=4,
            opp_table=table,
            power_params=PowerParams.from_static_anchors(
                ceff_mw_per_ghz_v2=45.0,
                static_at_vmin_mw=12.0,
                static_at_vmax_mw=28.0,
                vmin=0.85,
                vmax=1.05,
            ),
            ipc_scale=0.6,
        )
    )


def default_big_cluster() -> ClusterModel:
    """A Krait/A15-class quad: the calibrated Nexus 5 core, IPC 1.0."""
    from ..soc.calibration import nexus5_opp_table, nexus5_power_params
    from ..soc.topology import ClusterSpec

    import dataclasses

    params = dataclasses.replace(
        nexus5_power_params(),
        cluster_overhead_base_mw=0.0,
        cluster_overhead_span_mw=0.0,
        cache_base_mw=0.0,
        cache_span_mw=0.0,
        platform_base_mw=0.0,
    )
    return ClusterModel.from_spec(
        ClusterSpec(
            name="big",
            core_type="Krait 400",
            num_cores=4,
            opp_table=nexus5_opp_table(),
            power_params=params,
            ipc_scale=1.0,
        )
    )
