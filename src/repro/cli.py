"""Command-line interface: reproduce experiments and compare policies.

Usage::

    python -m repro list
    python -m repro run fig9a fig10
    python -m repro run fig10 --jobs 4 --cache-dir ~/.cache/repro
    python -m repro specs "Nexus 5"
    python -m repro compare --workload busyloop:40 --duration 60
    python -m repro compare --workload "game:Subway Surf" --seed 3
    python -m repro compare --workload geekbench --jobs 2
    python -m repro trace run --workload busyloop:60 --format perfetto --out trace.json
    python -m repro trace summary trace.json
    python -m repro faults template > plan.json
    python -m repro compare --workload busyloop:60 --faults plan.json
    python -m repro faults demo
    python -m repro scenarios list
    python -m repro scenarios validate examples/scenarios/paper_eval.json
    python -m repro scenarios expand examples/scenarios/paper_eval.json
    python -m repro scenarios run examples/scenarios/paper_eval.json --jobs 4
    python -m repro compare --scenario my_scenario.json
    python -m repro scenarios run matrix.json --jobs 4 --status-dir .status
    python -m repro status .status
    python -m repro status .status --follow
    python -m repro metrics .status
    python -m repro metrics .status --format json
    python -m repro scenarios run matrix.json --store-dir .store --shard 0/2
    python -m repro store query .store --policy mobicore --format csv
    python -m repro store ls .store
    python -m repro store merge .store .store-shard0 .store-shard1
    python -m repro store gc .store

``compare`` runs the Android default and MobiCore on the same demand
(same seed) and prints the paper-style deltas.  ``--jobs N`` fans the
sessions out over N worker processes; ``--cache-dir`` enables the
content-addressed result cache, so warm re-runs simulate nothing.
``--stats`` (on ``run`` and ``compare``) reports what the runner did:
sessions executed, ticks simulated, memo/cache hits, wall time.

``--retries N`` re-schedules crashed/raising/hung executions up to N
times; ``--timeout S`` bounds each spec's wall clock (hung workers are
terminated).  ``--faults plan.json`` injects a deterministic fault plan
(thermal throttle, hotplug failure, mpdecision stall, sensor dropout)
into every session — see ``docs/FAILURE_MODES.md`` for the contract and
``repro faults template`` for the file format.  ``repro faults demo``
runs a clean-vs-faulted A/B showing the injected events end to end.

``--status-dir DIR`` (on every runner-backed command) makes the runner
write a live heartbeat file and a ``metrics.json`` snapshot into DIR:
``repro status DIR`` renders sweep progress from the heartbeat (once,
or continuously with ``--follow``), and ``repro metrics DIR`` dumps the
metrics registry as Prometheus text exposition or JSON.

``trace run`` executes sessions with the tracepoint bus recording and
exports the typed event stream — ``perfetto`` JSON (loadable in
``chrome://tracing`` / ui.perfetto.dev), ``jsonl``, or ``csv``.
``trace summary`` counts events per type in any of those files.

``scenarios`` works with declarative scenario documents
(:mod:`repro.scenario`): ``list`` shows every registered policy,
workload, and platform key; ``validate`` / ``expand`` check and print a
scenario or matrix file; ``run`` compiles and executes one.  ``compare``
and ``run`` also accept ``--scenario file.json`` to take their session
description from a document instead of flags.

``--store-dir DIR`` (instead of ``--cache-dir``) caches into a
queryable :class:`~repro.store.ExperimentStore`: the same blobs, plus
a sqlite index of every run's axes and summary columns.  ``repro store
query DIR`` filters and projects it (``--format table|csv|json``),
``store ls`` summarises it, ``store merge`` unions sharded stores
(checksum conflicts are errors), and ``store gc`` sweeps dangling
column blobs / quarantined corpses / dead index rows.  ``scenarios run
--shard i/n`` runs a deterministic round-robin slice of a matrix, so
shards on different machines merge back into one store.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from .analysis.comparison import PolicyComparison
from .analysis.report import render_table
from .config import SimulationConfig
from .errors import ReproError
from .experiments import get_experiment, list_experiments
from .experiments.registry import EXPERIMENTS
from .faults import FaultPlan, SensorDropoutFault, ThermalThrottleFault
from .obs import (
    events_to_csv,
    events_to_jsonl,
    summarize_trace_file,
    to_chrome_trace,
    validate_chrome_trace,
)
from .obs.metrics_plane import (
    heartbeat_path,
    metrics_path,
    read_heartbeat,
    render_prometheus,
    render_status,
    stats_rows,
)
from .runner import (
    FactoryRef,
    RunnerStats,
    SessionRunner,
    SessionSpec,
    TraceRequest,
    configure_default_runner,
)
from .runner.cache import summary_to_dict
from .scenario import (
    PLATFORM_REGISTRY,
    POLICY_REGISTRY,
    WORKLOAD_REGISTRY,
    Scenario,
    compile_scenario,
    load_scenarios,
    parse_shard,
    policy_ref,
    shard_scenarios,
    workload_ref,
)
from .store import AXIS_COLUMNS, ExperimentStore, StoreQuery
from .soc.catalog import PHONE_CATALOG, get_phone_spec
from .workloads.games import game_workload

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (experiment_id, EXPERIMENTS[experiment_id].description)
        for experiment_id in list_experiments()
    ]
    print(render_table(("id", "description"), rows))
    return 0


def _print_runner_stats(stats: RunnerStats) -> None:
    """Render the ``--stats`` accounting block.

    The rows come from :func:`repro.obs.metrics_plane.stats_rows`, which
    reads them back out of a metrics registry fed by the same bridge the
    exposition uses — so this table and ``repro metrics`` can never
    disagree.  Every row is always present (robustness counters render
    0 on clean runs) and the row set is documented in ``docs/API.md``.
    """
    print(render_table(("runner stats", "value"), stats_rows(stats)))


def _load_fault_plan(path: Optional[str]) -> Optional[FaultPlan]:
    """Load ``--faults`` when given (typed errors handled by main)."""
    if not path:
        return None
    return FaultPlan.load(path)


def _cmd_run(args: argparse.Namespace) -> int:
    if not args.ids and not args.scenario:
        raise ReproError("run needs experiment ids and/or --scenario FILE")
    # Experiment drivers fall back to the default runner; configure it so
    # every figure's session matrix honours --jobs / --cache-dir.
    runner = configure_default_runner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        store_dir=args.store_dir,
        retries=args.retries,
        timeout_seconds=args.timeout,
        status_dir=args.status_dir,
    )
    if args.scenario:
        _run_scenario_batch(load_scenarios(args.scenario), runner, out=None)
    for experiment_id in args.ids:
        experiment = get_experiment(experiment_id)
        print("=" * 72)
        print(f"{experiment_id}: {experiment.description}")
        print("=" * 72)
        started = time.perf_counter()
        result = experiment.run()
        print(result.render())
        print(f"\n[{experiment_id} in {time.perf_counter() - started:.1f} s]\n")
    if args.stats:
        _print_runner_stats(runner.total_stats)
    return 0


def _run_scenario_batch(
    scenarios: List[Scenario],
    runner: SessionRunner,
    out: Optional[str],
) -> None:
    """Compile, execute, and report a scenario batch on *runner*."""
    specs = [compile_scenario(scenario) for scenario in scenarios]
    summaries = runner.run(specs)
    rows = []
    for spec, summary in zip(specs, summaries):
        fps = f"{summary.mean_fps:.1f}" if summary.mean_fps is not None else "-"
        rows.append(
            (
                spec.label,
                f"{summary.mean_power_mw:.0f}",
                fps,
                f"{summary.mean_online_cores:.2f}",
                f"{summary.mean_frequency_khz / 1000:.0f}",
            )
        )
    print(render_table(("scenario", "power mW", "fps", "cores", "MHz"), rows))
    if out:
        document = [summary_to_dict(summary) for summary in summaries]
        Path(out).write_text(
            json.dumps(document, indent=2, sort_keys=True), encoding="utf-8"
        )
        print(f"\nwrote {len(document)} summaries: {out}")


def _cmd_scenarios_list(_args: argparse.Namespace) -> int:
    for registry in (POLICY_REGISTRY, WORKLOAD_REGISTRY, PLATFORM_REGISTRY):
        rows = [(entry.name, entry.summary) for entry in registry.entries()]
        print(render_table((registry.kind, "description"), rows))
        print()
    return 0


def _cmd_scenarios_validate(args: argparse.Namespace) -> int:
    scenarios = load_scenarios(args.file)
    for scenario in scenarios:
        scenario.validate()
    noun = "scenario" if len(scenarios) == 1 else "scenarios"
    print(f"{args.file}: {len(scenarios)} {noun} valid")
    return 0


def _cmd_scenarios_expand(args: argparse.Namespace) -> int:
    scenarios = load_scenarios(args.file)
    rows = [
        (str(index), scenario.describe(), scenario.compile().cache_key()[:12])
        for index, scenario in enumerate(scenarios)
    ]
    print(render_table(("#", "scenario", "cache key"), rows))
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    scenarios = load_scenarios(args.file)
    if args.only:
        try:
            scenarios = [scenarios[index] for index in args.only]
        except IndexError:
            raise ReproError(
                f"--only index out of range; {args.file} expands to "
                f"{len(scenarios)} scenarios"
            ) from None
    if args.shard:
        index, count = parse_shard(args.shard)
        scenarios = shard_scenarios(scenarios, index, count)
        if not scenarios:
            raise ReproError(
                f"shard {args.shard} selects no scenarios "
                f"(the file expands to fewer than {count})"
            )
    runner = SessionRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        store_dir=args.store_dir,
        retries=args.retries,
        timeout_seconds=args.timeout,
        status_dir=args.status_dir,
    )
    _run_scenario_batch(scenarios, runner, out=args.out)
    if args.stats:
        print()
        _print_runner_stats(runner.total_stats)
    return 0


def _cmd_specs(args: argparse.Namespace) -> int:
    names = [args.phone] if args.phone else list(PHONE_CATALOG)
    for name in names:
        spec = get_phone_spec(name)
        print(render_table(("Specification", spec.name), list(spec.spec_rows())))
        print()
    return 0


def _build_workload(description: str) -> FactoryRef:
    """Parse a --workload string into a registered workload factory ref."""
    kind, _, argument = description.partition(":")
    kind = kind.strip().lower()
    if kind == "busyloop":
        level = float(argument) if argument else 50.0
        return workload_ref("busyloop", target_load_percent=level)
    if kind == "game":
        if not argument:
            raise ReproError("game workload needs a title, e.g. game:Subway Surf")
        game_workload(argument)  # validate the title eagerly
        return workload_ref("game", title=argument)
    if kind == "geekbench":
        return workload_ref("geekbench")
    raise ReproError(
        f"unknown workload {description!r}; use busyloop:<percent>, "
        f"game:<title>, or geekbench"
    )


def _compare_scenario(path: str) -> Scenario:
    """Load the single scenario a ``compare --scenario`` file must hold."""
    scenarios = load_scenarios(path)
    if len(scenarios) != 1:
        raise ReproError(
            f"compare --scenario needs a single-scenario file; "
            f"{path} expands to {len(scenarios)} scenarios "
            f"(use: repro scenarios run)"
        )
    return scenarios[0]


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.scenario:
        # The document supplies platform/workload/config/faults; the
        # candidate policy is the scenario's own (MobiCore when the
        # scenario declares the baseline itself).
        scenario = _compare_scenario(args.scenario)
        phone = scenario.platform
        config = scenario.config
        workload = workload_ref(scenario.workload, **dict(scenario.workload_params))
        candidate_name = (
            scenario.policy if scenario.policy != "android-default" else "mobicore"
        )
        entry = POLICY_REGISTRY.get(candidate_name)
        candidate_params = dict(scenario.policy_params)
        if entry.pass_platform:
            candidate_params.setdefault("platform", phone)
        candidate = entry.ref(**candidate_params)
        pin_uncore = scenario.pin_uncore_max
        faults = scenario.faults
    else:
        phone = args.phone
        config = SimulationConfig(
            duration_seconds=args.duration, seed=args.seed, warmup_seconds=args.warmup
        )
        workload = _build_workload(args.workload)
        candidate = policy_ref("mobicore", platform=phone)
        pin_uncore = args.pin_uncore
        faults = _load_fault_plan(args.faults)
    spec = get_phone_spec(phone)  # validate the phone name eagerly
    runner = SessionRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        store_dir=args.store_dir,
        retries=args.retries,
        timeout_seconds=args.timeout,
        status_dir=args.status_dir,
    )
    comparison = PolicyComparison(
        phone,
        baseline_factory=policy_ref("android-default"),
        candidate_factory=candidate,
        config=config,
        pin_uncore_max=pin_uncore,
        runner=runner,
        faults=faults,
    )
    row = comparison.compare(workload)
    rows = [
        ("power (mW)", f"{row.baseline.mean_power_mw:.0f}",
         f"{row.candidate.mean_power_mw:.0f}"),
        ("energy (J)", f"{row.baseline.energy_mj / 1000:.1f}",
         f"{row.candidate.energy_mj / 1000:.1f}"),
        ("active cores", f"{row.baseline.mean_online_cores:.2f}",
         f"{row.candidate.mean_online_cores:.2f}"),
        ("frequency (MHz)", f"{row.baseline.mean_frequency_khz / 1000:.0f}",
         f"{row.candidate.mean_frequency_khz / 1000:.0f}"),
        ("load (%)", f"{row.baseline.mean_load_percent:.1f}",
         f"{row.candidate.mean_load_percent:.1f}"),
        ("quota", f"{row.baseline.mean_quota:.2f}", f"{row.candidate.mean_quota:.2f}"),
    ]
    if row.baseline.mean_fps is not None:
        rows.insert(
            2,
            ("FPS", f"{row.baseline.mean_fps:.1f}", f"{row.candidate.mean_fps:.1f}"),
        )
    print(f"workload: {row.workload}  platform: {spec.name}  "
          f"{config.duration_seconds:.0f}s @ seed {config.seed}\n")
    print(render_table(("metric", "android", "mobicore"), rows))
    print(f"\npower saving: {row.power_saving_percent:+.1f}%")
    if row.fps_ratio is not None:
        print(f"fps ratio:    {row.fps_ratio:.2f}")
    if args.stats:
        print()
        _print_runner_stats(runner.total_stats)
    return 0


def _parse_policies(text: str, phone: str) -> List[Tuple[str, FactoryRef]]:
    """Parse ``--policies android,mobicore`` into labelled registry refs."""
    policies: List[Tuple[str, FactoryRef]] = []
    for name in (part.strip().lower() for part in text.split(",")):
        if not name:
            continue
        if name in ("android", "android-default", "default"):
            policies.append(("android", policy_ref("android-default")))
        elif name == "mobicore":
            policies.append(("mobicore", policy_ref("mobicore", platform=phone)))
        else:
            raise ReproError(
                f"unknown policy {name!r}; --policies takes android and/or mobicore"
            )
    if not policies:
        raise ReproError("--policies must name at least one policy")
    return policies


def _cmd_trace_run(args: argparse.Namespace) -> int:
    spec = get_phone_spec(args.phone)  # validate the phone name eagerly
    config = SimulationConfig(
        duration_seconds=args.duration, seed=args.seed, warmup_seconds=args.warmup
    )
    categories = (
        tuple(c.strip() for c in args.events.split(",") if c.strip())
        if args.events
        else ()
    )
    request = TraceRequest(
        categories=categories, ring_capacity=args.ring, profile=args.profile
    )
    workloads = args.workload or ["busyloop:50"]
    plan = _load_fault_plan(args.faults)
    specs: List[SessionSpec] = []
    for workload in workloads:
        workload_ref = _build_workload(workload)
        for policy_name, policy_ref in _parse_policies(args.policies, args.phone):
            specs.append(
                SessionSpec(
                    platform=args.phone,
                    policy=policy_ref,
                    workload=workload_ref,
                    config=config,
                    pin_uncore_max=args.pin_uncore,
                    label=f"{workload}/{policy_name}",
                    trace=request,
                    faults=plan,
                )
            )

    runner = SessionRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        store_dir=args.store_dir,
        retries=args.retries,
        timeout_seconds=args.timeout,
        status_dir=args.status_dir,
    )
    runner.run(specs)
    sessions = [
        (specs[index].label, runner.last_events.get(index, []))
        for index in range(len(specs))
    ]

    out = Path(args.out)
    if args.format == "perfetto":
        document = to_chrome_trace(sessions)
        validate_chrome_trace(document)
        out.write_text(json.dumps(document), encoding="utf-8")
    elif args.format == "jsonl":
        out.write_text(
            "".join(events_to_jsonl(events, session=label) for label, events in sessions),
            encoding="utf-8",
        )
    else:  # csv
        chunks = []
        for position, (label, events) in enumerate(sessions):
            text = events_to_csv(events, session=label)
            chunks.append(text if position == 0 else text.split("\n", 1)[1])
        out.write_text("".join(chunks), encoding="utf-8")

    rows = []
    for index, session_spec in enumerate(specs):
        counts = runner.last_event_counts.get(index, {})
        buffered = len(runner.last_events.get(index, []))
        rows.append((session_spec.label, str(sum(counts.values())), str(buffered)))
    print(f"platform: {spec.name}  {config.duration_seconds:.0f}s @ seed {config.seed}\n")
    print(render_table(("session", "events", "buffered"), rows))
    print(f"\nwrote {args.format} trace: {out}")
    if args.stats:
        print()
        _print_runner_stats(runner.total_stats)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Render sweep progress from a runner's heartbeat file.

    One-shot by default; ``--follow`` re-reads every ``--interval``
    seconds (clearing the screen between frames, top-style) until the
    batch finishes.
    """
    path = heartbeat_path(args.dir)
    if not args.follow:
        print(render_status(read_heartbeat(path)))
        return 0
    while True:
        state = read_heartbeat(path)
        # ANSI clear + home, so the view refreshes in place like top.
        sys.stdout.write("\x1b[2J\x1b[H")
        print(render_status(state))
        sys.stdout.flush()
        if state.finished:
            return 0
        time.sleep(args.interval)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Dump a runner's persisted metrics snapshot.

    Reads ``metrics.json`` from the status directory and re-renders it —
    Prometheus text exposition by default (the bytes a gateway's
    ``/metrics`` endpoint would serve), or the raw JSON snapshot.
    """
    path = metrics_path(args.dir)
    try:
        snapshot = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ReproError(f"cannot read metrics snapshot {path}: {error}") from error
    except ValueError as error:
        raise ReproError(f"metrics snapshot {path} is not valid JSON: {error}") from error
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_prometheus(snapshot), end="")
    return 0


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    counts = summarize_trace_file(args.file)
    rows = [(key, str(count)) for key, count in sorted(counts.items())]
    rows.append(("total", str(sum(counts.values()))))
    print(render_table(("event", "count"), rows))
    return 0


#: The example plan ``repro faults template`` prints: a mid-session
#: thermal clamp followed by a sensor dropout, ready for ``--faults``.
_TEMPLATE_PLAN = FaultPlan.of(
    ThermalThrottleFault(at_seconds=5.0, duration_seconds=6.0, steps=5),
    SensorDropoutFault(at_seconds=14.0, duration_seconds=3.0),
)


def _cmd_faults_template(_args: argparse.Namespace) -> int:
    print(_TEMPLATE_PLAN.to_json())
    return 0


def _cmd_faults_demo(args: argparse.Namespace) -> int:
    """A clean-vs-faulted A/B on one workload, fault events included."""
    config = SimulationConfig(duration_seconds=args.duration, seed=args.seed)
    plan = _load_fault_plan(args.faults) or _TEMPLATE_PLAN
    policy = policy_ref("android-default")
    workload = _build_workload(args.workload)
    request = TraceRequest(categories=("fault", "policy"))
    specs = [
        SessionSpec(
            platform=args.phone,
            policy=policy,
            workload=workload,
            config=config,
            label="clean",
        ),
        SessionSpec(
            platform=args.phone,
            policy=policy,
            workload=workload,
            config=config,
            label="faulted",
            trace=request,
            faults=plan,
        ),
    ]
    runner = SessionRunner(jobs=args.jobs, retries=args.retries)
    report = runner.run_report(specs)
    report.raise_on_failure()
    clean, faulted = report.summaries

    print(f"fault plan ({len(plan)} windows):")
    for fault in plan.faults:
        until = fault.at_seconds + fault.duration_seconds
        print(f"  {fault.kind}: {fault.at_seconds:g}s -> {until:g}s")
    print()
    events = [
        event
        for event in runner.last_events.get(1, [])
        if event.category == "fault"
    ]
    print("injected fault events:")
    for event in events:
        print(f"  {event.ts_us / 1e6:7.2f}s  {event.fault}: {event.action} ({event.detail})")
    print()
    rows = [
        ("power (mW)", f"{clean.mean_power_mw:.0f}", f"{faulted.mean_power_mw:.0f}"),
        ("frequency (MHz)", f"{clean.mean_frequency_khz / 1000:.0f}",
         f"{faulted.mean_frequency_khz / 1000:.0f}"),
        ("active cores", f"{clean.mean_online_cores:.2f}",
         f"{faulted.mean_online_cores:.2f}"),
        ("load (%)", f"{clean.mean_load_percent:.1f}",
         f"{faulted.mean_load_percent:.1f}"),
    ]
    print(render_table(("metric", "clean", "faulted"), rows))
    print()
    print(report.render())
    if args.out:
        document = to_chrome_trace([("faulted", runner.last_events.get(1, []))])
        validate_chrome_trace(document)
        Path(args.out).write_text(json.dumps(document), encoding="utf-8")
        print(f"\nwrote perfetto trace: {args.out}")
    return 0


def _store_cell(value: object) -> str:
    """One query value rendered for the table/csv formats."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True)
    return str(value)


def _store_query_from_args(args: argparse.Namespace) -> StoreQuery:
    """Fold the ``store query`` axis/projection flags into a StoreQuery."""
    columns = (
        tuple(part.strip() for part in args.columns.split(",") if part.strip())
        if args.columns
        else ()
    )
    return StoreQuery(
        platform=args.platform,
        policy=args.policy,
        workload=args.workload,
        seed=args.seed,
        fault_plan=args.fault_plan,
        label=args.label,
        columns=columns,
        since_schema_version=args.since_schema,
    )


def _cmd_store_query(args: argparse.Namespace) -> int:
    """Filter + project the store index; table, csv, or json output."""
    query = _store_query_from_args(args)
    with ExperimentStore(args.dir) as store:
        rows = store.query(query)
    projection = list(query.projection)
    if args.format == "json":
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if args.format == "csv":
        writer = csv.writer(sys.stdout)
        writer.writerow(projection)
        for row in rows:
            writer.writerow([_store_cell(row[column]) for column in projection])
        return 0
    table_rows = []
    for row in rows:
        cells = []
        for column in projection:
            value = row[column]
            # Full 64-hex keys would drown the table; csv/json keep them.
            if column == "key" and isinstance(value, str):
                value = value[:12]
            cells.append(_store_cell(value))
        table_rows.append(tuple(cells))
    print(render_table(tuple(projection), table_rows))
    noun = "run" if len(rows) == 1 else "runs"
    print(f"\n{len(rows)} {noun}")
    return 0


def _cmd_store_ls(args: argparse.Namespace) -> int:
    """Summarise a store: row counts and the distinct values per axis."""
    with ExperimentStore(args.dir) as store:
        rows = store.query(StoreQuery(columns=("has_columns",) + AXIS_COLUMNS))
        backfilled = store.counters.backfilled
        index_path = store.index_path
    distinct = {
        axis: sorted({str(row[axis]) for row in rows if row[axis] not in (None, "")})
        for axis in AXIS_COLUMNS
    }
    table = [
        ("indexed runs", str(len(rows))),
        ("with trace columns", str(sum(1 for row in rows if row["has_columns"]))),
        ("backfilled on open", str(backfilled)),
    ]
    for axis in AXIS_COLUMNS:
        values = distinct[axis]
        preview = ", ".join(values[:6]) + (", ..." if len(values) > 6 else "")
        table.append((f"{axis} ({len(values)})", preview or "-"))
    print(render_table(("store", str(index_path)), table))
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    """Sweep dangling blobs, quarantined corpses, temp files, dead rows."""
    with ExperimentStore(args.dir) as store:
        report = store.gc()
    rows = [
        ("dangling column blobs", str(len(report.dangling_blobs))),
        ("quarantined corpses", str(len(report.quarantined))),
        ("stale temp files", str(len(report.stale_temp))),
        ("pruned index rows", str(report.pruned_rows)),
    ]
    print(render_table(("gc", "removed"), rows))
    return 0


def _cmd_store_merge(args: argparse.Namespace) -> int:
    """Union shard stores into a destination store, checksum-checked."""
    with ExperimentStore(args.dest) as store:
        for source in args.sources:
            adopted = store.merge(source)
            noun = "run" if adopted == 1 else "runs"
            print(f"{source}: adopted {adopted} {noun}")
        total = len(store)
    noun = "run" if total == 1 else "runs"
    print(f"{args.dest}: {total} {noun} total")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MobiCore reproduction: experiments and policy comparison",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runner_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for session batches (default: serial)",
        )
        command.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="content-addressed result cache; warm re-runs simulate nothing",
        )
        command.add_argument(
            "--store-dir",
            default=None,
            metavar="DIR",
            help="cache into a queryable experiment store (blobs + sqlite "
            "index; read back with: repro store query DIR)",
        )
        command.add_argument(
            "--stats",
            action="store_true",
            help="print runner accounting (sessions, ticks, hits, wall time)",
        )
        command.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="re-schedule crashed/raising/hung executions up to N times",
        )
        command.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-spec wall-clock budget; hung workers are terminated",
        )
        command.add_argument(
            "--status-dir",
            default=None,
            metavar="DIR",
            help="write a live heartbeat + metrics.json here "
            "(watch with: repro status DIR)",
        )

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="regenerate tables/figures by id")
    run.add_argument("ids", nargs="*", metavar="id", help="e.g. fig9a table2")
    run.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="also run a scenario/matrix JSON document",
    )
    add_runner_options(run)
    run.set_defaults(func=_cmd_run)

    scenarios = sub.add_parser(
        "scenarios", help="declarative scenario documents (registries, matrices)"
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    scenarios_list = scenarios_sub.add_parser(
        "list", help="show registered policy/workload/platform keys"
    )
    scenarios_list.set_defaults(func=_cmd_scenarios_list)

    scenarios_validate = scenarios_sub.add_parser(
        "validate", help="check a scenario or matrix file against the registries"
    )
    scenarios_validate.add_argument("file", help="scenario/matrix JSON document")
    scenarios_validate.set_defaults(func=_cmd_scenarios_validate)

    scenarios_expand = scenarios_sub.add_parser(
        "expand", help="print a file's concrete scenarios and cache keys"
    )
    scenarios_expand.add_argument("file", help="scenario/matrix JSON document")
    scenarios_expand.set_defaults(func=_cmd_scenarios_expand)

    scenarios_run = scenarios_sub.add_parser(
        "run", help="compile and execute a scenario or matrix file"
    )
    scenarios_run.add_argument("file", help="scenario/matrix JSON document")
    scenarios_run.add_argument(
        "--only",
        type=int,
        action="append",
        metavar="INDEX",
        help="run only these expansion indices (repeatable; see: expand)",
    )
    scenarios_run.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the summaries as a JSON list",
    )
    scenarios_run.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run round-robin shard i of n of the expansion (e.g. 0/2); "
        "per-shard --store-dir stores merge with: repro store merge",
    )
    add_runner_options(scenarios_run)
    scenarios_run.set_defaults(func=_cmd_scenarios_run)

    status = sub.add_parser(
        "status", help="render sweep progress from a --status-dir heartbeat"
    )
    status.add_argument("dir", help="the directory passed as --status-dir")
    status.add_argument(
        "--follow",
        action="store_true",
        help="refresh continuously (top-style) until the batch finishes",
    )
    status.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period for --follow (default: 1s)",
    )
    status.set_defaults(func=_cmd_status)

    metrics = sub.add_parser(
        "metrics", help="dump the metrics registry written to a --status-dir"
    )
    metrics.add_argument("dir", help="the directory passed as --status-dir")
    metrics.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="text exposition format 0.0.4 (default) or the JSON snapshot",
    )
    metrics.set_defaults(func=_cmd_metrics)

    store = sub.add_parser(
        "store", help="query and maintain experiment stores (--store-dir)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_query = store_sub.add_parser(
        "query", help="filter + project the store's run index"
    )
    store_query.add_argument("dir", help="store directory (the --store-dir)")
    store_query.add_argument("--platform", default=None, help="axis filter")
    store_query.add_argument("--policy", default=None, help="axis filter")
    store_query.add_argument("--workload", default=None, help="axis filter")
    store_query.add_argument("--seed", type=int, default=None, help="axis filter")
    store_query.add_argument(
        "--fault-plan",
        default=None,
        metavar="KINDS",
        help="axis filter: comma-joined fault kinds, or '' for clean runs",
    )
    store_query.add_argument("--label", default=None, help="axis filter")
    store_query.add_argument(
        "--columns",
        default=None,
        metavar="COLS",
        help="comma list of columns to project (default: the overview set)",
    )
    store_query.add_argument(
        "--since-schema",
        type=int,
        default=None,
        metavar="N",
        help="only rows whose cache key schema version is >= N",
    )
    store_query.add_argument(
        "--format",
        choices=("table", "csv", "json"),
        default="table",
        help="output format (default: table; keys shown truncated)",
    )
    store_query.set_defaults(func=_cmd_store_query)

    store_ls = store_sub.add_parser(
        "ls", help="summarise a store: run count and per-axis values"
    )
    store_ls.add_argument("dir", help="store directory (the --store-dir)")
    store_ls.set_defaults(func=_cmd_store_ls)

    store_gc = store_sub.add_parser(
        "gc", help="sweep dangling blobs, quarantined corpses, dead rows"
    )
    store_gc.add_argument("dir", help="store directory (the --store-dir)")
    store_gc.set_defaults(func=_cmd_store_gc)

    store_merge = store_sub.add_parser(
        "merge", help="union shard stores into one (checksum-conflict safe)"
    )
    store_merge.add_argument("dest", help="destination store directory")
    store_merge.add_argument(
        "sources", nargs="+", metavar="SOURCE", help="shard store directories"
    )
    store_merge.set_defaults(func=_cmd_store_merge)

    specs = sub.add_parser("specs", help="show device spec sheets")
    specs.add_argument("phone", nargs="?", help="catalog phone name")
    specs.set_defaults(func=_cmd_specs)

    compare = sub.add_parser(
        "compare", help="Android default vs MobiCore on one workload"
    )
    compare.add_argument(
        "--workload",
        default="busyloop:50",
        help="busyloop:<percent> | game:<title> | geekbench",
    )
    compare.add_argument("--phone", default="Nexus 5", help="catalog phone")
    compare.add_argument("--duration", type=float, default=60.0, help="seconds")
    compare.add_argument("--warmup", type=float, default=4.0, help="seconds")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--pin-uncore",
        action="store_true",
        help="pin GPU/memory at max (the section 3.2 constraint)",
    )
    compare.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="JSON fault plan injected into every session "
        "(see: repro faults template)",
    )
    compare.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="take platform/workload/config from a single-scenario JSON "
        "document instead of the flags above",
    )
    add_runner_options(compare)
    compare.set_defaults(func=_cmd_compare)

    trace = sub.add_parser(
        "trace", help="record and inspect typed event traces (ftrace-style)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_run = trace_sub.add_parser(
        "run", help="run traced sessions and export the event stream"
    )
    trace_run.add_argument(
        "--workload",
        action="append",
        metavar="DESC",
        help="busyloop:<percent> | game:<title> | geekbench; repeatable "
        "(default: busyloop:50)",
    )
    trace_run.add_argument("--phone", default="Nexus 5", help="catalog phone")
    trace_run.add_argument("--duration", type=float, default=60.0, help="seconds")
    trace_run.add_argument("--warmup", type=float, default=4.0, help="seconds")
    trace_run.add_argument("--seed", type=int, default=0)
    trace_run.add_argument(
        "--policies",
        default="android,mobicore",
        help="comma list of android and/or mobicore (default: both)",
    )
    trace_run.add_argument(
        "--format",
        choices=("perfetto", "jsonl", "csv"),
        default="perfetto",
        help="export format (perfetto JSON loads in ui.perfetto.dev)",
    )
    trace_run.add_argument(
        "--out", default="trace.json", metavar="FILE", help="output path"
    )
    trace_run.add_argument(
        "--ring",
        type=int,
        default=None,
        metavar="N",
        help="ring-buffer capacity; oldest events are dropped beyond it",
    )
    trace_run.add_argument(
        "--events",
        default=None,
        metavar="CATS",
        help="comma list of event categories to record "
        "(cpufreq,hotplug,cgroup,cpuidle,sched,policy,counters)",
    )
    trace_run.add_argument(
        "--profile",
        action="store_true",
        help="also time each kernel subsystem's apply step",
    )
    trace_run.add_argument(
        "--pin-uncore",
        action="store_true",
        help="pin GPU/memory at max (the section 3.2 constraint)",
    )
    trace_run.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="JSON fault plan injected into every traced session "
        "(see: repro faults template)",
    )
    add_runner_options(trace_run)
    trace_run.set_defaults(func=_cmd_trace_run)

    trace_summary = trace_sub.add_parser(
        "summary", help="count events per type in a trace file"
    )
    trace_summary.add_argument("file", help="perfetto/jsonl/csv trace file")
    trace_summary.set_defaults(func=_cmd_trace_summary)

    faults = sub.add_parser(
        "faults", help="deterministic fault injection (plans, demo)"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)

    faults_template = faults_sub.add_parser(
        "template", help="print an example fault plan JSON for --faults"
    )
    faults_template.set_defaults(func=_cmd_faults_template)

    faults_demo = faults_sub.add_parser(
        "demo", help="run a clean-vs-faulted A/B and show the injected events"
    )
    faults_demo.add_argument(
        "--workload",
        default="busyloop:70",
        help="busyloop:<percent> | game:<title> | geekbench",
    )
    faults_demo.add_argument("--phone", default="Nexus 5", help="catalog phone")
    faults_demo.add_argument("--duration", type=float, default=20.0, help="seconds")
    faults_demo.add_argument("--seed", type=int, default=0)
    faults_demo.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="JSON fault plan (default: the template plan)",
    )
    faults_demo.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    faults_demo.add_argument(
        "--retries", type=int, default=0, metavar="N", help="retry budget"
    )
    faults_demo.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the faulted session's perfetto trace here",
    )
    faults_demo.set_defaults(func=_cmd_faults_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        # Only the close's own I/O failure is ignorable — anything else
        # (KeyboardInterrupt included) must propagate.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
