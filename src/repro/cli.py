"""Command-line interface: reproduce experiments and compare policies.

Usage::

    python -m repro list
    python -m repro run fig9a fig10
    python -m repro specs "Nexus 5"
    python -m repro compare --workload busyloop:40 --duration 60
    python -m repro compare --workload "game:Subway Surf" --seed 3
    python -m repro compare --workload geekbench

``compare`` runs the Android default and MobiCore on the same demand
(same seed) and prints the paper-style deltas.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .analysis.comparison import PolicyComparison
from .analysis.report import render_table
from .config import SimulationConfig
from .core.mobicore import MobiCorePolicy
from .errors import ReproError
from .experiments import get_experiment, list_experiments
from .experiments.registry import EXPERIMENTS
from .policies.android_default import AndroidDefaultPolicy
from .soc.catalog import PHONE_CATALOG, get_phone_spec
from .workloads.busyloop import BusyLoopApp
from .workloads.games import game_workload
from .workloads.geekbench import GeekbenchWorkload

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (experiment_id, EXPERIMENTS[experiment_id].description)
        for experiment_id in list_experiments()
    ]
    print(render_table(("id", "description"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    for experiment_id in args.ids:
        experiment = get_experiment(experiment_id)
        print("=" * 72)
        print(f"{experiment_id}: {experiment.description}")
        print("=" * 72)
        started = time.perf_counter()
        result = experiment.run()
        print(result.render())
        print(f"\n[{experiment_id} in {time.perf_counter() - started:.1f} s]\n")
    return 0


def _cmd_specs(args: argparse.Namespace) -> int:
    names = [args.phone] if args.phone else list(PHONE_CATALOG)
    for name in names:
        spec = get_phone_spec(name)
        print(render_table(("Specification", spec.name), list(spec.spec_rows())))
        print()
    return 0


def _build_workload(description: str):
    """Parse a --workload string into a fresh workload factory."""
    kind, _, argument = description.partition(":")
    kind = kind.strip().lower()
    if kind == "busyloop":
        level = float(argument) if argument else 50.0
        return lambda: BusyLoopApp(level)
    if kind == "game":
        if not argument:
            raise ReproError("game workload needs a title, e.g. game:Subway Surf")
        game_workload(argument)  # validate the title eagerly
        return lambda: game_workload(argument)
    if kind == "geekbench":
        return GeekbenchWorkload
    raise ReproError(
        f"unknown workload {description!r}; use busyloop:<percent>, "
        f"game:<title>, or geekbench"
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = get_phone_spec(args.phone)
    config = SimulationConfig(
        duration_seconds=args.duration, seed=args.seed, warmup_seconds=args.warmup
    )
    workload_factory = _build_workload(args.workload)
    comparison = PolicyComparison(
        spec,
        baseline_factory=AndroidDefaultPolicy,
        candidate_factory=lambda: MobiCorePolicy(
            power_params=spec.power_params,
            opp_table=spec.opp_table,
            num_cores=spec.num_cores,
        ),
        config=config,
        pin_uncore_max=args.pin_uncore,
    )
    row = comparison.compare(workload_factory)
    rows = [
        ("power (mW)", f"{row.baseline.mean_power_mw:.0f}",
         f"{row.candidate.mean_power_mw:.0f}"),
        ("energy (J)", f"{row.baseline.energy_mj / 1000:.1f}",
         f"{row.candidate.energy_mj / 1000:.1f}"),
        ("active cores", f"{row.baseline.mean_online_cores:.2f}",
         f"{row.candidate.mean_online_cores:.2f}"),
        ("frequency (MHz)", f"{row.baseline.mean_frequency_khz / 1000:.0f}",
         f"{row.candidate.mean_frequency_khz / 1000:.0f}"),
        ("load (%)", f"{row.baseline.mean_load_percent:.1f}",
         f"{row.candidate.mean_load_percent:.1f}"),
        ("quota", f"{row.baseline.mean_quota:.2f}", f"{row.candidate.mean_quota:.2f}"),
    ]
    if row.baseline.mean_fps is not None:
        rows.insert(
            2,
            ("FPS", f"{row.baseline.mean_fps:.1f}", f"{row.candidate.mean_fps:.1f}"),
        )
    print(f"workload: {row.workload}  platform: {spec.name}  "
          f"{config.duration_seconds:.0f}s @ seed {config.seed}\n")
    print(render_table(("metric", "android", "mobicore"), rows))
    print(f"\npower saving: {row.power_saving_percent:+.1f}%")
    if row.fps_ratio is not None:
        print(f"fps ratio:    {row.fps_ratio:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MobiCore reproduction: experiments and policy comparison",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="regenerate tables/figures by id")
    run.add_argument("ids", nargs="+", metavar="id", help="e.g. fig9a table2")
    run.set_defaults(func=_cmd_run)

    specs = sub.add_parser("specs", help="show device spec sheets")
    specs.add_argument("phone", nargs="?", help="catalog phone name")
    specs.set_defaults(func=_cmd_specs)

    compare = sub.add_parser(
        "compare", help="Android default vs MobiCore on one workload"
    )
    compare.add_argument(
        "--workload",
        default="busyloop:50",
        help="busyloop:<percent> | game:<title> | geekbench",
    )
    compare.add_argument("--phone", default="Nexus 5", help="catalog phone")
    compare.add_argument("--duration", type=float, default=60.0, help="seconds")
    compare.add_argument("--warmup", type=float, default=4.0, help="seconds")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--pin-uncore",
        action="store_true",
        help="pin GPU/memory at max (the section 3.2 constraint)",
    )
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
