"""Command-line interface: reproduce experiments and compare policies.

Usage::

    python -m repro list
    python -m repro run fig9a fig10
    python -m repro run fig10 --jobs 4 --cache-dir ~/.cache/repro
    python -m repro specs "Nexus 5"
    python -m repro compare --workload busyloop:40 --duration 60
    python -m repro compare --workload "game:Subway Surf" --seed 3
    python -m repro compare --workload geekbench --jobs 2

``compare`` runs the Android default and MobiCore on the same demand
(same seed) and prints the paper-style deltas.  ``--jobs N`` fans the
sessions out over N worker processes; ``--cache-dir`` enables the
content-addressed result cache, so warm re-runs simulate nothing.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .analysis.comparison import PolicyComparison
from .analysis.report import render_table
from .config import SimulationConfig
from .errors import ReproError
from .experiments import get_experiment, list_experiments
from .experiments.registry import EXPERIMENTS
from .runner import FactoryRef, SessionRunner, configure_default_runner
from .soc.catalog import PHONE_CATALOG, get_phone_spec
from .workloads.games import game_workload

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (experiment_id, EXPERIMENTS[experiment_id].description)
        for experiment_id in list_experiments()
    ]
    print(render_table(("id", "description"), rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    # Experiment drivers fall back to the default runner; configure it so
    # every figure's session matrix honours --jobs / --cache-dir.
    configure_default_runner(jobs=args.jobs, cache_dir=args.cache_dir)
    for experiment_id in args.ids:
        experiment = get_experiment(experiment_id)
        print("=" * 72)
        print(f"{experiment_id}: {experiment.description}")
        print("=" * 72)
        started = time.perf_counter()
        result = experiment.run()
        print(result.render())
        print(f"\n[{experiment_id} in {time.perf_counter() - started:.1f} s]\n")
    return 0


def _cmd_specs(args: argparse.Namespace) -> int:
    names = [args.phone] if args.phone else list(PHONE_CATALOG)
    for name in names:
        spec = get_phone_spec(name)
        print(render_table(("Specification", spec.name), list(spec.spec_rows())))
        print()
    return 0


def _build_workload(description: str) -> FactoryRef:
    """Parse a --workload string into a portable workload factory ref."""
    kind, _, argument = description.partition(":")
    kind = kind.strip().lower()
    if kind == "busyloop":
        level = float(argument) if argument else 50.0
        return FactoryRef.to("repro.workloads.busyloop:BusyLoopApp", level)
    if kind == "game":
        if not argument:
            raise ReproError("game workload needs a title, e.g. game:Subway Surf")
        game_workload(argument)  # validate the title eagerly
        return FactoryRef.to("repro.workloads.games:game_workload", argument)
    if kind == "geekbench":
        return FactoryRef.to("repro.workloads.geekbench:GeekbenchWorkload")
    raise ReproError(
        f"unknown workload {description!r}; use busyloop:<percent>, "
        f"game:<title>, or geekbench"
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = get_phone_spec(args.phone)  # validate the phone name eagerly
    config = SimulationConfig(
        duration_seconds=args.duration, seed=args.seed, warmup_seconds=args.warmup
    )
    runner = SessionRunner(jobs=args.jobs, cache_dir=args.cache_dir)
    comparison = PolicyComparison(
        args.phone,
        baseline_factory=FactoryRef.to(
            "repro.policies.android_default:AndroidDefaultPolicy"
        ),
        candidate_factory=FactoryRef.to(
            "repro.experiments.common:mobicore_for_phone", args.phone
        ),
        config=config,
        pin_uncore_max=args.pin_uncore,
        runner=runner,
    )
    row = comparison.compare(_build_workload(args.workload))
    rows = [
        ("power (mW)", f"{row.baseline.mean_power_mw:.0f}",
         f"{row.candidate.mean_power_mw:.0f}"),
        ("energy (J)", f"{row.baseline.energy_mj / 1000:.1f}",
         f"{row.candidate.energy_mj / 1000:.1f}"),
        ("active cores", f"{row.baseline.mean_online_cores:.2f}",
         f"{row.candidate.mean_online_cores:.2f}"),
        ("frequency (MHz)", f"{row.baseline.mean_frequency_khz / 1000:.0f}",
         f"{row.candidate.mean_frequency_khz / 1000:.0f}"),
        ("load (%)", f"{row.baseline.mean_load_percent:.1f}",
         f"{row.candidate.mean_load_percent:.1f}"),
        ("quota", f"{row.baseline.mean_quota:.2f}", f"{row.candidate.mean_quota:.2f}"),
    ]
    if row.baseline.mean_fps is not None:
        rows.insert(
            2,
            ("FPS", f"{row.baseline.mean_fps:.1f}", f"{row.candidate.mean_fps:.1f}"),
        )
    print(f"workload: {row.workload}  platform: {spec.name}  "
          f"{config.duration_seconds:.0f}s @ seed {config.seed}\n")
    print(render_table(("metric", "android", "mobicore"), rows))
    print(f"\npower saving: {row.power_saving_percent:+.1f}%")
    if row.fps_ratio is not None:
        print(f"fps ratio:    {row.fps_ratio:.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MobiCore reproduction: experiments and policy comparison",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_runner_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for session batches (default: serial)",
        )
        command.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="content-addressed result cache; warm re-runs simulate nothing",
        )

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="regenerate tables/figures by id")
    run.add_argument("ids", nargs="+", metavar="id", help="e.g. fig9a table2")
    add_runner_options(run)
    run.set_defaults(func=_cmd_run)

    specs = sub.add_parser("specs", help="show device spec sheets")
    specs.add_argument("phone", nargs="?", help="catalog phone name")
    specs.set_defaults(func=_cmd_specs)

    compare = sub.add_parser(
        "compare", help="Android default vs MobiCore on one workload"
    )
    compare.add_argument(
        "--workload",
        default="busyloop:50",
        help="busyloop:<percent> | game:<title> | geekbench",
    )
    compare.add_argument("--phone", default="Nexus 5", help="catalog phone")
    compare.add_argument("--duration", type=float, default=60.0, help="seconds")
    compare.add_argument("--warmup", type=float, default=4.0, help="seconds")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--pin-uncore",
        action="store_true",
        help="pin GPU/memory at max (the section 3.2 constraint)",
    )
    add_runner_options(compare)
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
