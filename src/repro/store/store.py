"""The queryable experiment store layered over the content-addressed cache.

:class:`ExperimentStore` promotes the runner's on-disk result cache
(:class:`~repro.runner.cache.ResultCache`) from "have I run this exact
spec?" into a cross-run analysis substrate: every cached summary is
indexed into a sqlite table (``index.sqlite`` in the cache root) keyed
by the **same** sha256 cache key the blobs use, with the experiment
axes — platform, policy, workload, seed, fault plan, label — extracted
from the stored spec payload and the scenario registries, and every
summary scalar promoted to a real column.

The blobs stay canonical.  The index holds the summary's canonical
JSON alongside the derived columns, so reads round-trip bit-identically
(:meth:`ExperimentStore.summaries` rebuilds the exact
:class:`~repro.metrics.summary.SessionSummary` the cache entry holds),
and losing the index loses nothing: opening a store lazily backfills
any unindexed entry from its blob — which is also how a warm pre-store
v3 cache migrates in place with **zero recomputes**.  Live writes are
ingested as they happen via the cache's ``on_store`` hook, through the
same document-shaped code path as backfill, so the two can never drift.

Sharded sweeps (``repro scenarios run --shard i/n``) land in separate
store directories; :meth:`ExperimentStore.merge` unions them by key,
detecting conflicts via the entries' existing sha256 summary checksums
(two stores claiming one key with different checksums is corruption or
a non-deterministic run, and raises :class:`~repro.errors.StoreError`
rather than silently picking a side).  :meth:`ExperimentStore.gc`
sweeps the blob tier's garbage: dangling/orphaned ``.npz`` column
blobs, quarantined corpses, stale temp files, and index rows whose
entry vanished.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .query import (
    AXIS_COLUMNS,
    META_COLUMNS,
    QUERYABLE_COLUMNS,
    SUMMARY_COLUMNS,
    StoreQuery,
)
from ..errors import StoreError
from ..metrics.summary import SessionSummary
from ..runner.cache import ResultCache, summary_from_dict

__all__ = [
    "ExperimentStore",
    "StoreCounters",
    "GcReport",
    "index_row_from_document",
]

#: Version of the sqlite index schema (not of the blob entries — those
#: keep their own :data:`~repro.runner.spec.CACHE_FORMAT_VERSION`).
INDEX_SCHEMA_VERSION = 1

#: Index filename inside the cache root.  Deliberately not ``*.json``,
#: so the blob tier's entry scan never sees it.
INDEX_FILENAME = "index.sqlite"

_CREATE_RUNS = """
CREATE TABLE IF NOT EXISTS runs (
    key TEXT PRIMARY KEY,
    key_schema_version INTEGER NOT NULL,
    entry_version INTEGER NOT NULL,
    checksum TEXT NOT NULL,
    has_columns INTEGER NOT NULL,
    platform TEXT NOT NULL,
    policy TEXT NOT NULL,
    workload TEXT NOT NULL,
    seed INTEGER NOT NULL,
    fault_plan TEXT NOT NULL,
    label TEXT NOT NULL,
    duration_seconds REAL,
    mean_power_mw REAL,
    mean_cpu_power_mw REAL,
    energy_mj REAL,
    mean_frequency_khz REAL,
    mean_online_cores REAL,
    mean_load_percent REAL,
    mean_scaled_load_percent REAL,
    load_std_percent REAL,
    mean_quota REAL,
    mean_fps REAL,
    dvfs_transitions INTEGER,
    hotplug_transitions INTEGER,
    workload_metrics TEXT NOT NULL,
    summary_json TEXT NOT NULL
)
"""

_CREATE_AXIS_INDEX = (
    "CREATE INDEX IF NOT EXISTS runs_axes "
    "ON runs (policy, workload, platform, seed)"
)


def _registry_name(registry, payload: dict) -> Optional[str]:
    """The registered name a factory-ref payload compiles from, if any.

    Matches entries by dotted target, then requires every entry default
    to appear verbatim in the payload's kwargs; among survivors the most
    specific entry (most defaults) wins — which is what separates a
    ``game:asphalt8`` alias (defaults pin the title) from the generic
    ``game`` entry sharing the same factory.  ``None`` when nothing
    registered produces this payload (hand-wired refs outside the
    scenario layer).
    """
    target = payload.get("target")
    kwargs = {name: value for name, value in payload.get("kwargs", ())}
    best: Optional[str] = None
    best_score = -1
    for entry in registry.entries():
        if entry.target != target:
            continue
        defaults = dict(entry.defaults)
        if any(kwargs.get(name) != value for name, value in defaults.items()):
            continue
        if len(defaults) > best_score:
            best, best_score = entry.name, len(defaults)
    return best


def _fault_plan_axis(spec_payload: dict) -> str:
    """The fault-plan axis value: comma-joined kinds, ``""`` when clean."""
    plan = spec_payload.get("faults")
    if not isinstance(plan, dict):
        return ""
    kinds = [
        str(fault.get("kind", "?"))
        for fault in plan.get("faults", ())
        if isinstance(fault, dict)
    ]
    return ",".join(kinds)


def index_row_from_document(key: str, document: dict) -> Dict[str, object]:
    """Derive one index row from a cache entry document.

    The single axis-extraction path: live ingest (the ``on_store``
    hook), lazy backfill, and the blob-scan reference reader all call
    this, so an index row can never disagree with what a fresh read of
    the blob would derive.  Policy and workload axes are resolved back
    to scenario registry names (``"mobicore"``, ``"game:asphalt8"``)
    when the stored factory ref matches a registration, falling back to
    the raw dotted target for hand-wired specs.  The summary rides
    along twice: scalar fields as real columns, and the whole payload
    as canonical JSON (``summary_json``) so reads round-trip
    bit-identically.

    Raises:
        StoreError: When the document lacks the summary/spec structure
            a readable cache entry always has.
    """
    # Imported here (not at module top) so building a store never drags
    # the scenario built-ins in before the caller's own registrations.
    from ..scenario.registry import POLICY_REGISTRY, WORKLOAD_REGISTRY
    from ..scenario import builtins as _builtins  # noqa: F401  (registers names)

    summary = document.get("summary")
    spec = document.get("spec")
    if not isinstance(summary, dict) or not isinstance(spec, dict):
        raise StoreError(f"cache entry {key} has no summary/spec payload to index")

    platform_payload = spec.get("platform")
    if isinstance(platform_payload, str):
        platform = platform_payload
    else:
        platform = str(summary.get("platform", ""))

    policy_payload = spec.get("policy") or {}
    workload_payload = spec.get("workload") or {}
    policy = _registry_name(POLICY_REGISTRY, policy_payload) or str(
        policy_payload.get("target", summary.get("policy", ""))
    )
    workload = _registry_name(WORKLOAD_REGISTRY, workload_payload) or str(
        workload_payload.get("target", summary.get("workload", ""))
    )

    config = spec.get("config") or {}
    row: Dict[str, object] = {
        "key": key,
        "key_schema_version": int(spec.get("version", 0)),
        "entry_version": int(document.get("version", 0)),
        "checksum": str(document.get("checksum", "")),
        "has_columns": 1 if isinstance(document.get("columns"), dict) else 0,
        "platform": platform,
        "policy": policy,
        "workload": workload,
        "seed": int(config.get("seed", summary.get("seed", 0))),
        "fault_plan": _fault_plan_axis(spec),
        "label": str(config.get("label", "")),
        "workload_metrics": json.dumps(
            summary.get("workload_metrics", {}), sort_keys=True, separators=(",", ":")
        ),
        "summary_json": json.dumps(summary, sort_keys=True, separators=(",", ":")),
    }
    for name in SUMMARY_COLUMNS:
        if name == "workload_metrics":
            continue
        row[name] = summary.get(name)
    return row


@dataclass
class StoreCounters:
    """Monotonic self-accounting of one :class:`ExperimentStore`.

    The metrics-plane bridge reads these (``repro_store_*`` families),
    and ``store ls`` prints them; they only ever increase over the
    store object's lifetime.

    Attributes:
        ingests: Live writes indexed through the cache's ``on_store``
            hook.
        backfilled: Pre-existing blob entries indexed by lazy backfill
            (a warm v3 cache migrating in place counts everything
            here, nothing under recomputation).
        queries: Index reads served (:meth:`ExperimentStore.query` /
            :meth:`ExperimentStore.summaries`).
        merged_rows: Rows adopted from other stores by
            :meth:`ExperimentStore.merge`.
        gc_removed: Files removed by :meth:`ExperimentStore.gc`
            (dangling blobs + quarantined corpses + stale temp files).
    """

    ingests: int = 0
    backfilled: int = 0
    queries: int = 0
    merged_rows: int = 0
    gc_removed: int = 0


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`ExperimentStore.gc` sweep actually removed.

    Attributes:
        dangling_blobs: ``.npz`` files whose entry vanished or no
            longer references them (orphaned column blobs).
        quarantined: Files swept out of the quarantine directory.
        stale_temp: Leftover atomic-write staging files (``.*.tmp``)
            from interrupted writers.
        pruned_rows: Index rows deleted because their entry file is
            gone.
    """

    dangling_blobs: Tuple[str, ...] = ()
    quarantined: Tuple[str, ...] = ()
    stale_temp: Tuple[str, ...] = ()
    pruned_rows: int = 0

    @property
    def removed_files(self) -> int:
        """Total files the sweep deleted."""
        return len(self.dangling_blobs) + len(self.quarantined) + len(self.stale_temp)


class ExperimentStore:
    """A sqlite-indexed view over a :class:`ResultCache` directory.

    Args:
        root: The cache/store directory.  Created if missing; an
            existing v3 cache opens in place — every already-cached
            entry is lazily backfilled into the index on open, reading
            blobs only (zero recomputes).
        cache: An existing :class:`ResultCache` to adopt instead of
            constructing one over *root*.  Its ``on_store`` hook is
            taken over by the store so live writes are ingested.

    Attributes:
        cache: The blob tier.  The runner executes and caches through
            it unchanged; the store only observes its writes.
        counters: Monotonic :class:`StoreCounters` for the metrics
            bridge and ``store ls``.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {str(self.root)!r} is not a directory")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise StoreError(f"cannot create store root {self.root}: {error}") from error
        self.cache = cache if cache is not None else ResultCache(self.root)
        self.cache.on_store = self._ingest_write
        self.counters = StoreCounters()
        try:
            self._connection = sqlite3.connect(str(self.index_path))
            # Index rows are always rebuildable from the blobs (backfill),
            # so trading a little durability for write speed is safe.
            self._connection.execute("PRAGMA synchronous = NORMAL")
            self._connection.execute(_CREATE_RUNS)
            self._connection.execute(_CREATE_AXIS_INDEX)
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (name TEXT PRIMARY KEY, value TEXT)"
            )
            self._connection.execute(
                "INSERT OR IGNORE INTO meta (name, value) VALUES (?, ?)",
                ("schema_version", str(INDEX_SCHEMA_VERSION)),
            )
            self._connection.commit()
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open store index {self.index_path}: {error}"
            ) from error
        self.backfill()

    @property
    def index_path(self) -> Path:
        """Where the sqlite index lives (inside the cache root)."""
        return self.root / INDEX_FILENAME

    # -- ingestion -------------------------------------------------------

    def _ingest_write(self, key: str, document: dict) -> None:
        """The cache's ``on_store`` hook: index a write as it lands."""
        self.ingest(key, document)
        self.counters.ingests += 1

    def _upsert(self, key: str, document: dict) -> None:
        """Write one derived index row (no commit — callers batch)."""
        row = index_row_from_document(key, document)
        names = ", ".join(row)
        marks = ", ".join("?" for _ in row)
        try:
            self._connection.execute(
                f"INSERT OR REPLACE INTO runs ({names}) VALUES ({marks})",
                tuple(row.values()),
            )
        except sqlite3.Error as error:
            raise StoreError(f"cannot index cache entry {key}: {error}") from error

    def ingest(self, key: str, document: dict) -> None:
        """Index (or re-index) one cache entry document under *key*."""
        self._upsert(key, document)
        try:
            self._connection.commit()
        except sqlite3.Error as error:
            raise StoreError(f"cannot index cache entry {key}: {error}") from error

    def backfill(self) -> int:
        """Index every blob entry the index does not know yet.

        The in-place migration path for warm pre-store caches: reads
        blobs only, never executes anything, and skips entries already
        indexed — so re-opening a store is O(entries) stat+select, not
        O(entries) JSON parses.  Unreadable blobs are left to the
        runner's corrupt-entry machinery (they are not index material).

        Returns:
            How many entries were newly indexed.
        """
        try:
            known = {
                row[0]
                for row in self._connection.execute("SELECT key FROM runs").fetchall()
            }
        except sqlite3.Error as error:
            raise StoreError(f"cannot enumerate store index: {error}") from error
        added = 0
        for key in self.cache.keys():
            if key in known:
                continue
            document = self.cache.read_document(key)
            if document is None:
                continue
            try:
                self._upsert(key, document)
            except StoreError:
                # A blob without the expected structure is corrupt-entry
                # territory, not index territory: leave it to lookup().
                continue
            added += 1
        if added:
            try:
                self._connection.commit()
            except sqlite3.Error as error:
                raise StoreError(f"cannot commit store backfill: {error}") from error
        self.counters.backfilled += added
        return added

    # -- reads -----------------------------------------------------------

    def query(self, query: Optional[StoreQuery] = None) -> List[Dict[str, object]]:
        """Projected index rows matching *query*, ordered by key.

        Each row is a plain dict of the query's projection columns.
        ``has_columns`` reads back as a bool and ``workload_metrics``
        as a dict; everything else is the scalar the summary holds.
        """
        query = query or StoreQuery()
        projection = query.projection
        where, params = query.filters()
        sql = (
            f"SELECT {', '.join(projection)} FROM runs "
            f"WHERE {where} ORDER BY key"
        )
        try:
            fetched = self._connection.execute(sql, params).fetchall()
        except sqlite3.Error as error:
            raise StoreError(f"store query failed: {error}") from error
        self.counters.queries += 1
        rows = [dict(zip(projection, values)) for values in fetched]
        for row in rows:
            if "has_columns" in row:
                row["has_columns"] = bool(row["has_columns"])
            if "workload_metrics" in row:
                row["workload_metrics"] = json.loads(row["workload_metrics"])
        return rows

    def scan(self, query: Optional[StoreQuery] = None) -> List[Dict[str, object]]:
        """The same read answered from the blobs alone (no index).

        The reference implementation :meth:`query` must agree with —
        ``benchmarks/bench_store.py`` asserts equality before timing
        the two, and the CI smoke job replays that check.  Cost is a
        full directory scan with one JSON parse per entry, which is
        exactly the O(n) the index exists to avoid.
        """
        query = query or StoreQuery()
        projection = query.projection
        rows: List[Dict[str, object]] = []
        for key in self.cache.keys():
            document = self.cache.read_document(key)
            if document is None:
                continue
            try:
                full = index_row_from_document(key, document)
            except StoreError:
                continue
            if not query.matches(full):
                continue
            row = {name: full.get(name) for name in projection}
            if "has_columns" in row:
                row["has_columns"] = bool(row["has_columns"])
            if "workload_metrics" in row:
                row["workload_metrics"] = json.loads(full["workload_metrics"])
            rows.append(row)
        rows.sort(key=lambda row: str(row.get("key", "")))
        return rows

    def summaries(self, query: Optional[StoreQuery] = None) -> List[SessionSummary]:
        """Full :class:`SessionSummary` rows matching *query*, by key order.

        Rebuilt from the canonical ``summary_json`` the index carries,
        so every float is bit-identical to what
        :meth:`~repro.runner.cache.ResultCache.lookup` would return for
        the same entry.
        """
        query = query or StoreQuery()
        where, params = query.filters()
        try:
            fetched = self._connection.execute(
                f"SELECT summary_json FROM runs WHERE {where} ORDER BY key", params
            ).fetchall()
        except sqlite3.Error as error:
            raise StoreError(f"store query failed: {error}") from error
        self.counters.queries += 1
        return [summary_from_dict(json.loads(text)) for (text,) in fetched]

    def index_row(self, key: str) -> Optional[Dict[str, object]]:
        """The complete index row for *key*, or ``None`` when unindexed."""
        try:
            fetched = self._connection.execute(
                f"SELECT {', '.join(QUERYABLE_COLUMNS)}, summary_json "
                "FROM runs WHERE key = ?",
                (key,),
            ).fetchone()
        except sqlite3.Error as error:
            raise StoreError(f"store query failed: {error}") from error
        if fetched is None:
            return None
        return dict(zip(QUERYABLE_COLUMNS + ("summary_json",), fetched))

    def keys(self) -> List[str]:
        """Every indexed cache key, sorted."""
        try:
            fetched = self._connection.execute(
                "SELECT key FROM runs ORDER BY key"
            ).fetchall()
        except sqlite3.Error as error:
            raise StoreError(f"cannot enumerate store index: {error}") from error
        return [key for (key,) in fetched]

    def __len__(self) -> int:
        """Number of indexed runs."""
        try:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM runs"
            ).fetchone()
        except sqlite3.Error as error:
            raise StoreError(f"cannot count store index: {error}") from error
        return int(count)

    def __contains__(self, key: object) -> bool:
        """``key in store`` — membership in the index."""
        try:
            return (
                self._connection.execute(
                    "SELECT 1 FROM runs WHERE key = ?", (key,)
                ).fetchone()
                is not None
            )
        except sqlite3.Error as error:
            raise StoreError(f"store query failed: {error}") from error

    # -- merge -----------------------------------------------------------

    def merge(self, other: Union["ExperimentStore", str, os.PathLike]) -> int:
        """Union *other*'s runs into this store, key by key.

        The sharded-sweep join: each ``--shard i/n`` half runs into its
        own store directory, then one ``merge`` per shard folds them
        into the canonical store.  For every key the other store holds:

        * unknown here — the entry blob (and its ``.npz`` column blob,
          when present) is copied in atomically and indexed;
        * already here with the **same** summary checksum — skipped
          (idempotent re-merge);
        * already here with a **different** checksum — the runs
          disagree about one content address, which determinism says
          cannot happen; raises :class:`~repro.errors.StoreError`
          before anything is overwritten.

        Returns:
            How many runs were newly adopted.
        """
        source = (
            other
            if isinstance(other, ExperimentStore)
            else ExperimentStore(other)
        )
        try:
            fetched = source._connection.execute(
                "SELECT key, checksum FROM runs ORDER BY key"
            ).fetchall()
        except sqlite3.Error as error:
            raise StoreError(f"cannot enumerate merge source: {error}") from error
        adopted = 0
        for key, checksum in fetched:
            mine = self._connection.execute(
                "SELECT checksum FROM runs WHERE key = ?", (key,)
            ).fetchone()
            if mine is not None:
                if mine[0] != checksum:
                    raise StoreError(
                        f"merge conflict on key {key}: summary checksums differ "
                        f"(ours {mine[0][:12]}..., theirs {str(checksum)[:12]}...)"
                    )
                continue
            document = source.cache.read_document(key)
            if document is None:
                continue
            entry_bytes = source.cache.path(key).read_bytes()
            self.cache._write_atomic(self.cache.path(key), entry_bytes, key)
            source_blob = source.cache.columns_path(key)
            if isinstance(document.get("columns"), dict) and source_blob.is_file():
                self.cache._write_atomic(
                    self.cache.columns_path(key), source_blob.read_bytes(), key
                )
            self._upsert(key, document)
            adopted += 1
        if adopted:
            try:
                self._connection.commit()
            except sqlite3.Error as error:
                raise StoreError(f"cannot commit store merge: {error}") from error
        self.counters.merged_rows += adopted
        return adopted

    # -- garbage collection ----------------------------------------------

    def gc(self) -> GcReport:
        """Sweep the blob tier's garbage and prune dead index rows.

        Removes ``.npz`` column blobs whose entry vanished or no longer
        references a blob (orphans from crashes between the blob and
        entry writes, or from quarantined entries), everything in the
        quarantine directory (corrupt corpses kept only for post-mortem
        inspection), and stale atomic-write staging files.  Index rows
        whose entry file is gone are deleted — the index never claims a
        run the blobs cannot back.
        """
        dangling: List[str] = []
        for blob in sorted(self.root.glob("*.npz")):
            key = blob.stem
            document = self.cache.read_document(key)
            if document is None or not isinstance(document.get("columns"), dict):
                blob.unlink()
                dangling.append(blob.name)
        quarantined: List[str] = []
        quarantine = self.cache.quarantine_root
        if quarantine.is_dir():
            for corpse in sorted(quarantine.iterdir()):
                if corpse.is_file():
                    corpse.unlink()
                    quarantined.append(corpse.name)
        stale: List[str] = []
        for temp in sorted(self.root.glob(".*.tmp")):
            temp.unlink()
            stale.append(temp.name)
        live = set(self.cache.keys())
        pruned = 0
        for key in self.keys():
            if key not in live:
                self._connection.execute("DELETE FROM runs WHERE key = ?", (key,))
                pruned += 1
        self._connection.commit()
        report = GcReport(
            dangling_blobs=tuple(dangling),
            quarantined=tuple(quarantined),
            stale_temp=tuple(stale),
            pruned_rows=pruned,
        )
        self.counters.gc_removed += report.removed_files
        return report

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Commit and close the index connection (idempotent)."""
        if getattr(self, "_connection", None) is not None:
            self._connection.commit()
            self._connection.close()
            self._connection = None
        if self.cache.on_store == self._ingest_write:
            self.cache.on_store = None

    def __enter__(self) -> "ExperimentStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the index connection."""
        self.close()
