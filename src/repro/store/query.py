"""The typed query surface of the experiment store.

A :class:`StoreQuery` names what a caller wants out of the index —
axis filters (platform / policy / workload / seed / fault plan /
label), a column projection, and an optional key-schema-version
predicate — as one frozen value.  The CLI (``repro store query``), the
analysis constructors, and ``benchmarks/bench_store.py`` all build the
same dataclass, so "what is queryable" is defined exactly once, here,
and validated before any SQL is assembled.

Column names are a closed vocabulary (:data:`QUERYABLE_COLUMNS`):
the index row's identity/meta columns, the six experiment axes, and
every scalar field of
:class:`~repro.metrics.summary.SessionSummary`.  Unknown names raise
:class:`~repro.errors.StoreError` at construction, so a typo fails
loudly in the dataclass, never as a malformed SQL string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import StoreError

__all__ = [
    "AXIS_COLUMNS",
    "META_COLUMNS",
    "SUMMARY_COLUMNS",
    "QUERYABLE_COLUMNS",
    "DEFAULT_PROJECTION",
    "StoreQuery",
]

#: Identity and provenance columns of one index row.
META_COLUMNS: Tuple[str, ...] = (
    "key",
    "key_schema_version",
    "entry_version",
    "checksum",
    "has_columns",
)

#: The experiment axes every row is indexed by — the (platform, policy,
#: workload, seed) grid of the paper plus the fault plan and the
#: free-form config label.
AXIS_COLUMNS: Tuple[str, ...] = (
    "platform",
    "policy",
    "workload",
    "seed",
    "fault_plan",
    "label",
)

#: Summary fields promoted into real columns (scalars queryable and
#: projectable directly; ``workload_metrics`` rides along as JSON).
SUMMARY_COLUMNS: Tuple[str, ...] = (
    "duration_seconds",
    "mean_power_mw",
    "mean_cpu_power_mw",
    "energy_mj",
    "mean_frequency_khz",
    "mean_online_cores",
    "mean_load_percent",
    "mean_scaled_load_percent",
    "load_std_percent",
    "mean_quota",
    "mean_fps",
    "dvfs_transitions",
    "hotplug_transitions",
    "workload_metrics",
)

#: Every name a :class:`StoreQuery` projection may use.
QUERYABLE_COLUMNS: Tuple[str, ...] = META_COLUMNS + AXIS_COLUMNS + SUMMARY_COLUMNS

#: What ``store query`` shows when no projection is asked for: the run's
#: identity, its grid coordinates, and the headline power/fps numbers.
DEFAULT_PROJECTION: Tuple[str, ...] = (
    "key",
    "platform",
    "policy",
    "workload",
    "seed",
    "mean_power_mw",
    "energy_mj",
    "mean_fps",
)


@dataclass(frozen=True)
class StoreQuery:
    """One declarative read of the experiment index.

    Attributes:
        platform: Exact-match filter on the platform axis (catalog
            name, e.g. ``"Nexus 5"``); ``None`` matches everything.
        policy: Exact-match filter on the registry policy name
            (``"mobicore"``, ``"android-default"``, ...).
        workload: Exact-match filter on the registry workload name
            (``"busyloop"``, ``"game:asphalt8"``, ...).
        seed: Exact-match filter on the config seed.
        fault_plan: Exact-match filter on the fault-plan axis — the
            comma-joined fault kinds of the spec's plan, ``""`` for
            clean runs (so ``fault_plan=""`` selects exactly the
            fault-free grid).
        label: Exact-match filter on the config label.
        columns: Projection — which columns the result rows carry, in
            order.  Empty means :data:`DEFAULT_PROJECTION`.  Names
            outside :data:`QUERYABLE_COLUMNS` raise
            :class:`~repro.errors.StoreError` immediately.
        since_schema_version: Keep only rows whose spec was addressed
            at ``key_schema_version >=`` this value — "everything since
            the schema change" without naming keys.
    """

    platform: Optional[str] = None
    policy: Optional[str] = None
    workload: Optional[str] = None
    seed: Optional[int] = None
    fault_plan: Optional[str] = None
    label: Optional[str] = None
    columns: Tuple[str, ...] = field(default=())
    since_schema_version: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        unknown = [name for name in self.columns if name not in QUERYABLE_COLUMNS]
        if unknown:
            raise StoreError(
                f"unknown store column(s) {unknown}; "
                f"available: {', '.join(QUERYABLE_COLUMNS)}"
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise StoreError(f"seed filter must be an int, got {self.seed!r}")
        if self.since_schema_version is not None and not isinstance(
            self.since_schema_version, int
        ):
            raise StoreError(
                "since_schema_version must be an int, "
                f"got {self.since_schema_version!r}"
            )

    @property
    def projection(self) -> Tuple[str, ...]:
        """The effective column projection (default when none named)."""
        return self.columns or DEFAULT_PROJECTION

    def filters(self) -> Tuple[str, Tuple[object, ...]]:
        """The WHERE clause and parameter tuple this query compiles to.

        Every fragment is built from the fixed column vocabulary with
        ``?`` placeholders — values never reach the SQL string — and an
        unfiltered query compiles to the always-true clause.
        """
        clauses: List[str] = []
        params: List[object] = []
        for axis in AXIS_COLUMNS:
            value = getattr(self, axis)
            if value is not None:
                clauses.append(f"{axis} = ?")
                params.append(value)
        if self.since_schema_version is not None:
            clauses.append("key_schema_version >= ?")
            params.append(self.since_schema_version)
        return (" AND ".join(clauses) or "1=1", tuple(params))

    def matches(self, row: dict) -> bool:
        """Whether a fully-materialised index row satisfies the filters.

        The pure-Python twin of :meth:`filters`, used by the blob-scan
        reference path (:meth:`ExperimentStore.scan
        <repro.store.store.ExperimentStore.scan>`) so index-backed and
        scan-backed reads answer from one predicate definition.
        """
        for axis in AXIS_COLUMNS:
            value = getattr(self, axis)
            if value is not None and row.get(axis) != value:
                return False
        if (
            self.since_schema_version is not None
            and row.get("key_schema_version", 0) < self.since_schema_version
        ):
            return False
        return True
