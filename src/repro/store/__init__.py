"""Queryable experiment store over the content-addressed result cache.

The runner's blob cache answers one question: "have I run this exact
spec?".  This package layers the question the paper's evaluation grid
actually asks — *"give me mean_power_mw for every mobicore run on
Nexus 5 since the schema change"* — on top of those same blobs:

* :class:`~repro.store.store.ExperimentStore` — a sqlite index
  (``index.sqlite`` in the cache root) keyed by the existing sha256
  cache keys.  Live cache writes are ingested as they happen; opening
  a warm pre-store cache lazily backfills every entry from its blob
  with zero recomputes.  ``merge`` unions sharded-sweep stores with
  checksum conflict detection; ``gc`` sweeps dangling column blobs,
  quarantined corpses, and dead index rows.
* :class:`~repro.store.query.StoreQuery` — the one typed description
  of a read (axis filters, column projection, key-schema-version
  floor) shared by the CLI, the analysis constructors, and the
  benchmark.

See TUTORIAL §15 ("Querying past runs") for the workflow and
``docs/API.md`` for the reference.
"""

from __future__ import annotations

from .query import (
    AXIS_COLUMNS,
    DEFAULT_PROJECTION,
    META_COLUMNS,
    QUERYABLE_COLUMNS,
    SUMMARY_COLUMNS,
    StoreQuery,
)
from .store import (
    ExperimentStore,
    GcReport,
    StoreCounters,
    index_row_from_document,
)
from ..errors import StoreError

__all__ = [
    "ExperimentStore",
    "StoreQuery",
    "StoreCounters",
    "GcReport",
    "StoreError",
    "index_row_from_document",
    "AXIS_COLUMNS",
    "META_COLUMNS",
    "SUMMARY_COLUMNS",
    "QUERYABLE_COLUMNS",
    "DEFAULT_PROJECTION",
]
