"""Compile scenarios into runner specs, and run them.

The compiler is the only bridge between the declarative layer and the
execution layer: a :class:`~repro.scenario.scenario.Scenario` goes in, a
portable :class:`~repro.runner.spec.SessionSpec` comes out, and
:class:`~repro.runner.runner.SessionRunner` takes it from there
unchanged.  Compilation is where registry keys are actually resolved —
an unknown policy/workload/platform name raises
:class:`~repro.errors.RegistryError` here, listing the known keys.

The compiled spec keeps the platform as its catalog *name string* (the
shape every hand-wired driver used), so scenarios land on the same
runner cache addresses the legacy paths populated.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..errors import ScenarioError
from ..metrics.summary import SessionSummary
from ..obs.metrics_plane.spans import span
from ..runner.runner import SessionRunner, default_runner
from ..runner.spec import SessionSpec
from .matrix import ScenarioMatrix
from .registry import PLATFORM_REGISTRY, POLICY_REGISTRY, workload_ref
from .scenario import Scenario

__all__ = [
    "compile_scenario",
    "compile_matrix",
    "run_scenarios",
    "load_scenarios",
    "default_label",
]


def default_label(scenario: Scenario) -> str:
    """The label a compiled spec gets when the scenario declares none.

    ``workload/policy@seed`` — enough to group a batch's summaries back
    into rows without consulting the scenario list.
    """
    return f"{scenario.workload}/{scenario.policy}@{scenario.config.seed}"


def compile_scenario(scenario: Scenario) -> SessionSpec:
    """The :class:`SessionSpec` equivalent of one scenario.

    Raises:
        RegistryError: The scenario names an unknown policy, workload,
            or platform.
        ScenarioError: A factory parameter is rejected by the ref layer.
    """
    if not isinstance(scenario, Scenario):
        raise ScenarioError(
            f"expected a Scenario, got {type(scenario).__name__}"
        )
    # Ambient profiling span: a no-op unless the caller installed a
    # profiler (runner workers do, so sweep breakdowns show compile cost).
    with span("compile"):
        # Resolve the platform through the registry purely for validation —
        # the spec itself carries the catalog name so cache addresses match
        # the hand-wired drivers byte for byte.
        PLATFORM_REGISTRY.get(scenario.platform)
        entry = POLICY_REGISTRY.get(scenario.policy)
        policy_params = dict(scenario.policy_params)
        if entry.pass_platform:
            # Explicit policy_params win; the scenario's platform fills in.
            policy_params.setdefault("platform", scenario.platform)
        policy = entry.ref(**policy_params)
        workload = workload_ref(scenario.workload, **dict(scenario.workload_params))
        return SessionSpec(
            platform=scenario.platform,
            policy=policy,
            workload=workload,
            config=scenario.config,
            pin_uncore_max=scenario.pin_uncore_max,
            label=scenario.label or default_label(scenario),
            trace=scenario.trace,
            faults=scenario.faults,
        )


def compile_matrix(matrix: ScenarioMatrix) -> List[SessionSpec]:
    """Every grid point of a matrix, compiled in expansion order."""
    if not isinstance(matrix, ScenarioMatrix):
        raise ScenarioError(
            f"expected a ScenarioMatrix, got {type(matrix).__name__}"
        )
    return [compile_scenario(scenario) for scenario in matrix.expand()]


def run_scenarios(
    scenarios: Union[Scenario, ScenarioMatrix, Iterable[Scenario]],
    runner: Optional[SessionRunner] = None,
) -> List[SessionSummary]:
    """Compile and execute scenarios on a runner, in order.

    Accepts a single scenario, a matrix (expanded first), or any
    iterable of scenarios.  Uses the process-wide
    :func:`~repro.runner.runner.default_runner` unless one is passed, so
    callers inherit the configured parallelism and cache.
    """
    if isinstance(scenarios, Scenario):
        specs = [compile_scenario(scenarios)]
    elif isinstance(scenarios, ScenarioMatrix):
        specs = compile_matrix(scenarios)
    else:
        specs = [compile_scenario(scenario) for scenario in scenarios]
    active = runner if runner is not None else default_runner()
    return active.run(specs)


def load_scenarios(path: Union[str, Path]) -> List[Scenario]:
    """Read a scenario file and return its concrete scenarios.

    The document may be a single scenario or a matrix — matrices are
    recognised by their ``axes`` key and expanded.  Used by the CLI so
    ``--scenario file.json`` accepts either spelling.
    """
    import json

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise ScenarioError(f"cannot read scenario file {path}: {error}") from error
    try:
        doc = json.loads(text)
    except ValueError as error:
        raise ScenarioError(
            f"scenario file {path} is not valid JSON: {error}"
        ) from error
    if isinstance(doc, dict) and ("axes" in doc or "base" in doc):
        return ScenarioMatrix.from_payload(doc).expand()
    return [Scenario.from_payload(doc)]
