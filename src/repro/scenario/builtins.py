"""The built-in component catalog: every policy, workload, and platform
the paper's evaluation touches, registered by string key.

Importing :mod:`repro.scenario` loads this module once, so scenario
documents can name components ("mobicore", "game:asphalt8", "Nexus 5")
without any driver wiring.  The factory functions below are the
:class:`~repro.runner.spec.FactoryRef` targets the compiled
``SessionSpec``s carry — module-level, keyword-only-primitive callables
that worker processes import and call.

Policies whose construction depends on the device (MobiCore's energy
model is fit on the deployment phone, section 4.1.2) are registered with
``pass_platform=True``: the scenario compiler injects the scenario's
platform name as the ``platform`` keyword automatically.
"""

from __future__ import annotations

from ..core.mobicore import MobiCorePolicy
from ..policies.android_default import AndroidDefaultPolicy
from ..policies.energy_aware import EnergyAwarePolicy
from ..policies.single_mechanism import (
    DcsOnlyPolicy,
    DvfsOnlyPolicy,
    RaceToIdlePolicy,
)
from ..policies.static import StaticPolicy
from ..soc.catalog import HETERO_CATALOG, PHONE_CATALOG, get_phone_spec
from ..workloads.busyloop import BusyLoopApp
from ..workloads.games import GAME_PROFILES, GameWorkload, game_workload
from ..workloads.geekbench import GeekbenchWorkload
from .registry import (
    PLATFORM_REGISTRY,
    WORKLOAD_REGISTRY,
    register_policy,
    register_workload,
)

__all__ = [
    "android_default_policy",
    "mobicore_policy",
    "static_policy",
    "dvfs_only_policy",
    "dcs_only_policy",
    "race_to_idle_policy",
    "energy_aware_policy",
    "busyloop_app",
    "geekbench_app",
    "game_session",
    "game_key",
]


# -- policies ------------------------------------------------------------


@register_policy("android-default")
def android_default_policy() -> AndroidDefaultPolicy:
    """Stock Android 6.0: per-core ondemand DVFS + default hotplug driver."""
    return AndroidDefaultPolicy()


@register_policy("mobicore", pass_platform=True)
def mobicore_policy(
    platform: str = "Nexus 5",
    offline_threshold_percent: float = 10.0,
    use_quota: bool = True,
    use_optimizer: bool = True,
    use_dcs: bool = True,
) -> MobiCorePolicy:
    """MobiCore calibrated for a catalog phone (the paper's policy)."""
    spec = get_phone_spec(platform)
    return MobiCorePolicy(
        power_params=spec.power_params,
        opp_table=spec.opp_table,
        num_cores=spec.num_cores,
        offline_threshold_percent=offline_threshold_percent,
        use_quota=use_quota,
        use_optimizer=use_optimizer,
        use_dcs=use_dcs,
    )


@register_policy("static")
def static_policy(online_count: int, frequency_khz: int) -> StaticPolicy:
    """Pin an exact (cores, frequency) operating point (section 3 sweeps)."""
    return StaticPolicy(online_count, frequency_khz)


@register_policy("dvfs-only")
def dvfs_only_policy(governor: str = "ondemand", num_cores: int = 4) -> DvfsOnlyPolicy:
    """Ablation baseline: a stock governor per core, no core scaling."""
    return DvfsOnlyPolicy(governor_name=governor, num_cores=num_cores)


@register_policy("dcs-only")
def dcs_only_policy(frequency_khz: int = 0) -> DcsOnlyPolicy:
    """Ablation baseline: fixed frequency (0 = fmax), hotplug-only scaling."""
    return DcsOnlyPolicy(frequency_khz=frequency_khz or None)


@register_policy("race-to-idle")
def race_to_idle_policy() -> RaceToIdlePolicy:
    """All cores online at fmax: the principle section 4.1.2 argues against."""
    return RaceToIdlePolicy()


@register_policy("energy-aware", pass_platform=True)
def energy_aware_policy(
    platform: str = "Odroid-XU3",
    target_utilization: float = 0.8,
    switch_margin_percent: float = 5.0,
    min_residency_ticks: int = 3,
) -> EnergyAwarePolicy:
    """EAS-style model-driven placement over the platform's frequency domains."""
    return EnergyAwarePolicy.for_platform_spec(
        get_phone_spec(platform),
        target_utilization=target_utilization,
        switch_margin_percent=switch_margin_percent,
        min_residency_ticks=min_residency_ticks,
    )


# -- workloads -----------------------------------------------------------


@register_workload("busyloop")
def busyloop_app(
    target_load_percent: float = 50.0,
    num_threads: int = 0,
    idle_gap_seconds: float = 0.040,
    cycle_seconds: float = 1.0,
    reference_frequency_khz: int = 0,
) -> BusyLoopApp:
    """The paper's in-house kernel app: busy loops at a target load."""
    return BusyLoopApp(
        target_load_percent,
        num_threads=num_threads,
        idle_gap_seconds=idle_gap_seconds,
        cycle_seconds=cycle_seconds,
        reference_frequency_khz=reference_frequency_khz,
    )


@register_workload("geekbench")
def geekbench_app() -> GeekbenchWorkload:
    """The GeekBench-4-like phased benchmark (Figure 9b)."""
    return GeekbenchWorkload()


@register_workload("game")
def game_session(title: str) -> GameWorkload:
    """One of the five evaluation games, by its paper title."""
    return game_workload(title)


def game_key(title: str) -> str:
    """The registry alias for a game title: ``"Asphalt 8" -> "game:asphalt8"``."""
    return "game:" + "".join(ch for ch in title.lower() if ch.isalnum())


# Each game also gets its own key ("game:asphalt8"), so scenario axes can
# enumerate games without carrying a params dict per point.
for _title in GAME_PROFILES:
    WORKLOAD_REGISTRY.add(
        game_key(_title),
        f"{game_session.__module__}:{game_session.__qualname__}",
        defaults={"title": _title},
        summary=f"{_title} gaming session (section 6 evaluation)",
    )


# -- platforms -----------------------------------------------------------

# The Figure 1 phone fleet, keyed exactly like repro.soc.catalog so a
# scenario's platform string doubles as the SessionSpec platform name
# (which keeps compiled cache addresses stable).
for _name, _factory in PHONE_CATALOG.items():
    PLATFORM_REGISTRY.add(
        _name,
        f"{_factory.__module__}:{_factory.__qualname__}",
        summary=(_factory.__doc__ or "").strip().splitlines()[0],
    )

# The heterogeneous (big.LITTLE) boards live in their own catalog so the
# Figure 1 fleet sweeps stay exactly the six phones the paper measured;
# scenarios name them the same way ("Odroid-XU3", "Galaxy S6").
for _name, _factory in HETERO_CATALOG.items():
    PLATFORM_REGISTRY.add(
        _name,
        f"{_factory.__module__}:{_factory.__qualname__}",
        summary=(_factory.__doc__ or "").strip().splitlines()[0],
    )
