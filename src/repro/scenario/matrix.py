"""ScenarioMatrix: a base scenario plus axes, expanded into the grid.

Every figure driver in the repo runs the same shape of experiment: take
one session description and vary a handful of dimensions — policy x game
x seed x quota — then fold the resulting summaries back into rows.  A
:class:`ScenarioMatrix` states that grid declaratively: a base
:class:`~repro.scenario.scenario.Scenario` and an ordered mapping of
axis name to value list.  :meth:`ScenarioMatrix.expand` walks the
cartesian product with the **last axis fastest** (``itertools.product``
order), so a matrix whose final axis is ``policy`` yields
baseline/candidate adjacent — exactly the ordering
``PolicyComparison.compare_matrix`` folds into comparison rows.

Axis vocabulary:

- ``"platform"``, ``"policy"``, ``"workload"``, ``"label"``,
  ``"pin_uncore_max"`` — replace the scenario field.
- ``"seed"`` — shorthand for ``config.seed``.
- ``"config.<field>"`` — any :class:`~repro.config.SimulationConfig`
  field (``config.duration_seconds``, ...).
- ``"policy_params.<name>"`` / ``"workload_params.<name>"`` — set one
  factory parameter, merged over the base scenario's params.

Anything else raises :class:`~repro.errors.ScenarioError`.

For sharded sweeps (several machines or CI jobs splitting one grid),
:func:`shard_scenarios` deterministically partitions an expanded list
round-robin — shard *i* of *n* takes positions ``i, i+n, i+2n, ...`` of
the last-axis-fastest expansion, an interleaved slice rather than a
contiguous block (so shards mix the fast axis whenever *n* doesn't
divide its length).
``repro scenarios run --shard i/n`` wires it to the CLI, and the
resulting per-shard stores merge back with
:meth:`repro.store.ExperimentStore.merge`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

from ..config import SimulationConfig
from ..errors import ScenarioError
from .scenario import Scenario, params_tuple

__all__ = ["ScenarioMatrix", "AXIS_FIELDS", "parse_shard", "shard_scenarios"]

#: Axis names that replace a scenario field directly.
AXIS_FIELDS = ("platform", "policy", "workload", "label", "pin_uncore_max")

_CONFIG_FIELDS = tuple(config_field.name for config_field in fields(SimulationConfig))


def _axes_tuple(
    axes: Union[Mapping[str, Iterable[Any]], Iterable[Tuple[str, Iterable[Any]]]],
) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    """Normalise the axes mapping, preserving declaration order."""
    pairs = list(axes.items()) if isinstance(axes, Mapping) else list(axes)
    out: List[Tuple[str, Tuple[Any, ...]]] = []
    seen = set()
    for pair in pairs:
        if (
            not isinstance(pair, tuple)
            or len(pair) != 2
            or not isinstance(pair[0], str)
        ):
            raise ScenarioError("matrix 'axes' must map axis names to value lists")
        name, values = pair
        if name in seen:
            raise ScenarioError(f"duplicate axis {name!r}")
        seen.add(name)
        _check_axis_name(name)
        if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            raise ScenarioError(f"axis {name!r} must list its values")
        values = tuple(values)
        if not values:
            raise ScenarioError(f"axis {name!r} has no values")
        out.append((name, values))
    return tuple(out)


def _check_axis_name(name: str) -> None:
    """Reject axis names outside the documented vocabulary."""
    if name in AXIS_FIELDS or name == "seed":
        return
    head, sep, tail = name.partition(".")
    if sep and tail:
        if head == "config":
            if tail in _CONFIG_FIELDS:
                return
            raise ScenarioError(
                f"unknown config axis {name!r}; config fields: "
                f"{list(_CONFIG_FIELDS)}"
            )
        if head in ("policy_params", "workload_params"):
            return
    raise ScenarioError(
        f"unknown axis {name!r}; expected one of {list(AXIS_FIELDS)}, 'seed', "
        f"'config.<field>', 'policy_params.<name>', or 'workload_params.<name>'"
    )


def _apply(scenario: Scenario, axis: str, value: Any) -> Scenario:
    """One axis assignment applied to a scenario, returning the new copy."""
    if axis in AXIS_FIELDS:
        return replace(scenario, **{axis: value})
    if axis == "seed":
        if not isinstance(value, int) or isinstance(value, bool):
            raise ScenarioError(f"axis 'seed' values must be integers, got {value!r}")
        return scenario.with_seed(value)
    head, _, tail = axis.partition(".")
    if head == "config":
        return replace(scenario, config=replace(scenario.config, **{tail: value}))
    merged = dict(getattr(scenario, head))
    merged[tail] = value
    return replace(scenario, **{head: params_tuple(merged, f"axis {axis!r}")})


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``"i/n"`` shard designator into ``(index, count)``.

    The CLI spelling of :func:`shard_scenarios`: zero-based index,
    total count, e.g. ``"0/2"`` and ``"1/2"`` split a grid in half.

    Raises:
        ScenarioError: On anything but ``i/n`` with ``0 <= i < n``.
    """
    head, sep, tail = str(text).partition("/")
    try:
        if not sep:
            raise ValueError("missing '/'")
        index, count = int(head), int(tail)
    except ValueError:
        raise ScenarioError(
            f"shard must look like 'i/n' (e.g. '0/2'), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ScenarioError(
            f"shard index must satisfy 0 <= i < n, got {index}/{count}"
        )
    return index, count


def shard_scenarios(
    scenarios: List[Scenario], index: int, count: int
) -> List[Scenario]:
    """Shard *i* of *n* of an expanded scenario list, deterministically.

    Round-robin over the expansion order: shard *i* takes positions
    ``i, i+n, i+2n, ...`` — an interleaved slice, not a contiguous
    block, so shards mix :meth:`ScenarioMatrix.expand`'s fast-varying
    last axis whenever *n* doesn't divide its length.  The shards
    partition the list exactly: every
    scenario lands in one and only one shard, so running all *n* shards
    and merging their stores reproduces the unsharded grid.

    Raises:
        ScenarioError: When ``(index, count)`` is out of range.
    """
    if count < 1 or not 0 <= index < count:
        raise ScenarioError(
            f"shard index must satisfy 0 <= i < n, got {index}/{count}"
        )
    return list(scenarios[index::count])


@dataclass(frozen=True)
class ScenarioMatrix:
    """A scenario grid: one base document and the axes that vary.

    Attributes:
        base: The scenario every grid point starts from.
        axes: Ordered (axis, values) pairs; expansion varies the **last**
            axis fastest.  Accepts a mapping at construction.
    """

    base: Scenario = field(default_factory=Scenario)
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.base, Scenario):
            raise ScenarioError(
                f"matrix 'base' must be a Scenario, got {type(self.base).__name__}"
            )
        object.__setattr__(self, "axes", _axes_tuple(self.axes))

    def __len__(self) -> int:
        """Number of grid points :meth:`expand` will yield."""
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def expand(self) -> List[Scenario]:
        """Every grid point as a concrete scenario, last axis fastest."""
        names = [name for name, _ in self.axes]
        grids = [values for _, values in self.axes]
        out: List[Scenario] = []
        for point in itertools.product(*grids):
            scenario = self.base
            for name, value in zip(names, point):
                scenario = _apply(scenario, name, value)
            out.append(scenario)
        return out

    # -- serialisation ---------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """JSON-ready canonical form (``base`` + ordered ``axes``)."""
        return {
            "base": self.base.payload(),
            "axes": [[name, list(values)] for name, values in self.axes],
        }

    @classmethod
    def from_payload(cls, doc: Any) -> "ScenarioMatrix":
        """Rebuild a matrix from :meth:`payload` output, strictly.

        ``axes`` may be an object (insertion-ordered, the natural JSON
        spelling) or a list of ``[name, values]`` pairs.
        """
        if not isinstance(doc, dict):
            raise ScenarioError(
                f"matrix document must be an object, got {type(doc).__name__}"
            )
        unexpected = sorted(set(doc) - {"base", "axes"})
        if unexpected:
            raise ScenarioError(
                f"unknown matrix field(s) {unexpected}; known: ['axes', 'base']"
            )
        base = Scenario.from_payload(doc.get("base", {}))
        raw_axes = doc.get("axes", [])
        if isinstance(raw_axes, dict):
            axes: Any = raw_axes
        elif isinstance(raw_axes, list):
            axes = [tuple(pair) if isinstance(pair, list) else pair for pair in raw_axes]
        else:
            raise ScenarioError("matrix 'axes' must be an object or a pair list")
        return cls(base=base, axes=axes)

    def to_json(self, indent: int = 2) -> str:
        """The matrix as a JSON document."""
        return json.dumps(self.payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioMatrix":
        """Parse a matrix from JSON text, with typed errors."""
        try:
            doc = json.loads(text)
        except ValueError as error:
            raise ScenarioError(f"matrix is not valid JSON: {error}") from error
        return cls.from_payload(doc)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioMatrix":
        """Read a matrix from a JSON file (I/O errors become typed)."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ScenarioError(f"cannot read matrix {path}: {error}") from error
        return cls.from_json(text)
