"""String-keyed component registries: policies, workloads, platforms.

Governors have had a registry since the seed (``GOVERNOR_REGISTRY`` in
:mod:`repro.governors.base`); this module generalises that pattern to
the other three axes every experiment varies.  A :class:`Registry` maps
a short string key ("mobicore", "game:asphalt8", "Nexus 5") to a
:class:`RegistryEntry` whose ``target`` is a portable
``"package.module:attr"`` dotted path — the exact shape
:class:`~repro.runner.spec.FactoryRef` needs — so every registered name
is automatically picklable across process boundaries and
content-addressable in the runner's result cache.

Registration mirrors :func:`~repro.governors.base.register_governor`:

    @register_policy("mobicore", pass_platform=True)
    def mobicore_policy(platform: str = "Nexus 5") -> MobiCorePolicy:
        ...

Duplicate names raise :class:`~repro.errors.RegistryError`; unknown
lookups raise it too, listing the known keys (the
:func:`~repro.governors.base.create_governor` error style).  Entries can
also be added without a decorator via :meth:`Registry.add`, which keeps
registration lazy: the target module is only imported when a ref is
actually resolved in a worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple, TypeVar

from ..errors import RegistryError
from ..runner.spec import FactoryRef

__all__ = [
    "RegistryEntry",
    "Registry",
    "POLICY_REGISTRY",
    "WORKLOAD_REGISTRY",
    "PLATFORM_REGISTRY",
    "register_policy",
    "register_workload",
    "register_platform",
    "policy_ref",
    "workload_ref",
    "platform_ref",
]

_Factory = TypeVar("_Factory", bound=Callable[..., Any])


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: a name bound to a portable factory target.

    Attributes:
        kind: Which registry owns the entry ("policy", "workload",
            "platform") — used only for error messages.
        name: The string key experiments and scenario documents use.
        target: ``"package.module:attr"`` naming the factory callable,
            resolvable from any worker process.
        defaults: Keyword arguments baked into every ref built from this
            entry (callers may override them); how one factory serves
            several registered names (e.g. each ``game:*`` alias).
        pass_platform: True when the factory wants the scenario's
            platform name injected as its ``platform`` keyword (policies
            calibrated against a device, like MobiCore's energy model).
        summary: One-line description shown by ``repro scenarios list``.
    """

    kind: str
    name: str
    target: str
    defaults: Tuple[Tuple[str, Any], ...] = ()
    pass_platform: bool = False
    summary: str = ""

    def ref(self, **params: Any) -> FactoryRef:
        """A portable :class:`FactoryRef` for this entry.

        ``params`` override the entry's ``defaults``; the result hashes
        into the runner cache key, so equal (entry, params) pairs share
        one content address.
        """
        merged = dict(self.defaults)
        merged.update(params)
        return FactoryRef.to(self.target, **merged)


class Registry:
    """An ordered, string-keyed catalog of :class:`RegistryEntry`.

    Args:
        kind: Singular component noun ("policy", "workload", "platform")
            used in error messages and listings.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    # -- registration ----------------------------------------------------

    def add(
        self,
        name: str,
        target: str,
        *,
        defaults: Optional[Mapping[str, Any]] = None,
        pass_platform: bool = False,
        summary: str = "",
    ) -> RegistryEntry:
        """Register *name* -> *target* directly (no decorator needed).

        Raises:
            RegistryError: On an empty name, a malformed target, or a
                duplicate registration.
        """
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        if name in self._entries:
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        entry = RegistryEntry(
            kind=self.kind,
            name=name,
            target=target,
            defaults=tuple(sorted((defaults or {}).items())),
            pass_platform=pass_platform,
            summary=summary,
        )
        # Build a throwaway ref so malformed targets fail at registration
        # time, not at the first lookup inside a worker process.
        entry.ref()
        self._entries[name] = entry
        return entry

    def register(
        self,
        name: str,
        *,
        defaults: Optional[Mapping[str, Any]] = None,
        pass_platform: bool = False,
        summary: str = "",
    ) -> Callable[[_Factory], _Factory]:
        """Decorator form of :meth:`add`, mirroring ``register_governor``.

        The target is derived from the decorated callable
        (``module:qualname``), so the factory stays importable from
        worker processes.  The summary defaults to the factory
        docstring's first line.
        """

        def decorate(factory: _Factory) -> _Factory:
            if "." in factory.__qualname__:
                raise RegistryError(
                    f"{self.kind} factory {factory.__qualname__!r} must be a "
                    f"module-level callable to be referable from workers"
                )
            doc = (factory.__doc__ or "").strip().splitlines()
            self.add(
                name,
                f"{factory.__module__}:{factory.__qualname__}",
                defaults=defaults,
                pass_platform=pass_platform,
                summary=summary or (doc[0] if doc else ""),
            )
            return factory

        return decorate

    # -- lookup ----------------------------------------------------------

    def get(self, name: str) -> RegistryEntry:
        """Look an entry up by name; unknown names list the known keys."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries))
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {known}"
            ) from None

    def ref(self, name: str, **params: Any) -> FactoryRef:
        """Shorthand for ``get(name).ref(**params)``."""
        return self.get(name).ref(**params)

    def names(self) -> Tuple[str, ...]:
        """Registered keys in registration order."""
        return tuple(self._entries)

    def entries(self) -> Tuple[RegistryEntry, ...]:
        """Registered entries in registration order."""
        return tuple(self._entries.values())

    def __contains__(self, name: object) -> bool:
        """``name in registry`` membership by string key."""
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        """Iterate the registered keys in registration order."""
        return iter(self._entries)

    def __len__(self) -> int:
        """Number of registered entries."""
        return len(self._entries)


#: Whole-system CPU policies (the paper's comparison axis).
POLICY_REGISTRY = Registry("policy")
#: Demand generators (busy-loop, GeekBench-like, the five games, ...).
WORKLOAD_REGISTRY = Registry("workload")
#: Device catalog entries resolvable to a PlatformSpec.
PLATFORM_REGISTRY = Registry("platform")

#: Decorator registering a policy factory, e.g. ``@register_policy("mobicore")``.
register_policy = POLICY_REGISTRY.register
#: Decorator registering a workload factory, e.g. ``@register_workload("busyloop")``.
register_workload = WORKLOAD_REGISTRY.register
#: Decorator registering a platform-spec factory by catalog key.
register_platform = PLATFORM_REGISTRY.register


def policy_ref(
    name: str, platform: Optional[str] = None, **params: Any
) -> FactoryRef:
    """A portable factory ref for a registered policy.

    Args:
        name: Registered policy key (``repro scenarios list`` shows them).
        platform: Catalog platform name, injected as the factory's
            ``platform`` keyword when the entry asks for it
            (``pass_platform``) — how device-calibrated policies like
            MobiCore receive the right power model.
        params: Extra factory keyword arguments (primitives only).
    """
    entry = POLICY_REGISTRY.get(name)
    if entry.pass_platform and platform is not None and "platform" not in params:
        params["platform"] = platform
    return entry.ref(**params)


def workload_ref(name: str, **params: Any) -> FactoryRef:
    """A portable factory ref for a registered workload."""
    return WORKLOAD_REGISTRY.ref(name, **params)


def platform_ref(name: str, **params: Any) -> FactoryRef:
    """A portable factory ref producing a registered platform's spec."""
    return PLATFORM_REGISTRY.ref(name, **params)
