"""Declarative scenario layer: registries + documents + compiler.

This package unifies the repo's policy/workload/platform wiring behind
three string-keyed registries (mirroring the governor registry that has
existed since the seed) and a JSON-round-trippable
:class:`~repro.scenario.scenario.Scenario` document.  A scenario names
its components by key; :func:`~repro.scenario.compile.compile_scenario`
turns it into the portable :class:`~repro.runner.spec.SessionSpec` the
batch runner already executes, caches, and parallelises.  A
:class:`~repro.scenario.matrix.ScenarioMatrix` expands axis grids
(policy x game x seed x ...) into concrete scenarios, replacing the
per-driver nested loops the experiment modules used to carry.

Importing this package registers every built-in component
(:mod:`repro.scenario.builtins`), so registry keys like ``"mobicore"``,
``"game:asphalt8"``, and ``"Nexus 5"`` resolve immediately.
"""

from __future__ import annotations

from .registry import (
    PLATFORM_REGISTRY,
    POLICY_REGISTRY,
    WORKLOAD_REGISTRY,
    Registry,
    RegistryEntry,
    platform_ref,
    policy_ref,
    register_platform,
    register_policy,
    register_workload,
    workload_ref,
)
from . import builtins as _builtins  # populate the registries on import
from .scenario import Scenario
from .matrix import AXIS_FIELDS, ScenarioMatrix, parse_shard, shard_scenarios
from .compile import (
    compile_matrix,
    compile_scenario,
    default_label,
    load_scenarios,
    run_scenarios,
)
from .builtins import game_key

__all__ = [
    "Registry",
    "RegistryEntry",
    "POLICY_REGISTRY",
    "WORKLOAD_REGISTRY",
    "PLATFORM_REGISTRY",
    "register_policy",
    "register_workload",
    "register_platform",
    "policy_ref",
    "workload_ref",
    "platform_ref",
    "game_key",
    "Scenario",
    "ScenarioMatrix",
    "AXIS_FIELDS",
    "parse_shard",
    "shard_scenarios",
    "compile_scenario",
    "compile_matrix",
    "run_scenarios",
    "load_scenarios",
    "default_label",
]
