"""The declarative Scenario document: one session as data, not code.

A :class:`Scenario` names everything one simulated session needs by
*registry key* — platform, policy (+params), workload (+params), the
full :class:`~repro.config.SimulationConfig`, and optionally a
:class:`~repro.faults.plan.FaultPlan` and a
:class:`~repro.runner.spec.TraceRequest`.  It is frozen, hashable, and
round-trips through JSON (:meth:`Scenario.to_json` /
:meth:`Scenario.from_json`), so an experiment matrix is a document you
can commit, diff, and hand to the runner — not another copy of the
driver wiring.

Schema violations raise :class:`~repro.errors.ScenarioError` with the
offending field named; unknown registry keys surface at
:meth:`Scenario.validate` / compile time as
:class:`~repro.errors.RegistryError` listing the known keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from ..config import SimulationConfig
from ..errors import ScenarioError
from ..faults.plan import FaultPlan
from ..runner.spec import TraceRequest

__all__ = ["Scenario", "Params", "params_tuple"]

#: Factory parameters as canonical (name, value) pairs — or any mapping /
#: pair-iterable, normalised by :func:`params_tuple` at construction.
Params = Union[
    Mapping[str, Any], Iterable[Tuple[str, Any]], Tuple[Tuple[str, Any], ...]
]

_PRIMITIVES = (type(None), bool, int, float, str)


def _check_primitive(value: Any, where: str) -> None:
    """Reject non-JSON-primitive parameter values with a typed error."""
    if isinstance(value, (list, tuple)):
        for item in value:
            _check_primitive(item, where)
        return
    if not isinstance(value, _PRIMITIVES):
        raise ScenarioError(
            f"{where} must hold only JSON primitives "
            f"(null/bool/int/float/str), got {type(value).__name__}"
        )


def params_tuple(params: Params, where: str) -> Tuple[Tuple[str, Any], ...]:
    """Normalise factory params into sorted, duplicate-free (name, value) pairs.

    The same canonicalisation :class:`~repro.runner.spec.FactoryRef`
    applies to its kwargs, done once here so equal parameter sets always
    produce equal scenarios (and therefore equal cache addresses).
    """
    pairs = list(params.items()) if isinstance(params, Mapping) else list(params)
    names = []
    for pair in pairs:
        if (
            not isinstance(pair, tuple)
            or len(pair) != 2
            or not isinstance(pair[0], str)
        ):
            raise ScenarioError(f"{where} must map parameter names to values")
        names.append(pair[0])
        _check_primitive(pair[1], f"{where}[{pair[0]!r}]")
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ScenarioError(f"duplicate parameter name(s) {duplicates} in {where}")
    return tuple(sorted(pairs, key=lambda pair: pair[0]))


def _config_from_payload(doc: Any) -> SimulationConfig:
    """Rebuild a SimulationConfig from its payload dict, strictly."""
    if not isinstance(doc, dict):
        raise ScenarioError(
            f"scenario 'config' must be an object, got {type(doc).__name__}"
        )
    known = {config_field.name for config_field in fields(SimulationConfig)}
    unexpected = sorted(set(doc) - known)
    if unexpected:
        raise ScenarioError(
            f"unknown config field(s) {unexpected}; known: {sorted(known)}"
        )
    return SimulationConfig(**doc)


def _trace_from_payload(doc: Any) -> TraceRequest:
    """Rebuild a TraceRequest from its payload dict, strictly."""
    if not isinstance(doc, dict):
        raise ScenarioError(
            f"scenario 'trace' must be an object, got {type(doc).__name__}"
        )
    known = {"categories", "ring_capacity", "profile"}
    unexpected = sorted(set(doc) - known)
    if unexpected:
        raise ScenarioError(
            f"unknown trace field(s) {unexpected}; known: {sorted(known)}"
        )
    categories = doc.get("categories", ())
    if not isinstance(categories, (list, tuple)) or not all(
        isinstance(category, str) for category in categories
    ):
        raise ScenarioError("trace 'categories' must be a list of strings")
    ring = doc.get("ring_capacity")
    if ring is not None and not isinstance(ring, int):
        raise ScenarioError("trace 'ring_capacity' must be an integer or null")
    profile = doc.get("profile", False)
    if not isinstance(profile, bool):
        raise ScenarioError("trace 'profile' must be a boolean")
    return TraceRequest(
        categories=tuple(categories), ring_capacity=ring, profile=profile
    )


@dataclass(frozen=True)
class Scenario:
    """One session, declared entirely by registry keys and primitives.

    Attributes:
        workload: Registered workload key (e.g. ``"busyloop"``,
            ``"game:asphalt8"``).
        policy: Registered policy key (e.g. ``"mobicore"``).
        platform: Registered platform key (catalog phone name).
        workload_params: Factory keyword arguments for the workload.
        policy_params: Factory keyword arguments for the policy.
        config: Full simulation configuration (tick, duration, seed,
            warmup, label).
        pin_uncore_max: The section 3.2 GPU/memory constraint.
        label: Free-form tag carried onto the compiled spec (defaults to
            a generated ``workload/policy@seed`` label at compile time).
        trace: Optional trace request (observation only — excluded from
            the cache identity, exactly as on ``SessionSpec``).
        faults: Optional fault plan (part of the cache identity).
    """

    workload: str = "busyloop"
    policy: str = "android-default"
    platform: str = "Nexus 5"
    workload_params: Tuple[Tuple[str, Any], ...] = ()
    policy_params: Tuple[Tuple[str, Any], ...] = ()
    config: SimulationConfig = field(default_factory=SimulationConfig)
    pin_uncore_max: bool = True
    label: str = ""
    trace: Optional[TraceRequest] = None
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        for name in ("workload", "policy", "platform", "label"):
            if not isinstance(getattr(self, name), str):
                raise ScenarioError(
                    f"scenario {name!r} must be a string, "
                    f"got {type(getattr(self, name)).__name__}"
                )
        for name in ("workload", "policy", "platform"):
            if not getattr(self, name):
                raise ScenarioError(f"scenario {name!r} must be non-empty")
        for name in ("workload_params", "policy_params"):
            object.__setattr__(
                self, name, params_tuple(getattr(self, name), f"scenario {name!r}")
            )
        if not isinstance(self.config, SimulationConfig):
            raise ScenarioError(
                f"scenario 'config' must be a SimulationConfig, "
                f"got {type(self.config).__name__}"
            )
        if not isinstance(self.pin_uncore_max, bool):
            raise ScenarioError("scenario 'pin_uncore_max' must be a boolean")
        if self.trace is not None and not isinstance(self.trace, TraceRequest):
            raise ScenarioError("scenario 'trace' must be a TraceRequest or None")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ScenarioError("scenario 'faults' must be a FaultPlan or None")

    # -- derivation ------------------------------------------------------

    def with_seed(self, seed: int) -> "Scenario":
        """A copy running the same session under a different seed."""
        return replace(self, config=self.config.with_seed(seed))

    def describe(self) -> str:
        """Compact one-line description for listings and run tables."""
        def suffix(params: Tuple[Tuple[str, Any], ...]) -> str:
            if not params:
                return ""
            inner = ",".join(f"{name}={value}" for name, value in params)
            return f"[{inner}]"

        text = (
            f"{self.workload}{suffix(self.workload_params)} x "
            f"{self.policy}{suffix(self.policy_params)} @ {self.platform} "
            f"seed={self.config.seed}"
        )
        if self.faults:
            text += f" faults={len(self.faults)}"
        return text

    # -- compilation (delegates to repro.scenario.compile) ---------------

    def validate(self) -> None:
        """Check every name against the registries by compiling once.

        Raises:
            RegistryError: Unknown policy/workload/platform key.
            ScenarioError: Structurally invalid document.
        """
        from .compile import compile_scenario

        compile_scenario(self)

    def compile(self):
        """The equivalent :class:`~repro.runner.spec.SessionSpec`."""
        from .compile import compile_scenario

        return compile_scenario(self)

    # -- serialisation ---------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """JSON-ready canonical form; optional fields appear only when set."""
        doc: Dict[str, Any] = {
            "platform": self.platform,
            "policy": self.policy,
            "workload": self.workload,
            "config": {
                config_field.name: getattr(self.config, config_field.name)
                for config_field in fields(self.config)
            },
            "pin_uncore_max": self.pin_uncore_max,
        }
        if self.policy_params:
            doc["policy_params"] = dict(self.policy_params)
        if self.workload_params:
            doc["workload_params"] = dict(self.workload_params)
        if self.label:
            doc["label"] = self.label
        if self.trace is not None:
            doc["trace"] = {
                "categories": list(self.trace.categories),
                "ring_capacity": self.trace.ring_capacity,
                "profile": self.trace.profile,
            }
        if self.faults is not None and self.faults:
            doc["faults"] = self.faults.payload()
        return doc

    @classmethod
    def from_payload(cls, doc: Any) -> "Scenario":
        """Rebuild a scenario from :meth:`payload` output, strictly.

        Every unknown key and mistyped field raises
        :class:`~repro.errors.ScenarioError` naming the problem.
        """
        if not isinstance(doc, dict):
            raise ScenarioError(
                f"scenario document must be an object, got {type(doc).__name__}"
            )
        known = {
            "platform", "policy", "workload", "policy_params",
            "workload_params", "config", "pin_uncore_max", "label",
            "trace", "faults",
        }
        unexpected = sorted(set(doc) - known)
        if unexpected:
            raise ScenarioError(
                f"unknown scenario field(s) {unexpected}; known: {sorted(known)}"
            )
        kwargs: Dict[str, Any] = {}
        for name in ("platform", "policy", "workload", "label"):
            if name in doc:
                kwargs[name] = doc[name]
        for name in ("policy_params", "workload_params"):
            if name in doc:
                if not isinstance(doc[name], dict):
                    raise ScenarioError(f"scenario {name!r} must be an object")
                kwargs[name] = doc[name]
        if "config" in doc:
            kwargs["config"] = _config_from_payload(doc["config"])
        if "pin_uncore_max" in doc:
            kwargs["pin_uncore_max"] = doc["pin_uncore_max"]
        if "trace" in doc:
            kwargs["trace"] = _trace_from_payload(doc["trace"])
        if "faults" in doc:
            kwargs["faults"] = FaultPlan.from_payload(doc["faults"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """The scenario as a JSON document."""
        return json.dumps(self.payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from JSON text, with typed errors."""
        try:
            doc = json.loads(text)
        except ValueError as error:
            raise ScenarioError(f"scenario is not valid JSON: {error}") from error
        return cls.from_payload(doc)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        """Read a scenario from a JSON file.

        I/O failures become :class:`~repro.errors.ScenarioError`;
        interrupts propagate untouched.
        """
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise ScenarioError(f"cannot read scenario {path}: {error}") from error
        return cls.from_json(text)
