"""Declarative session specifications for the batch runner.

A :class:`SessionSpec` names everything one simulated session needs —
platform, policy, workload, configuration — *by value*, so a batch of
specs can be shipped to worker processes, hashed into a content address
for the on-disk result cache, and re-run bit-identically later.

Factories are named with :class:`FactoryRef`: a dotted
``"package.module:attr"`` target plus primitive arguments.  A ref is
itself callable (calling it resolves and invokes the target), so any API
that accepts a plain zero-argument factory accepts a ref unchanged.
Specs built from plain callables/objects still execute — serially, in
process — but are not *portable*: they cannot cross a process boundary
or be cached, because a lambda has no stable content address.

The cache key hashes the **full** specification: every
:class:`~repro.config.SimulationConfig` field (tick, duration, seed,
warmup, label), the platform, both factory refs with all their
arguments, and ``pin_uncore_max`` — closing the seed/warmup key
omissions the old hand-rolled ``game_eval`` cache had.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from importlib import import_module
from typing import Any, Callable, Optional, Tuple, Union

from ..config import SimulationConfig
from ..errors import RunnerError
from ..faults.plan import FaultPlan
from ..obs.bus import TracepointBus
from ..soc.catalog import get_phone_spec
from ..soc.platform import PlatformSpec

__all__ = [
    "FactoryRef",
    "SessionSpec",
    "TraceRequest",
    "CACHE_FORMAT_VERSION",
    "KEY_SCHEMA_VERSION",
]

#: Version of the *key derivation* — the canonical payload a spec hashes
#: into its content address.  Deliberately decoupled from
#: :data:`CACHE_FORMAT_VERSION`: bumping the entry file format must NOT
#: re-address every existing entry, or read-migration would have nothing
#: left to read.  Bump only when the payload itself changes shape.
KEY_SCHEMA_VERSION = 2

#: Version of the on-disk *entry file* format.  Version 2 added the
#: entry checksum and the optional fault plan; version 3 adds the
#: optional columnar ``.npz`` trace blob next to the summary.  Readers
#: migrate transparently: a version-2 entry is still a verified hit.
CACHE_FORMAT_VERSION = 3

#: Argument types a portable (hashable, picklable) ref may carry.
_PRIMITIVES = (type(None), bool, int, float, str)


def _require_primitive(value: Any, where: str) -> None:
    if isinstance(value, (tuple, list)):
        for item in value:
            _require_primitive(item, where)
        return
    if not isinstance(value, _PRIMITIVES):
        raise RunnerError(
            f"{where} must hold only primitives (None/bool/int/float/str, "
            f"possibly nested in tuples), got {type(value).__name__}"
        )


@dataclass(frozen=True)
class FactoryRef:
    """A picklable, content-hashable reference to a factory call.

    Attributes:
        target: ``"package.module:attr"`` naming a callable.
        args: Positional arguments for the call (primitives only).
        kwargs: Keyword arguments as (name, value) pairs, kept as a
            tuple so the ref stays hashable.  Normalised at
            construction: pairs are sorted by name (so two refs built
            with different kwarg orders are equal and share one cache
            address) and duplicate names are rejected.
    """

    target: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        module, sep, attr = self.target.partition(":")
        if not sep or not module or not attr:
            raise RunnerError(
                f"factory target must look like 'package.module:attr', "
                f"got {self.target!r}"
            )
        _require_primitive(self.args, f"args of {self.target}")
        names = [name for name, _ in self.kwargs]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise RunnerError(
                f"duplicate kwarg name(s) {duplicates} for {self.target}"
            )
        for name, value in self.kwargs:
            _require_primitive(value, f"kwargs[{name!r}] of {self.target}")
        # Canonical ordering happens here — once, for every constructor
        # path — so the content address never depends on call-site order.
        object.__setattr__(
            self, "kwargs", tuple(sorted(self.kwargs, key=lambda pair: pair[0]))
        )

    @classmethod
    def to(cls, target: str, *args: Any, **kwargs: Any) -> "FactoryRef":
        """Build a ref the way you would write the call itself."""
        return cls(target, tuple(args), tuple(kwargs.items()))

    def resolve(self) -> Any:
        """Import the target and call it with the stored arguments."""
        module_name, _, attr = self.target.partition(":")
        try:
            module = import_module(module_name)
        except ImportError as error:
            raise RunnerError(f"cannot import {module_name!r}: {error}") from error
        try:
            factory = getattr(module, attr)
        except AttributeError:
            raise RunnerError(f"{module_name!r} has no attribute {attr!r}") from None
        return factory(*self.args, **dict(self.kwargs))

    def __call__(self) -> Any:
        """Refs are zero-argument factories: calling one resolves it."""
        return self.resolve()

    def payload(self) -> dict:
        """JSON-ready canonical form for cache-key hashing."""
        return {
            "target": self.target,
            "args": list(self.args),
            "kwargs": [[name, value] for name, value in self.kwargs],
        }


@dataclass(frozen=True)
class TraceRequest:
    """Ask the runner to record a typed event trace for a spec.

    Carried on :class:`SessionSpec` but deliberately **excluded** from
    the cache identity: tracing is pure observation — it never changes
    what the simulation computes — yet a traced spec must actually
    execute (a cached summary has no event stream), so the runner
    bypasses memoisation for it instead of forking the key space.

    Attributes:
        categories: Restrict recording to these event categories
            (``None`` records everything).
        ring_capacity: Bound the event buffer ftrace-style; ``None``
            keeps every event.
        profile: Arm the per-subsystem ``apply`` timing histograms.
    """

    categories: Tuple[str, ...] = ()
    ring_capacity: Optional[int] = None
    profile: bool = False

    def build_bus(self) -> TracepointBus:
        """A fresh bus configured as this request asks."""
        return TracepointBus(
            capacity=self.ring_capacity,
            categories=self.categories or None,
            profile=self.profile,
        )


#: A platform may be named (catalog string), referenced, or passed live.
PlatformLike = Union[str, FactoryRef, PlatformSpec]
#: A factory may be a portable ref or any zero-argument callable.
FactoryLike = Union[FactoryRef, Callable[[], Any]]


@dataclass(frozen=True)
class SessionSpec:
    """Everything one session needs, declaratively.

    Attributes:
        platform: Catalog phone name, a :class:`FactoryRef` producing a
            :class:`PlatformSpec`, or a live spec object.
        policy: Factory for a fresh policy (ref or callable).
        workload: Factory for a fresh workload (ref or callable).
        config: Full session configuration (carries the seed).
        pin_uncore_max: The section 3.2 GPU/memory constraint.
        label: Free-form tag for grouping results back out of a batch;
            not part of the execution, but part of the cache key via
            ``config.label`` only (this label is runner-side bookkeeping).
        trace: Optional :class:`TraceRequest`; a traced spec records a
            typed event stream while it runs.  Not part of the cache
            identity (see :class:`TraceRequest`).
        faults: Optional :class:`~repro.faults.plan.FaultPlan` injected
            into the session.  Faults change what the simulation
            computes, so — unlike ``trace`` — the plan **is** part of the
            cache identity: a faulted spec lives at a different content
            address than its clean twin.
        keep_columns: Ask the runner to persist the session's columnar
            trace (a compact ``.npz`` blob) next to the cached summary.
            Like ``trace``, this is pure observation and **not** part of
            the cache identity — but a spec whose entry lacks a column
            blob re-executes, so asking for columns always yields them.
    """

    platform: PlatformLike
    policy: FactoryLike
    workload: FactoryLike
    config: SimulationConfig = field(default_factory=SimulationConfig)
    pin_uncore_max: bool = True
    label: str = ""
    trace: Optional[TraceRequest] = None
    faults: Optional[FaultPlan] = None
    keep_columns: bool = False

    @property
    def is_portable(self) -> bool:
        """True when the spec can cross process boundaries and be cached."""
        return (
            isinstance(self.platform, (str, FactoryRef))
            and isinstance(self.policy, FactoryRef)
            and isinstance(self.workload, FactoryRef)
        )

    # -- resolution ------------------------------------------------------

    def resolve_platform_spec(self) -> PlatformSpec:
        """Materialise the platform datasheet this spec names."""
        if isinstance(self.platform, PlatformSpec):
            return self.platform
        if isinstance(self.platform, FactoryRef):
            spec = self.platform.resolve()
            if not isinstance(spec, PlatformSpec):
                raise RunnerError(
                    f"platform ref {self.platform.target!r} returned "
                    f"{type(spec).__name__}, expected PlatformSpec"
                )
            return spec
        return get_phone_spec(self.platform)

    def build_policy(self) -> Any:
        """A fresh policy instance."""
        return self.policy()

    def build_workload(self) -> Any:
        """A fresh workload instance."""
        return self.workload()

    # -- content addressing ----------------------------------------------

    def cache_payload(self) -> dict:
        """The canonical JSON document the cache key hashes.

        Includes every config field — notably ``seed`` and
        ``warmup_seconds``, which the old in-memory game cache dropped.
        """
        if not self.is_portable:
            raise RunnerError(
                "only portable specs (named platform + FactoryRef factories) "
                "have a stable cache identity; got a live object or lambda"
            )
        if isinstance(self.platform, FactoryRef):
            platform_payload = self.platform.payload()
        else:
            platform_payload = self.platform
        payload = {
            "version": KEY_SCHEMA_VERSION,
            "platform": platform_payload,
            "policy": self.policy.payload(),
            "workload": self.workload.payload(),
            "config": {f.name: getattr(self.config, f.name) for f in fields(self.config)},
            "pin_uncore_max": self.pin_uncore_max,
        }
        if self.faults is not None and self.faults:
            # Only present when faults are injected, so every pre-existing
            # clean spec keeps the address it would have had anyway.
            payload["faults"] = self.faults.payload()
        return payload

    def cache_key(self) -> str:
        """Stable content address (sha256 hex) of the full spec."""
        canonical = json.dumps(self.cache_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
