"""The shared batch execution service for simulation sessions.

Every figure of the paper reduces to a matrix of (platform, policy,
workload, seed) sessions.  :class:`SessionRunner` is the one place that
matrix gets executed: serially or over a :class:`ProcessPoolExecutor`
(``jobs=N``), with results returned in spec order regardless of worker
scheduling, an in-memory memo, and an optional content-addressed on-disk
cache.  Workers reduce each finished session to a
:class:`~repro.metrics.summary.SessionSummary` before crossing the
process boundary, so fan-out cost is per-row, not per-trace.

Sessions are deterministic given (config, seed), so serial and parallel
execution of the same batch produce bit-identical summaries — asserted
by the regression tests.

The runner is also where execution failures are absorbed instead of
propagated blindly (the contract in ``docs/FAILURE_MODES.md``):

* a crashed or hung worker fails only its in-flight specs, which are
  retried with exponential backoff up to ``retries`` times in a fresh
  pool;
* ``timeout_seconds`` bounds each spec's wall-clock execution; hung
  workers are terminated, and the spec retries like any other failure;
* a corrupt on-disk cache entry (bad checksum, truncated JSON) is
  quarantined and the spec recomputed — a *degraded* success;
* :meth:`SessionRunner.run_report` returns a
  :class:`~repro.runner.report.RunReport` classifying every spec as
  ok / retried / degraded / failed, while :meth:`SessionRunner.run`
  keeps the raising contract (any failed spec re-raises).

Only :class:`Exception` is ever absorbed — ``KeyboardInterrupt`` and
other ``BaseException`` always propagate immediately.

Drivers that do not care about runner placement use the module-level
default runner (:func:`default_runner`), which the CLI configures from
``--jobs`` / ``--cache-dir`` and the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
environment variables.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache
from .report import STATUS_ORDER, RunReport, SpecOutcome
from .spec import SessionSpec
from ..errors import RunnerError
from ..kernel.engine import Session
from ..metrics.summary import SessionSummary, summarize
from ..obs.events import (
    RunnerCacheEvent,
    RunnerRetryEvent,
    RunnerSessionEvent,
    TraceEvent,
)
from ..obs.metrics_plane.bridge import (
    ensure_runner_metrics,
    ensure_store_metrics,
    observe_batch,
    observe_execution,
    observe_store,
)
from ..obs.metrics_plane.heartbeat import (
    HeartbeatWriter,
    heartbeat_path,
    metrics_path,
)
from ..obs.metrics_plane.registry import MetricsRegistry
from ..obs.metrics_plane.spans import SpanProfiler, set_profiler
from ..soc.platform import Platform

__all__ = [
    "RunnerStats",
    "SessionRunner",
    "SpecExecution",
    "execute_spec",
    "execute_spec_full",
    "default_runner",
    "set_default_runner",
    "configure_default_runner",
]


@dataclass
class SpecExecution:
    """Everything one executed spec sends back across the process boundary.

    Attributes:
        summary: The reduced session result (always present).
        events: The traced event stream — empty unless the spec carried a
            :class:`~repro.runner.spec.TraceRequest`.
        event_counts: Published events per ``"category:name"``, from the
            bus counters (these include events a ring buffer evicted).
        wall_seconds: Wall-clock execution time inside the worker.
        ticks: Simulation ticks the session ran.
        worker_pid: The executing process, for worker attribution.
        trace_bytes: Bytes of columnar trace data the session recorded
            (trimmed to recorded ticks).
        peak_recorder_bytes: Bytes the recorder's preallocated column
            blocks occupied — the spec's peak trace-memory footprint.
        columns: The session's columnar trace as a compressed ``.npz``
            blob, only when the spec set ``keep_columns`` (the runner
            persists it into the version-3 cache entry).
        phase_seconds: Wall seconds per execution phase (``compile``,
            ``execute``, ``summarize``…) from the worker's span
            profiler — the driver folds these into its own profiler and
            the ``repro_runner_phase_seconds`` metric histogram.
        fault_firings: Injected fault windows that fired, per fault
            kind (empty without a fault plan).
    """

    summary: SessionSummary
    events: List[TraceEvent] = field(default_factory=list)
    event_counts: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    ticks: int = 0
    worker_pid: int = 0
    trace_bytes: int = 0
    peak_recorder_bytes: int = 0
    columns: Optional[bytes] = None
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    fault_firings: Dict[str, int] = field(default_factory=dict)


def execute_spec_full(spec: SessionSpec) -> SpecExecution:
    """Run one session described by *spec*, with trace and timing.

    Module-level so a process pool can pickle it; also the single
    in-process execution path, so serial and parallel runs share code.

    Installs a fresh ambient span profiler around the execution, so the
    phase breakdown (``compile`` / ``execute`` / ``summarize`` /
    ``cache.serialize``) ships back on the result for the driver to
    aggregate — a handful of ``perf_counter`` calls per spec, cheap
    enough to leave always on.
    """
    began = time.perf_counter()
    profiler = SpanProfiler(enabled=True)
    previous = set_profiler(profiler)
    try:
        with profiler.span("compile"):
            bus = spec.trace.build_bus() if spec.trace is not None else None
            platform_spec = spec.resolve_platform_spec()
            session = Session(
                Platform.from_spec(platform_spec),
                spec.build_workload(),
                spec.build_policy(),
                spec.config,
                pin_uncore_max=spec.pin_uncore_max,
                trace=bus,
                faults=spec.faults,
            )
        result = session.run()  # records the ambient "execute" span
        with profiler.span("summarize"):
            summary = summarize(result)
        buffer = result.trace.buffer
        columns = None
        if spec.keep_columns:
            with profiler.span("cache.serialize"):
                columns = buffer.to_npz_bytes()
    finally:
        set_profiler(previous)
    return SpecExecution(
        summary=summary,
        events=bus.events if bus is not None else [],
        event_counts=bus.counts if bus is not None else {},
        wall_seconds=time.perf_counter() - began,
        ticks=session.ticks_run,
        worker_pid=os.getpid(),
        trace_bytes=buffer.nbytes,
        peak_recorder_bytes=buffer.capacity_bytes,
        columns=columns,
        phase_seconds=profiler.totals(),
        fault_firings=session.fault_firings,
    )


def execute_spec(spec: SessionSpec) -> SessionSummary:
    """Run one session described by *spec* and reduce it to a summary."""
    return execute_spec_full(spec).summary


@dataclass
class RunnerStats:
    """What one :meth:`SessionRunner.run` call actually did.

    Attributes:
        sessions_executed: Sessions simulated from scratch.
        ticks_simulated: Total simulation ticks those sessions ran —
            zero on a fully warm cache.
        memo_hits: Batch entries served from the in-memory memo.
        cache_hits: Batch entries served from the on-disk cache.
        retries: Execution attempts re-scheduled after a failure.
        timeouts: Execution attempts terminated for exceeding
            ``timeout_seconds``.
        store_hits: Batch entries served from a store-backed cache
            (``store_dir``); counted alongside ``cache_hits``, so the
            ``--stats`` table shows how much of a batch the experiment
            store answered without simulating.
        unenforced_timeouts: Batched specs that carried a
            ``timeout_seconds`` budget the vectorized path cannot
            enforce (batched groups run in the driver process).  Each
            such spec also gets a per-spec ``detail`` note — the
            documented gap, now surfaced instead of silent.
        corrupt_cache_entries: On-disk entries that failed checksum or
            parsing and were quarantined.
        failed_specs: Specs that never produced a summary.
        wall_seconds: Wall-clock duration of the whole :meth:`run` call.
        spec_timings: Per-executed-spec ``(label, wall_seconds)`` pairs,
            in completion order (label falls back to the workload/policy
            description when the spec carries none).
        trace_bytes: Total columnar trace data recorded by executed
            sessions (zero on a fully warm cache).
        peak_recorder_bytes: Largest single-spec recorder memory
            footprint seen (preallocated column blocks, not just rows
            in use).
    """

    sessions_executed: int = 0
    ticks_simulated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    unenforced_timeouts: int = 0
    retries: int = 0
    timeouts: int = 0
    corrupt_cache_entries: int = 0
    failed_specs: int = 0
    wall_seconds: float = 0.0
    spec_timings: List[Tuple[str, float]] = field(default_factory=list)
    trace_bytes: int = 0
    peak_recorder_bytes: int = 0

    @property
    def total(self) -> int:
        """Specs that produced a summary, whichever path served them."""
        return self.sessions_executed + self.memo_hits + self.cache_hits

    @property
    def ticks_per_second(self) -> float:
        """Batch simulation throughput (executed ticks over wall time)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ticks_simulated / self.wall_seconds

    def absorb(self, other: "RunnerStats") -> None:
        """Accumulate *other*'s counters into this instance."""
        self.sessions_executed += other.sessions_executed
        self.ticks_simulated += other.ticks_simulated
        self.memo_hits += other.memo_hits
        self.cache_hits += other.cache_hits
        self.store_hits += other.store_hits
        self.unenforced_timeouts += other.unenforced_timeouts
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.corrupt_cache_entries += other.corrupt_cache_entries
        self.failed_specs += other.failed_specs
        self.wall_seconds += other.wall_seconds
        self.spec_timings.extend(other.spec_timings)
        self.trace_bytes += other.trace_bytes
        self.peak_recorder_bytes = max(
            self.peak_recorder_bytes, other.peak_recorder_bytes
        )


class _SpecTimeout(RunnerError):
    """One spec exceeded the runner's wall-clock budget (internal marker)."""


@dataclass
class SessionRunner:
    """Executes batches of :class:`SessionSpec`, cached and parallel.

    Attributes:
        jobs: Worker processes; 1 means in-process serial execution.
        cache_dir: Root of the on-disk result cache; None disables it.
        store_dir: Root of a store-backed cache: the same blob cache,
            wrapped in a queryable
            :class:`~repro.store.ExperimentStore` whose sqlite index
            ingests every write and serves ``repro store query`` /
            the analysis constructors afterwards.  Mutually exclusive
            with ``cache_dir`` (the store *is* the cache).  Hits served
            from a store-backed cache are additionally counted as
            ``store_hits`` in the stats.
        memoize: Keep an in-memory memo of portable results, so repeated
            driver calls inside one process never re-simulate (the role
            the old hand-rolled ``game_eval._CACHE`` played, now shared
            by every consumer).
        batch: Route compatible pending specs through the vectorized
            :class:`~repro.kernel.batch_engine.BatchSession` (same
            platform and timing, untraced, unfaulted, vectorizable
            policy/workload shapes) in groups of two or more.  Summaries
            are bit-identical to scalar execution and still land at
            their spec's index; everything a batch cannot take — and any
            batch that errors — transparently falls back to the normal
            pool/inline path.  Batched specs run in the driver process,
            so ``timeout_seconds`` is not enforced for them — each such
            spec is flagged with a ``detail`` note and counted in
            ``RunnerStats.unenforced_timeouts`` rather than silently
            losing its budget.
        retries: How many times a failed execution attempt (worker
            crash, exception, timeout) is re-scheduled before the spec
            is reported failed.  0 (the default) keeps the historical
            fail-fast behaviour.
        retry_backoff_seconds: Base delay between retry rounds; round
            *n* waits ``retry_backoff_seconds * 2**(n-1)``.
        timeout_seconds: Per-spec wall-clock budget.  Enforced by
            running portable specs in worker processes (even with
            ``jobs=1``) and terminating workers that exceed it;
            non-portable specs run in-process and cannot be preempted.
            ``None`` (the default) disables the budget.
        last_stats: Accounting of the most recent :meth:`run` call.
        total_stats: The same counters accumulated over every
            :meth:`run` call on this runner — what ``--stats`` prints
            after a multi-batch command.
        last_report: The :class:`~repro.runner.report.RunReport` of the
            most recent batch (also returned by :meth:`run_report`).
        last_events: Traced event streams of the most recent batch,
            keyed by batch index (only traced specs appear).  Workers
            ship their event batches back with the summary, so traced
            runs work identically under ``jobs > 1``.
        last_event_counts: Bus counters per traced batch index (these
            include events a ring buffer evicted).
        telemetry: Runner self-observation events for the most recent
            batch (:class:`RunnerSessionEvent` per execution,
            :class:`RunnerCacheEvent` per batch entry,
            :class:`RunnerRetryEvent` per re-scheduled attempt), stamped
            with wall-clock microseconds since the batch started.
        metrics: The ops-plane metrics registry this runner feeds
            (counters, gauges, and histograms per the bridge schema).
            ``None`` — the default — keeps the pre-ops-plane fast path:
            no registry work anywhere in the batch.
        status_dir: Directory for the live heartbeat file and the
            ``metrics.json`` snapshot (``repro status`` / ``repro
            metrics`` read them).  Setting it auto-creates a
            :attr:`metrics` registry when none was passed.  ``None``
            (the default) disables all status output.
        span_profiler: The driver-side span aggregate: per-spec phase
            breakdowns shipped back by workers are merged here (one
            observation per phase per executed spec), plus the driver's
            own ``cache.read`` / ``cache.write`` spans.  Always on —
            its cost is a few ``perf_counter`` calls per spec.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, os.PathLike]] = None
    store_dir: Optional[Union[str, os.PathLike]] = None
    memoize: bool = True
    batch: bool = False
    retries: int = 0
    retry_backoff_seconds: float = 0.05
    timeout_seconds: Optional[float] = None
    metrics: Optional[MetricsRegistry] = None
    status_dir: Optional[Union[str, os.PathLike]] = None
    last_stats: RunnerStats = field(default_factory=RunnerStats)
    total_stats: RunnerStats = field(default_factory=RunnerStats)
    last_report: Optional[RunReport] = None
    last_events: Dict[int, List[TraceEvent]] = field(default_factory=dict)
    last_event_counts: Dict[int, Dict[str, int]] = field(default_factory=dict)
    telemetry: List[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if int(self.jobs) < 1:
            raise RunnerError(f"jobs must be >= 1, got {self.jobs}")
        self.jobs = int(self.jobs)
        if int(self.retries) < 0:
            raise RunnerError(f"retries must be >= 0, got {self.retries}")
        self.retries = int(self.retries)
        if self.retry_backoff_seconds < 0:
            raise RunnerError(
                f"retry_backoff_seconds must be >= 0, got {self.retry_backoff_seconds}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise RunnerError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.cache_dir and os.path.exists(self.cache_dir) and not os.path.isdir(
            self.cache_dir
        ):
            raise RunnerError(
                f"cache_dir {self.cache_dir!r} exists and is not a directory"
            )
        if self.status_dir is not None:
            if os.path.exists(self.status_dir) and not os.path.isdir(self.status_dir):
                raise RunnerError(
                    f"status_dir {self.status_dir!r} exists and is not a directory"
                )
            os.makedirs(self.status_dir, exist_ok=True)
            if self.metrics is None:
                self.metrics = MetricsRegistry()
        if self.metrics is not None:
            # Declare the whole schema up front so the exposition always
            # carries every family, zero-valued ones included.
            ensure_runner_metrics(self.metrics)
        self.store = None
        if self.store_dir is not None:
            if self.cache_dir:
                raise RunnerError(
                    "store_dir and cache_dir are mutually exclusive "
                    "(the store wraps the cache; pass one root)"
                )
            # Imported lazily: the store sits above the runner package,
            # so a top-level import would be a cycle.
            from ..store import ExperimentStore

            self.store = ExperimentStore(self.store_dir)
            self._cache = self.store.cache
            if self.metrics is not None:
                ensure_store_metrics(self.metrics)
        else:
            self._cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self._memo: Dict[str, SessionSummary] = {}
        self._store_seen: Dict[str, int] = {}
        self.span_profiler = SpanProfiler(enabled=True)

    # -- execution -------------------------------------------------------

    def run_one(self, spec: SessionSpec) -> SessionSummary:
        """Run a single spec (through the same cache/memo path)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[SessionSpec]) -> List[SessionSummary]:
        """Execute a batch, returning summaries in spec order.

        The raising façade over :meth:`run_report`: when any spec is
        still failed after the retry budget, the first failure's
        exception is re-raised (wrapped in a
        :class:`~repro.errors.RunnerError` when several specs failed).
        Use :meth:`run_report` directly to keep partial results.
        """
        report = self.run_report(specs)
        report.raise_on_failure()
        return list(report.summaries)  # type: ignore[arg-type]

    def run_report(self, specs: Sequence[SessionSpec]) -> RunReport:
        """Execute a batch and classify what happened to every spec.

        Portable specs are looked up in the memo and the on-disk cache
        first; the remainder execute in worker processes when ``jobs > 1``
        (non-portable specs always run in-process).  Results land at the
        index of their spec, so ordering is deterministic no matter how
        workers are scheduled.

        Traced specs (``spec.trace`` set) always execute — a cached
        summary has no event stream — but their summaries are still
        stored, warming the cache for later untraced runs.

        Failures are absorbed per spec: crashed/hung/raising executions
        retry up to ``retries`` times, corrupt cache entries are
        quarantined and recomputed, and the returned
        :class:`~repro.runner.report.RunReport` carries a summary (or
        the error) for every spec.  Interrupts always propagate.
        """
        batch_began = time.perf_counter()
        stats = RunnerStats()
        self.last_events = {}
        self.last_event_counts = {}
        self.telemetry = []

        report = RunReport()
        for index, spec in enumerate(specs):
            if not isinstance(spec, SessionSpec):
                raise RunnerError(
                    f"batch entry {index} is {type(spec).__name__}, not SessionSpec"
                )
            report.outcomes.append(
                SpecOutcome(index=index, label=spec.label or f"spec[{index}]")
            )
            report.summaries.append(None)

        heartbeat: Optional[HeartbeatWriter] = None
        if self.status_dir is not None:
            heartbeat = HeartbeatWriter(
                heartbeat_path(self.status_dir),
                total=len(specs),
                jobs=self.jobs,
                labels=[outcome.label for outcome in report.outcomes],
            )

        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(specs)
        first_with_key: Dict[str, int] = {}
        aliases: List[int] = []

        for index, spec in enumerate(specs):
            outcome = report.outcomes[index]
            if not spec.is_portable:
                pending.append(index)
                continue
            key = spec.cache_key()
            keys[index] = key
            if spec.trace is not None:
                # Traced specs bypass memo/cache/alias: only a real
                # execution produces the event stream.
                pending.append(index)
                continue
            if spec.keep_columns and (
                self._cache is None or not self._cache.has_columns(key)
            ):
                # A column-keeping spec is only served from cache when the
                # entry already carries its blob; otherwise it re-executes
                # (and the execution stores summary + columns together).
                pending.append(index)
                first_with_key.setdefault(key, index)
                continue
            if key in first_with_key:
                # Duplicate spec within the batch: simulate once, copy after.
                aliases.append(index)
                continue
            first_with_key[key] = index
            if self.memoize and key in self._memo:
                report.summaries[index] = self._memo[key]
                outcome.source = "memo"
                stats.memo_hits += 1
                self._tell(batch_began, RunnerCacheEvent, outcome="memo_hit", key=key, label=spec.label)
                if heartbeat is not None:
                    heartbeat.spec(index, outcome.label, "done", source="memo")
                continue
            if self._cache is not None:
                with self.span_profiler.span("cache.read"):
                    lookup = self._cache.lookup(key)
                if lookup.hit:
                    report.summaries[index] = lookup.summary
                    outcome.source = "cache"
                    if self.memoize:
                        self._memo[key] = lookup.summary
                    stats.cache_hits += 1
                    if self.store is not None:
                        stats.store_hits += 1
                    self._tell(batch_began, RunnerCacheEvent, outcome="cache_hit", key=key, label=spec.label)
                    if heartbeat is not None:
                        heartbeat.spec(index, outcome.label, "done", source="cache")
                    continue
                if lookup.corrupt:
                    # Quarantine-and-recompute: the entry is preserved
                    # for post-mortem, the spec re-executes from scratch.
                    self._cache.quarantine(key)
                    stats.corrupt_cache_entries += 1
                    outcome.escalate("degraded")
                    outcome.detail = f"corrupt cache entry quarantined ({lookup.detail})"
                    self._tell(batch_began, RunnerCacheEvent, outcome="corrupt", key=key, label=spec.label)
                    pending.append(index)
                    continue
            pending.append(index)
            self._tell(batch_began, RunnerCacheEvent, outcome="miss", key=key, label=spec.label)

        if self.batch and pending:
            pending = self._run_batched(
                specs, pending, keys, report, stats, batch_began, heartbeat
            )

        parallelizable = [i for i in pending if specs[i].is_portable]
        inline = [i for i in pending if not specs[i].is_portable]
        use_pool = (self.jobs > 1 and len(parallelizable) > 1) or (
            self.timeout_seconds is not None and bool(parallelizable)
        )
        if not use_pool:
            inline = sorted(parallelizable + inline)
            parallelizable = []

        last_error: Dict[int, Exception] = {}

        def wave_started(wave: List[int]) -> None:
            """Heartbeat: mark a dispatched wave's specs as running."""
            if heartbeat is None:
                return
            for wave_index in wave:
                outcome = report.outcomes[wave_index]
                heartbeat.spec(
                    wave_index, outcome.label, "running",
                    attempts=outcome.attempts + 1,
                )
            heartbeat.progress()

        def wave_finished(results: Dict[int, Union[SpecExecution, Exception]]) -> None:
            """Heartbeat: mark a finished wave's specs done or error."""
            if heartbeat is None:
                return
            for wave_index in sorted(results):
                outcome = report.outcomes[wave_index]
                execution = results[wave_index]
                if isinstance(execution, SpecExecution):
                    heartbeat.spec(
                        wave_index, outcome.label, "done",
                        attempts=outcome.attempts + 1,
                        source="executed",
                        wall_seconds=execution.wall_seconds,
                    )
                else:
                    heartbeat.spec(
                        wave_index, outcome.label, "error",
                        attempts=outcome.attempts + 1,
                        error=str(execution) or type(execution).__name__,
                    )
            heartbeat.progress()

        remaining_pool = list(parallelizable)
        remaining_inline = list(inline)
        for round_number in range(self.retries + 1):
            if not remaining_pool and not remaining_inline:
                break
            if round_number:
                delay = self.retry_backoff_seconds * (2 ** (round_number - 1))
                if delay > 0:
                    time.sleep(delay)
            attempt: Dict[int, Union[SpecExecution, Exception]] = {}
            if remaining_pool:
                attempt.update(
                    self._attempt_parallel(
                        specs,
                        remaining_pool,
                        self.timeout_seconds,
                        on_wave_start=wave_started,
                        on_wave_end=wave_finished,
                    )
                )
            for index in remaining_inline:
                wave_started([index])
                result = self._attempt_inline(specs[index])
                attempt[index] = result
                wave_finished({index: result})
            pool_set = set(remaining_pool)
            remaining_pool, remaining_inline = [], []
            for index in sorted(attempt):
                execution = attempt[index]
                outcome = report.outcomes[index]
                outcome.attempts += 1
                if isinstance(execution, SpecExecution):
                    report.summaries[index] = execution.summary
                    self._record_executed(
                        index, specs[index], execution, keys[index], stats, batch_began
                    )
                    if outcome.attempts > 1:
                        outcome.escalate("retried")
                    continue
                last_error[index] = execution
                outcome.error = str(execution) or type(execution).__name__
                outcome.error_type = type(execution).__name__
                if isinstance(execution, _SpecTimeout):
                    stats.timeouts += 1
                if index in pool_set:
                    remaining_pool.append(index)
                else:
                    remaining_inline.append(index)
            if (remaining_pool or remaining_inline) and round_number < self.retries:
                for index in remaining_pool + remaining_inline:
                    stats.retries += 1
                    self._tell(
                        batch_began,
                        RunnerRetryEvent,
                        label=report.outcomes[index].label,
                        attempt=report.outcomes[index].attempts,
                        error=report.outcomes[index].error,
                    )
                    if heartbeat is not None:
                        # Back in the queue for the next round; the error
                        # text rides along so the live view shows why.
                        heartbeat.spec(
                            index,
                            report.outcomes[index].label,
                            "queued",
                            attempts=report.outcomes[index].attempts,
                            error=report.outcomes[index].error,
                        )

        for index in remaining_pool + remaining_inline:
            outcome = report.outcomes[index]
            outcome.escalate("failed")
            outcome.source = "none"
            report.errors[index] = last_error[index]
            stats.failed_specs += 1

        for index in aliases:
            outcome = report.outcomes[index]
            source_index = first_with_key[keys[index]]
            summary = report.summaries[source_index]
            if summary is not None:
                report.summaries[index] = summary
                outcome.source = "alias"
                stats.memo_hits += 1
                self._tell(
                    batch_began,
                    RunnerCacheEvent,
                    outcome="alias",
                    key=keys[index],
                    label=specs[index].label,
                )
                if heartbeat is not None:
                    heartbeat.spec(index, outcome.label, "done", source="alias")
            else:
                # The spec this one aliases never produced a summary.
                origin = report.outcomes[source_index]
                outcome.escalate("failed")
                outcome.source = "none"
                outcome.error = origin.error
                outcome.error_type = origin.error_type
                report.errors[index] = report.errors.get(
                    source_index,
                    RunnerError(f"aliased spec {origin.label} failed"),
                )
                stats.failed_specs += 1
                if heartbeat is not None:
                    heartbeat.spec(
                        index, outcome.label, "error", error=outcome.error
                    )

        stats.wall_seconds = time.perf_counter() - batch_began
        self.last_stats = stats
        self.total_stats.absorb(stats)
        self.last_report = report
        if heartbeat is not None:
            heartbeat.finish(
                {status: len(report.by_status(status)) for status in STATUS_ORDER},
                stats.wall_seconds,
            )
        if self.metrics is not None:
            observe_batch(self.metrics, stats, report, self.telemetry)
            if self.store is not None:
                observe_store(self.metrics, self.store.counters, self._store_seen)
            if self.status_dir is not None:
                self._dump_metrics()
        return report

    # -- attempt machinery ----------------------------------------------

    @staticmethod
    def _attempt_inline(spec: SessionSpec) -> Union[SpecExecution, Exception]:
        """One in-process execution attempt; exceptions become values.

        Only :class:`Exception` is absorbed — ``KeyboardInterrupt`` and
        friends propagate to the caller untouched.
        """
        try:
            return execute_spec_full(spec)
        except Exception as error:
            return error

    def _attempt_parallel(
        self,
        specs: Sequence[SessionSpec],
        indices: List[int],
        timeout: Optional[float],
        on_wave_start=None,
        on_wave_end=None,
    ) -> Dict[int, Union[SpecExecution, Exception]]:
        """One pooled execution attempt per index, in waves.

        Specs are dispatched in waves of at most ``jobs`` so every spec
        in a wave starts immediately — which is what makes
        ``timeout_seconds`` a genuine *per-spec* budget (measured from
        its wave's start) instead of a whole-batch one.

        ``on_wave_start(wave)`` / ``on_wave_end(results)`` fire around
        each wave — the heartbeat hooks that make ``repro status`` live
        per wave rather than per batch.
        """
        outcomes: Dict[int, Union[SpecExecution, Exception]] = {}
        wave_size = max(1, min(self.jobs, len(indices)))
        position = 0
        while position < len(indices):
            wave = indices[position : position + wave_size]
            position += len(wave)
            if on_wave_start is not None:
                on_wave_start(wave)
            wave_outcomes = self._run_wave(specs, wave, timeout)
            if on_wave_end is not None:
                on_wave_end(wave_outcomes)
            outcomes.update(wave_outcomes)
        return outcomes

    def _run_wave(
        self,
        specs: Sequence[SessionSpec],
        wave: List[int],
        timeout: Optional[float],
    ) -> Dict[int, Union[SpecExecution, Exception]]:
        """Run one wave in a fresh pool, enforcing the wall-clock budget.

        A fresh pool per wave keeps failure domains small: a worker
        crash breaks only this wave's pool (every in-flight future of a
        broken pool fails — that blast radius is part of the documented
        contract), and terminated hung workers cannot poison later
        waves.
        """
        outcomes: Dict[int, Union[SpecExecution, Exception]] = {}
        pool = ProcessPoolExecutor(max_workers=len(wave))
        if self.metrics is not None:
            self.metrics.get("repro_runner_pools_created_total").inc()
            self.metrics.get("repro_runner_waves_dispatched_total").inc()
        timed_out = False
        try:
            futures = {pool.submit(execute_spec_full, specs[i]): i for i in wave}
            deadline = None if timeout is None else time.monotonic() + float(timeout)
            not_done = set(futures)
            while not_done:
                wait_for = None
                if deadline is not None:
                    wait_for = deadline - time.monotonic()
                    if wait_for <= 0:
                        timed_out = True
                        break
                done, not_done = wait(not_done, timeout=wait_for)
                for future in done:
                    index = futures[future]
                    try:
                        outcomes[index] = future.result()
                    except Exception as error:
                        outcomes[index] = error
            if timed_out:
                # Hung workers hold the GIL-free sleep forever; reclaim
                # them by force, then classify the unfinished specs.
                terminated = self._terminate_workers(pool)
                if self.metrics is not None:
                    self.metrics.get("repro_runner_workers_terminated_total").inc(
                        terminated
                    )
                for future in not_done:
                    index = futures[future]
                    label = report_label(specs[index], index)
                    outcomes[index] = _SpecTimeout(
                        f"{label} timed out after {timeout:g}s (worker terminated)"
                    )
        finally:
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return outcomes

    @staticmethod
    def _terminate_workers(pool: ProcessPoolExecutor) -> int:
        """Force-kill a pool's worker processes (hung-worker reclaim).

        Returns how many workers were terminated, for the
        ``repro_runner_workers_terminated_total`` counter.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
        return len(processes)

    # -- bookkeeping -----------------------------------------------------

    def _tell(self, batch_began: float, event_cls, **fields) -> None:
        """Append one runner-telemetry event (wall-clock timestamped)."""
        ts_us = int((time.perf_counter() - batch_began) * 1_000_000)
        self.telemetry.append(event_cls(ts_us=ts_us, **fields))

    def _run_batched(
        self,
        specs: Sequence[SessionSpec],
        pending: List[int],
        keys: List[Optional[str]],
        report: RunReport,
        stats: RunnerStats,
        batch_began: float,
        heartbeat,
    ) -> List[int]:
        """Drain batchable pending specs through vectorized BatchSessions.

        Pending specs are grouped by
        :func:`~repro.kernel.batch_engine.batch_compatibility_key`;
        every group of two or more whose members all vectorize runs as
        one :class:`~repro.kernel.batch_engine.BatchSession` in the
        driver process.  Results are written at each spec's own batch
        index (grouping never reorders the report) and recorded through
        the same memo/cache/telemetry path as a pool execution.  Specs a
        batch cannot take — unbatchable shapes, scalar-fallback members,
        groups that error — are returned still pending, so the normal
        pool/inline machinery picks them up unchanged.
        """
        from ..kernel.batch_engine import BatchSession, batch_compatibility_key

        groups: Dict[tuple, List[int]] = {}
        for index in pending:
            group_key = batch_compatibility_key(specs[index])
            if group_key is not None:
                groups.setdefault(group_key, []).append(index)

        handled: set = set()
        for members in groups.values():
            if len(members) < 2:
                continue
            try:
                batch = BatchSession([specs[i] for i in members])
                if batch.fallback_count:
                    # Leave scalar-fallback members to the worker pool,
                    # which can at least run them in parallel.
                    dropped = set(batch.fallback_positions)
                    members = [
                        index
                        for position, index in enumerate(members)
                        if position not in dropped
                    ]
                    if len(members) < 2:
                        continue
                    batch = BatchSession([specs[i] for i in members])
                    if batch.fallback_count:
                        continue
                if heartbeat is not None:
                    for index in members:
                        heartbeat.spec(
                            index, report.outcomes[index].label, "running", attempts=1
                        )
                    heartbeat.progress()
                started = time.perf_counter()
                summaries = batch.run()
            except Exception:
                # Any batch-path failure is absorbed: the members stay
                # pending and re-execute through the scalar path.
                continue
            share = (time.perf_counter() - started) / len(members)
            for position, index in enumerate(members):
                execution = SpecExecution(
                    summary=summaries[position],
                    wall_seconds=share,
                    ticks=specs[index].config.total_ticks,
                    worker_pid=os.getpid(),
                )
                outcome = report.outcomes[index]
                outcome.attempts += 1
                outcome.detail = f"batched({len(members)})"
                if self.timeout_seconds is not None:
                    # The documented gap, surfaced: vectorized groups run
                    # in the driver process, where a wall budget cannot
                    # preempt anything.
                    outcome.detail += "; timeout not enforced"
                    stats.unenforced_timeouts += 1
                report.summaries[index] = execution.summary
                self._record_executed(
                    index, specs[index], execution, keys[index], stats, batch_began
                )
                if heartbeat is not None:
                    heartbeat.spec(
                        index,
                        outcome.label,
                        "done",
                        attempts=1,
                        source="batch",
                        wall_seconds=share,
                    )
            handled.update(members)
            if heartbeat is not None:
                heartbeat.progress()
        if not handled:
            return pending
        return [index for index in pending if index not in handled]

    def _record_executed(
        self,
        index: int,
        spec: SessionSpec,
        execution: SpecExecution,
        key: Optional[str],
        stats: RunnerStats,
        batch_began: float,
    ) -> None:
        stats.sessions_executed += 1
        stats.ticks_simulated += spec.config.total_ticks
        stats.trace_bytes += execution.trace_bytes
        stats.peak_recorder_bytes = max(
            stats.peak_recorder_bytes, execution.peak_recorder_bytes
        )
        label = spec.label or f"spec[{index}]"
        stats.spec_timings.append((label, execution.wall_seconds))
        self._tell(
            batch_began,
            RunnerSessionEvent,
            label=label,
            wall_seconds=execution.wall_seconds,
            ticks=execution.ticks,
            worker_pid=execution.worker_pid,
        )
        self.span_profiler.merge(execution.phase_seconds)
        if self.metrics is not None:
            observe_execution(self.metrics, execution)
        if spec.trace is not None:
            self.last_events[index] = execution.events
            self.last_event_counts[index] = execution.event_counts
        if key is None:
            return
        if self.memoize:
            self._memo[key] = execution.summary
        if self._cache is not None:
            with self.span_profiler.span("cache.write"):
                self._cache.store(
                    key,
                    execution.summary,
                    spec.cache_payload(),
                    columns=execution.columns,
                )

    def _dump_metrics(self) -> None:
        """Atomically persist the registry snapshot as ``metrics.json``.

        Write-then-rename, so a concurrent ``repro metrics`` never reads
        a half-written snapshot.
        """
        assert self.metrics is not None and self.status_dir is not None
        target = metrics_path(self.status_dir)
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_text(self.metrics.to_json(), encoding="utf-8")
        os.replace(scratch, target)

    def clear_memo(self) -> None:
        """Drop the in-memory memo (the on-disk cache is untouched)."""
        self._memo.clear()


def report_label(spec: SessionSpec, index: int) -> str:
    """The label a spec reports under (positional fallback included)."""
    return spec.label or f"spec[{index}]"


# -- the process-wide default runner ------------------------------------

_default: Optional[SessionRunner] = None


def default_runner() -> SessionRunner:
    """The shared runner drivers fall back to when not handed one.

    Created lazily from the ``REPRO_JOBS`` and ``REPRO_CACHE_DIR``
    environment variables (serial, no disk cache, memo on by default).
    """
    global _default
    if _default is None:
        _default = SessionRunner(
            jobs=int(os.environ.get("REPRO_JOBS", "1")),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        )
    return _default


def set_default_runner(runner: Optional[SessionRunner]) -> None:
    """Install (or with None, reset) the process-wide default runner."""
    global _default
    _default = runner


def configure_default_runner(
    jobs: int = 1,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    retries: int = 0,
    timeout_seconds: Optional[float] = None,
    status_dir: Optional[Union[str, os.PathLike]] = None,
    store_dir: Optional[Union[str, os.PathLike]] = None,
) -> SessionRunner:
    """Build, install, and return a default runner with these settings."""
    runner = SessionRunner(
        jobs=jobs,
        cache_dir=cache_dir,
        store_dir=store_dir,
        retries=retries,
        timeout_seconds=timeout_seconds,
        status_dir=status_dir,
    )
    set_default_runner(runner)
    return runner
