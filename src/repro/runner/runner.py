"""The shared batch execution service for simulation sessions.

Every figure of the paper reduces to a matrix of (platform, policy,
workload, seed) sessions.  :class:`SessionRunner` is the one place that
matrix gets executed: serially or over a :class:`ProcessPoolExecutor`
(``jobs=N``), with results returned in spec order regardless of worker
scheduling, an in-memory memo, and an optional content-addressed on-disk
cache.  Workers reduce each finished session to a
:class:`~repro.metrics.summary.SessionSummary` before crossing the
process boundary, so fan-out cost is per-row, not per-trace.

Sessions are deterministic given (config, seed), so serial and parallel
execution of the same batch produce bit-identical summaries — asserted
by the regression tests.

Drivers that do not care about runner placement use the module-level
default runner (:func:`default_runner`), which the CLI configures from
``--jobs`` / ``--cache-dir`` and the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
environment variables.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .cache import ResultCache
from .spec import SessionSpec
from ..errors import RunnerError
from ..kernel.engine import Session
from ..metrics.summary import SessionSummary, summarize
from ..obs.events import RunnerCacheEvent, RunnerSessionEvent, TraceEvent
from ..soc.platform import Platform

__all__ = [
    "RunnerStats",
    "SessionRunner",
    "SpecExecution",
    "execute_spec",
    "execute_spec_full",
    "default_runner",
    "set_default_runner",
    "configure_default_runner",
]


@dataclass
class SpecExecution:
    """Everything one executed spec sends back across the process boundary.

    Attributes:
        summary: The reduced session result (always present).
        events: The traced event stream — empty unless the spec carried a
            :class:`~repro.runner.spec.TraceRequest`.
        event_counts: Published events per ``"category:name"``, from the
            bus counters (these include events a ring buffer evicted).
        wall_seconds: Wall-clock execution time inside the worker.
        ticks: Simulation ticks the session ran.
        worker_pid: The executing process, for worker attribution.
    """

    summary: SessionSummary
    events: List[TraceEvent] = field(default_factory=list)
    event_counts: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    ticks: int = 0
    worker_pid: int = 0


def execute_spec_full(spec: SessionSpec) -> SpecExecution:
    """Run one session described by *spec*, with trace and timing.

    Module-level so a process pool can pickle it; also the single
    in-process execution path, so serial and parallel runs share code.
    """
    began = time.perf_counter()
    bus = spec.trace.build_bus() if spec.trace is not None else None
    platform_spec = spec.resolve_platform_spec()
    session = Session(
        Platform.from_spec(platform_spec),
        spec.build_workload(),
        spec.build_policy(),
        spec.config,
        pin_uncore_max=spec.pin_uncore_max,
        trace=bus,
    )
    summary = summarize(session.run())
    return SpecExecution(
        summary=summary,
        events=bus.events if bus is not None else [],
        event_counts=bus.counts if bus is not None else {},
        wall_seconds=time.perf_counter() - began,
        ticks=session.ticks_run,
        worker_pid=os.getpid(),
    )


def execute_spec(spec: SessionSpec) -> SessionSummary:
    """Run one session described by *spec* and reduce it to a summary."""
    return execute_spec_full(spec).summary


@dataclass
class RunnerStats:
    """What one :meth:`SessionRunner.run` call actually did.

    Attributes:
        sessions_executed: Sessions simulated from scratch.
        ticks_simulated: Total simulation ticks those sessions ran —
            zero on a fully warm cache.
        memo_hits: Batch entries served from the in-memory memo.
        cache_hits: Batch entries served from the on-disk cache.
        wall_seconds: Wall-clock duration of the whole :meth:`run` call.
        spec_timings: Per-executed-spec ``(label, wall_seconds)`` pairs,
            in completion order (label falls back to the workload/policy
            description when the spec carries none).
    """

    sessions_executed: int = 0
    ticks_simulated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    spec_timings: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.sessions_executed + self.memo_hits + self.cache_hits

    @property
    def ticks_per_second(self) -> float:
        """Batch simulation throughput (executed ticks over wall time)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ticks_simulated / self.wall_seconds


@dataclass
class SessionRunner:
    """Executes batches of :class:`SessionSpec`, cached and parallel.

    Attributes:
        jobs: Worker processes; 1 means in-process serial execution.
        cache_dir: Root of the on-disk result cache; None disables it.
        memoize: Keep an in-memory memo of portable results, so repeated
            driver calls inside one process never re-simulate (the role
            the old hand-rolled ``game_eval._CACHE`` played, now shared
            by every consumer).
        last_stats: Accounting of the most recent :meth:`run` call.
        total_stats: The same counters accumulated over every
            :meth:`run` call on this runner — what ``--stats`` prints
            after a multi-batch command.
        last_events: Traced event streams of the most recent batch,
            keyed by batch index (only traced specs appear).  Workers
            ship their event batches back with the summary, so traced
            runs work identically under ``jobs > 1``.
        last_event_counts: Bus counters per traced batch index (these
            include events a ring buffer evicted).
        telemetry: Runner self-observation events for the most recent
            batch (:class:`RunnerSessionEvent` per execution,
            :class:`RunnerCacheEvent` per batch entry), stamped with
            wall-clock microseconds since the batch started.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, os.PathLike]] = None
    memoize: bool = True
    last_stats: RunnerStats = field(default_factory=RunnerStats)
    total_stats: RunnerStats = field(default_factory=RunnerStats)
    last_events: Dict[int, List[TraceEvent]] = field(default_factory=dict)
    last_event_counts: Dict[int, Dict[str, int]] = field(default_factory=dict)
    telemetry: List[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if int(self.jobs) < 1:
            raise RunnerError(f"jobs must be >= 1, got {self.jobs}")
        self.jobs = int(self.jobs)
        if self.cache_dir and os.path.exists(self.cache_dir) and not os.path.isdir(
            self.cache_dir
        ):
            raise RunnerError(
                f"cache_dir {self.cache_dir!r} exists and is not a directory"
            )
        self._cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self._memo: Dict[str, SessionSummary] = {}

    # -- execution -------------------------------------------------------

    def run_one(self, spec: SessionSpec) -> SessionSummary:
        """Run a single spec (through the same cache/memo path)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[SessionSpec]) -> List[SessionSummary]:
        """Execute a batch, returning summaries in spec order.

        Portable specs are looked up in the memo and the on-disk cache
        first; the remainder execute in worker processes when ``jobs > 1``
        (non-portable specs always run in-process).  Results land at the
        index of their spec, so ordering is deterministic no matter how
        workers are scheduled.

        Traced specs (``spec.trace`` set) always execute — a cached
        summary has no event stream — but their summaries are still
        stored, warming the cache for later untraced runs.
        """
        batch_began = time.perf_counter()
        stats = RunnerStats()
        self.last_events = {}
        self.last_event_counts = {}
        self.telemetry = []
        results: List[Optional[SessionSummary]] = [None] * len(specs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(specs)
        first_with_key: Dict[str, int] = {}
        aliases: List[int] = []

        for index, spec in enumerate(specs):
            if not isinstance(spec, SessionSpec):
                raise RunnerError(
                    f"batch entry {index} is {type(spec).__name__}, not SessionSpec"
                )
            if not spec.is_portable:
                pending.append(index)
                continue
            key = spec.cache_key()
            keys[index] = key
            if spec.trace is not None:
                # Traced specs bypass memo/cache/alias: only a real
                # execution produces the event stream.
                pending.append(index)
                continue
            if key in first_with_key:
                # Duplicate spec within the batch: simulate once, copy after.
                aliases.append(index)
                continue
            first_with_key[key] = index
            if self.memoize and key in self._memo:
                results[index] = self._memo[key]
                stats.memo_hits += 1
                self._tell(batch_began, RunnerCacheEvent, outcome="memo_hit", key=key, label=spec.label)
                continue
            if self._cache is not None:
                cached = self._cache.load(key)
                if cached is not None:
                    results[index] = cached
                    if self.memoize:
                        self._memo[key] = cached
                    stats.cache_hits += 1
                    self._tell(batch_began, RunnerCacheEvent, outcome="cache_hit", key=key, label=spec.label)
                    continue
            pending.append(index)
            self._tell(batch_began, RunnerCacheEvent, outcome="miss", key=key, label=spec.label)

        parallelizable = [i for i in pending if specs[i].is_portable]
        inline = [i for i in pending if not specs[i].is_portable]
        if self.jobs > 1 and len(parallelizable) > 1:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(parallelizable))) as pool:
                for index, execution in zip(
                    parallelizable,
                    pool.map(execute_spec_full, [specs[i] for i in parallelizable]),
                ):
                    results[index] = execution.summary
                    self._record_executed(
                        index, specs[index], execution, keys[index], stats, batch_began
                    )
        else:
            inline = sorted(parallelizable + inline)
        for index in inline:
            execution = execute_spec_full(specs[index])
            results[index] = execution.summary
            self._record_executed(
                index, specs[index], execution, keys[index], stats, batch_began
            )
        for index in aliases:
            results[index] = results[first_with_key[keys[index]]]
            stats.memo_hits += 1
            self._tell(
                batch_began,
                RunnerCacheEvent,
                outcome="alias",
                key=keys[index],
                label=specs[index].label,
            )

        stats.wall_seconds = time.perf_counter() - batch_began
        self.last_stats = stats
        total = self.total_stats
        total.sessions_executed += stats.sessions_executed
        total.ticks_simulated += stats.ticks_simulated
        total.memo_hits += stats.memo_hits
        total.cache_hits += stats.cache_hits
        total.wall_seconds += stats.wall_seconds
        total.spec_timings.extend(stats.spec_timings)
        return results  # type: ignore[return-value]

    def _tell(self, batch_began: float, event_cls, **fields) -> None:
        """Append one runner-telemetry event (wall-clock timestamped)."""
        ts_us = int((time.perf_counter() - batch_began) * 1_000_000)
        self.telemetry.append(event_cls(ts_us=ts_us, **fields))

    def _record_executed(
        self,
        index: int,
        spec: SessionSpec,
        execution: SpecExecution,
        key: Optional[str],
        stats: RunnerStats,
        batch_began: float,
    ) -> None:
        stats.sessions_executed += 1
        stats.ticks_simulated += spec.config.total_ticks
        label = spec.label or f"spec[{index}]"
        stats.spec_timings.append((label, execution.wall_seconds))
        self._tell(
            batch_began,
            RunnerSessionEvent,
            label=label,
            wall_seconds=execution.wall_seconds,
            ticks=execution.ticks,
            worker_pid=execution.worker_pid,
        )
        if spec.trace is not None:
            self.last_events[index] = execution.events
            self.last_event_counts[index] = execution.event_counts
        if key is None:
            return
        if self.memoize:
            self._memo[key] = execution.summary
        if self._cache is not None:
            self._cache.store(key, execution.summary, spec.cache_payload())

    def clear_memo(self) -> None:
        """Drop the in-memory memo (the on-disk cache is untouched)."""
        self._memo.clear()


# -- the process-wide default runner ------------------------------------

_default: Optional[SessionRunner] = None


def default_runner() -> SessionRunner:
    """The shared runner drivers fall back to when not handed one.

    Created lazily from the ``REPRO_JOBS`` and ``REPRO_CACHE_DIR``
    environment variables (serial, no disk cache, memo on by default).
    """
    global _default
    if _default is None:
        _default = SessionRunner(
            jobs=int(os.environ.get("REPRO_JOBS", "1")),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        )
    return _default


def set_default_runner(runner: Optional[SessionRunner]) -> None:
    """Install (or with None, reset) the process-wide default runner."""
    global _default
    _default = runner


def configure_default_runner(
    jobs: int = 1, cache_dir: Optional[Union[str, os.PathLike]] = None
) -> SessionRunner:
    """Build, install, and return a default runner with these settings."""
    runner = SessionRunner(jobs=jobs, cache_dir=cache_dir)
    set_default_runner(runner)
    return runner
