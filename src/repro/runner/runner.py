"""The shared batch execution service for simulation sessions.

Every figure of the paper reduces to a matrix of (platform, policy,
workload, seed) sessions.  :class:`SessionRunner` is the one place that
matrix gets executed: serially or over a :class:`ProcessPoolExecutor`
(``jobs=N``), with results returned in spec order regardless of worker
scheduling, an in-memory memo, and an optional content-addressed on-disk
cache.  Workers reduce each finished session to a
:class:`~repro.metrics.summary.SessionSummary` before crossing the
process boundary, so fan-out cost is per-row, not per-trace.

Sessions are deterministic given (config, seed), so serial and parallel
execution of the same batch produce bit-identical summaries — asserted
by the regression tests.

Drivers that do not care about runner placement use the module-level
default runner (:func:`default_runner`), which the CLI configures from
``--jobs`` / ``--cache-dir`` and the ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
environment variables.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .cache import ResultCache
from .spec import SessionSpec
from ..errors import RunnerError
from ..kernel.engine import Session
from ..metrics.summary import SessionSummary, summarize
from ..soc.platform import Platform

__all__ = [
    "RunnerStats",
    "SessionRunner",
    "execute_spec",
    "default_runner",
    "set_default_runner",
    "configure_default_runner",
]


def execute_spec(spec: SessionSpec) -> SessionSummary:
    """Run one session described by *spec* and reduce it to a summary.

    Module-level so a process pool can pickle it; also the single
    in-process execution path, so serial and parallel runs share code.
    """
    platform_spec = spec.resolve_platform_spec()
    session = Session(
        Platform.from_spec(platform_spec),
        spec.build_workload(),
        spec.build_policy(),
        spec.config,
        pin_uncore_max=spec.pin_uncore_max,
    )
    return summarize(session.run())


@dataclass
class RunnerStats:
    """What one :meth:`SessionRunner.run` call actually did.

    Attributes:
        sessions_executed: Sessions simulated from scratch.
        ticks_simulated: Total simulation ticks those sessions ran —
            zero on a fully warm cache.
        memo_hits: Batch entries served from the in-memory memo.
        cache_hits: Batch entries served from the on-disk cache.
    """

    sessions_executed: int = 0
    ticks_simulated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0

    @property
    def total(self) -> int:
        return self.sessions_executed + self.memo_hits + self.cache_hits


@dataclass
class SessionRunner:
    """Executes batches of :class:`SessionSpec`, cached and parallel.

    Attributes:
        jobs: Worker processes; 1 means in-process serial execution.
        cache_dir: Root of the on-disk result cache; None disables it.
        memoize: Keep an in-memory memo of portable results, so repeated
            driver calls inside one process never re-simulate (the role
            the old hand-rolled ``game_eval._CACHE`` played, now shared
            by every consumer).
        last_stats: Accounting of the most recent :meth:`run` call.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, os.PathLike]] = None
    memoize: bool = True
    last_stats: RunnerStats = field(default_factory=RunnerStats)

    def __post_init__(self) -> None:
        if int(self.jobs) < 1:
            raise RunnerError(f"jobs must be >= 1, got {self.jobs}")
        self.jobs = int(self.jobs)
        if self.cache_dir and os.path.exists(self.cache_dir) and not os.path.isdir(
            self.cache_dir
        ):
            raise RunnerError(
                f"cache_dir {self.cache_dir!r} exists and is not a directory"
            )
        self._cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self._memo: Dict[str, SessionSummary] = {}

    # -- execution -------------------------------------------------------

    def run_one(self, spec: SessionSpec) -> SessionSummary:
        """Run a single spec (through the same cache/memo path)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[SessionSpec]) -> List[SessionSummary]:
        """Execute a batch, returning summaries in spec order.

        Portable specs are looked up in the memo and the on-disk cache
        first; the remainder execute in worker processes when ``jobs > 1``
        (non-portable specs always run in-process).  Results land at the
        index of their spec, so ordering is deterministic no matter how
        workers are scheduled.
        """
        stats = RunnerStats()
        results: List[Optional[SessionSummary]] = [None] * len(specs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(specs)
        first_with_key: Dict[str, int] = {}
        aliases: List[int] = []

        for index, spec in enumerate(specs):
            if not isinstance(spec, SessionSpec):
                raise RunnerError(
                    f"batch entry {index} is {type(spec).__name__}, not SessionSpec"
                )
            if not spec.is_portable:
                pending.append(index)
                continue
            key = spec.cache_key()
            keys[index] = key
            if key in first_with_key:
                # Duplicate spec within the batch: simulate once, copy after.
                aliases.append(index)
                continue
            first_with_key[key] = index
            if self.memoize and key in self._memo:
                results[index] = self._memo[key]
                stats.memo_hits += 1
                continue
            if self._cache is not None:
                cached = self._cache.load(key)
                if cached is not None:
                    results[index] = cached
                    if self.memoize:
                        self._memo[key] = cached
                    stats.cache_hits += 1
                    continue
            pending.append(index)

        parallelizable = [i for i in pending if specs[i].is_portable]
        inline = [i for i in pending if not specs[i].is_portable]
        if self.jobs > 1 and len(parallelizable) > 1:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(parallelizable))) as pool:
                for index, summary in zip(
                    parallelizable,
                    pool.map(execute_spec, [specs[i] for i in parallelizable]),
                ):
                    results[index] = summary
                    self._record_executed(specs[index], summary, keys[index], stats)
        else:
            inline = sorted(parallelizable + inline)
        for index in inline:
            summary = execute_spec(specs[index])
            results[index] = summary
            self._record_executed(specs[index], summary, keys[index], stats)
        for index in aliases:
            results[index] = results[first_with_key[keys[index]]]
            stats.memo_hits += 1

        self.last_stats = stats
        return results  # type: ignore[return-value]

    def _record_executed(
        self,
        spec: SessionSpec,
        summary: SessionSummary,
        key: Optional[str],
        stats: RunnerStats,
    ) -> None:
        stats.sessions_executed += 1
        stats.ticks_simulated += spec.config.total_ticks
        if key is None:
            return
        if self.memoize:
            self._memo[key] = summary
        if self._cache is not None:
            self._cache.store(key, summary, spec.cache_payload())

    def clear_memo(self) -> None:
        """Drop the in-memory memo (the on-disk cache is untouched)."""
        self._memo.clear()


# -- the process-wide default runner ------------------------------------

_default: Optional[SessionRunner] = None


def default_runner() -> SessionRunner:
    """The shared runner drivers fall back to when not handed one.

    Created lazily from the ``REPRO_JOBS`` and ``REPRO_CACHE_DIR``
    environment variables (serial, no disk cache, memo on by default).
    """
    global _default
    if _default is None:
        _default = SessionRunner(
            jobs=int(os.environ.get("REPRO_JOBS", "1")),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        )
    return _default


def set_default_runner(runner: Optional[SessionRunner]) -> None:
    """Install (or with None, reset) the process-wide default runner."""
    global _default
    _default = runner


def configure_default_runner(
    jobs: int = 1, cache_dir: Optional[Union[str, os.PathLike]] = None
) -> SessionRunner:
    """Build, install, and return a default runner with these settings."""
    runner = SessionRunner(jobs=jobs, cache_dir=cache_dir)
    set_default_runner(runner)
    return runner
