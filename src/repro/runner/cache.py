"""Content-addressed on-disk cache of session summaries.

One JSON file per session, named by the spec's sha256 content address.
Workers reduce a finished session to a
:class:`~repro.metrics.summary.SessionSummary` before it ever reaches the
cache, so entries are small scalar rows, not multi-megabyte traces.
JSON round-trips Python floats exactly (shortest-repr parsing), so a
cache hit reproduces the summary bit for bit.  A ``keep_columns`` spec
additionally stores the session's columnar trace as a compressed
``key.npz`` blob next to the entry, referenced (with its own sha256)
from the entry document — format version 3.

Writes are atomic (temp file + rename) so parallel workers racing on the
same key at worst redo the work, never corrupt an entry.  Reads verify a
sha256 checksum over the summary payload, so damage *after* the write —
a torn write on a full disk, a flipped bit on bad media — is detected
and classified, not silently deserialised.  :meth:`ResultCache.lookup`
distinguishes three outcomes:

* **hit** — entry present, version readable (current v3, or a v2 entry
  read-migrated transparently), checksum verified;
* **miss** — no entry, or an entry from an unreadable format version
  (harmless: the runner recomputes and overwrites);
* **corrupt** — an entry that exists but fails parsing or checksum
  verification.  The runner moves it aside with
  :meth:`ResultCache.quarantine` and recomputes (the *degraded* path in
  ``docs/FAILURE_MODES.md``).

I/O failures other than a missing file raise
:class:`~repro.errors.CacheError`; interrupts propagate untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from .spec import CACHE_FORMAT_VERSION
from ..errors import CacheError
from ..metrics.summary import SessionSummary

#: Entry file versions this reader accepts.  Version 2 entries (no
#: column blob support) remain verified hits — transparent
#: read-migration — while anything else is a plain miss.
READABLE_VERSIONS = frozenset({2, CACHE_FORMAT_VERSION})

__all__ = [
    "CacheLookup",
    "ResultCache",
    "READABLE_VERSIONS",
    "summary_to_dict",
    "summary_from_dict",
    "summary_checksum",
]


def summary_to_dict(summary: SessionSummary) -> dict:
    """JSON-ready form of a summary row."""
    return {
        "platform": summary.platform,
        "policy": summary.policy,
        "workload": summary.workload,
        "seed": summary.seed,
        "duration_seconds": summary.duration_seconds,
        "mean_power_mw": summary.mean_power_mw,
        "mean_cpu_power_mw": summary.mean_cpu_power_mw,
        "energy_mj": summary.energy_mj,
        "mean_frequency_khz": summary.mean_frequency_khz,
        "mean_online_cores": summary.mean_online_cores,
        "mean_load_percent": summary.mean_load_percent,
        "mean_scaled_load_percent": summary.mean_scaled_load_percent,
        "load_std_percent": summary.load_std_percent,
        "mean_quota": summary.mean_quota,
        "mean_fps": summary.mean_fps,
        "dvfs_transitions": summary.dvfs_transitions,
        "hotplug_transitions": summary.hotplug_transitions,
        "workload_metrics": dict(summary.workload_metrics),
    }


def summary_from_dict(payload: dict) -> SessionSummary:
    """Rebuild a summary row from :func:`summary_to_dict` output."""
    return SessionSummary(**payload)


def summary_checksum(payload: dict) -> str:
    """sha256 hex over the canonical JSON form of a summary payload.

    Canonicalisation (sorted keys, tight separators) makes the checksum
    a function of the summary's *values*, not of JSON whitespace — the
    same canonical form the cache key itself hashes.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheLookup:
    """The classified result of one cache read.

    Attributes:
        status: ``"hit"``, ``"miss"``, or ``"corrupt"``.
        summary: The cached summary on a hit, else ``None``.
        detail: Human-readable reason for a corrupt entry (checksum
            mismatch, truncated JSON, malformed summary...); empty
            otherwise.
        version: The entry file's format version on a hit (``2`` for a
            read-migrated pre-columnar entry, ``3`` for current), else
            ``None``.
    """

    status: str
    summary: Optional[SessionSummary] = None
    detail: str = ""
    version: Optional[int] = None

    @property
    def hit(self) -> bool:
        """True when the entry was present and verified."""
        return self.status == "hit"

    @property
    def corrupt(self) -> bool:
        """True when an entry exists but cannot be trusted."""
        return self.status == "corrupt"


class ResultCache:
    """Content-addressed store: cache key -> session summary.

    Args:
        root: Directory holding the entries; created on first use.
        on_store: Optional callback invoked as ``on_store(key, document)``
            after each successful :meth:`store` write, with the exact
            entry document that landed on disk.  The experiment store
            (:class:`~repro.store.ExperimentStore`) hooks this to ingest
            writes into its sqlite index as they happen; the cache itself
            never depends on the callback.
    """

    #: Subdirectory (under ``root``) where corrupt entries are moved.
    QUARANTINE_DIR = "quarantine"

    def __init__(
        self,
        root: Union[str, Path],
        on_store: Optional[Callable[[str, dict], None]] = None,
    ) -> None:
        self.root = Path(root)
        self.on_store = on_store

    def path(self, key: str) -> Path:
        """Where *key*'s entry lives."""
        return self.root / f"{key}.json"

    def columns_path(self, key: str) -> Path:
        """Where *key*'s optional columnar ``.npz`` trace blob lives."""
        return self.root / f"{key}.npz"

    @property
    def quarantine_root(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.root / self.QUARANTINE_DIR

    def lookup(self, key: str) -> CacheLookup:
        """Read and classify *key*'s entry (hit / miss / corrupt).

        A missing file or an entry written by an unreadable format
        version is a plain miss; version-2 entries are still verified
        hits (read-migration — their summary schema is unchanged).  An
        entry that exists at a readable version but fails JSON parsing,
        checksum verification, or summary reconstruction is *corrupt* —
        the caller should :meth:`quarantine` it and recompute.
        Unexpected I/O failures raise
        :class:`~repro.errors.CacheError`; interrupts propagate.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return CacheLookup("miss")
        except OSError as error:
            raise CacheError(f"cannot read cache entry {key}: {error}") from error
        try:
            document = json.loads(text)
        except ValueError as error:
            return CacheLookup("corrupt", detail=f"unparseable JSON: {error}")
        if not isinstance(document, dict):
            return CacheLookup("corrupt", detail="entry is not a JSON object")
        version = document.get("version")
        if version not in READABLE_VERSIONS:
            # A format migration we cannot read, not damage: recompute
            # and overwrite.  Version-2 entries read fine (their summary
            # schema and checksum are unchanged) and migrate for free.
            return CacheLookup("miss")
        payload = document.get("summary")
        if not isinstance(payload, dict):
            return CacheLookup("corrupt", detail="summary payload missing")
        expected = document.get("checksum")
        actual = summary_checksum(payload)
        if expected != actual:
            return CacheLookup(
                "corrupt",
                detail=f"checksum mismatch (stored {str(expected)[:12]}..., "
                f"computed {actual[:12]}...)",
            )
        try:
            return CacheLookup(
                "hit", summary=summary_from_dict(payload), version=version
            )
        except (KeyError, TypeError) as error:
            return CacheLookup("corrupt", detail=f"malformed summary: {error}")

    def load(self, key: str) -> Optional[SessionSummary]:
        """The cached summary for *key*, or None on any kind of non-hit.

        The lenient wrapper around :meth:`lookup` for callers that do
        not distinguish miss from corrupt; I/O failures still raise
        :class:`~repro.errors.CacheError`.
        """
        return self.lookup(key).summary

    def quarantine(self, key: str) -> Optional[Path]:
        """Move *key*'s entry into the quarantine directory.

        Returns the quarantined path, or ``None`` when the entry vanished
        (another process already quarantined or overwrote it).  The file
        keeps its name, so the content address it claimed is preserved
        for post-mortem diffing against the recomputed entry.
        """
        source = self.path(key)
        target = self.quarantine_root / source.name
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(source, target)
        except FileNotFoundError:
            return None
        except OSError as error:
            raise CacheError(f"cannot quarantine cache entry {key}: {error}") from error
        # A column blob without its entry is unverifiable (the checksum
        # lives in the entry): move it aside with the entry.
        try:
            os.replace(
                self.columns_path(key),
                self.quarantine_root / self.columns_path(key).name,
            )
        except FileNotFoundError:
            pass
        except OSError as error:
            raise CacheError(
                f"cannot quarantine cache columns {key}: {error}"
            ) from error
        return target

    def store(
        self,
        key: str,
        summary: SessionSummary,
        spec_payload: dict,
        columns: Optional[bytes] = None,
    ) -> None:
        """Atomically persist *summary* (and optional columns) under *key*.

        The spec payload is stored alongside for debuggability (a human
        can read what produced an entry); only the key is ever matched.
        The stored checksum covers the summary payload, so later reads
        can tell damage from a legitimate entry.

        *columns*, when given, is a columnar trace blob
        (:meth:`~repro.kernel.trace_buffer.TraceBuffer.to_npz_bytes`)
        written to :meth:`columns_path`; the entry records its sha256, so
        :meth:`load_columns` can verify the blob before trusting it.
        The blob lands on disk *before* the entry that references it, so
        a crash between the two writes leaves an orphan blob (harmless),
        never a dangling reference.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(f"cannot create cache root {self.root}: {error}") from error
        payload = summary_to_dict(summary)
        document = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec_payload,
            "summary": payload,
            "checksum": summary_checksum(payload),
        }
        if columns is not None:
            self._write_atomic(self.columns_path(key), columns, key)
            document["columns"] = {
                "file": self.columns_path(key).name,
                "bytes": len(columns),
                "checksum": hashlib.sha256(columns).hexdigest(),
            }
        text = json.dumps(document, sort_keys=True)
        self._write_atomic(self.path(key), text.encode("utf-8"), key)
        if self.on_store is not None:
            self.on_store(key, document)

    def read_document(self, key: str) -> Optional[dict]:
        """The raw entry document for *key*, or ``None`` when unreadable.

        Returns the parsed JSON object exactly as :meth:`store` wrote it
        (version, key, spec, summary, checksum, optional columns) without
        checksum verification — callers that need a trusted summary use
        :meth:`lookup`.  Used by the experiment store so live ingest and
        lazy backfill index the same document shape.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (FileNotFoundError, ValueError):
            return None
        except OSError as error:
            raise CacheError(f"cannot read cache entry {key}: {error}") from error
        if not isinstance(document, dict):
            return None
        return document

    def keys(self) -> Iterator[str]:
        """Keys of every entry file in the cache root, sorted.

        Quarantined entries live in a subdirectory and are excluded; the
        iteration is a directory scan, so entries written after the call
        starts may or may not appear.
        """
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(path.stem for path in self.root.glob("*.json")))

    def _write_atomic(self, target: Path, data: bytes, key: str) -> None:
        """Write *data* to *target* via temp-file + rename (crash-safe)."""
        try:
            descriptor, temp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=f".{key[:12]}.", suffix=".tmp"
            )
        except OSError as error:
            raise CacheError(f"cannot stage cache entry {key}: {error}") from error
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(temp_name, target)
        except BaseException as error:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            if isinstance(error, OSError):
                raise CacheError(
                    f"cannot write cache entry {key}: {error}"
                ) from error
            raise

    # -- columnar trace blobs ---------------------------------------------

    def has_columns(self, key: str) -> bool:
        """True when *key*'s entry references a column blob that exists.

        A cheap existence probe (no checksum verification) the runner
        uses to decide whether a ``keep_columns`` spec can be served
        from cache or must re-execute.
        """
        entry = self.path(key)
        try:
            with open(entry, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return False
        if not isinstance(document, dict) or "columns" not in document:
            return False
        return self.columns_path(key).is_file()

    def load_columns(self, key: str) -> Optional[bytes]:
        """The verified column blob for *key*, or ``None``.

        ``None`` covers every non-hit: no entry, an entry without a
        column reference, or a missing blob file.  A blob that exists
        but fails its recorded sha256 is **quarantined** (moved aside
        like a corrupt entry) and also reported as ``None`` — the caller
        re-executes, exactly like the summary corruption path.
        """
        entry = self.path(key)
        try:
            with open(entry, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except ValueError:
            return None
        except OSError as error:
            raise CacheError(f"cannot read cache entry {key}: {error}") from error
        if not isinstance(document, dict):
            return None
        meta = document.get("columns")
        if not isinstance(meta, dict):
            return None
        try:
            with open(self.columns_path(key), "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise CacheError(f"cannot read cache columns {key}: {error}") from error
        if hashlib.sha256(blob).hexdigest() != meta.get("checksum"):
            source = self.columns_path(key)
            try:
                self.quarantine_root.mkdir(parents=True, exist_ok=True)
                os.replace(source, self.quarantine_root / source.name)
            except FileNotFoundError:
                pass
            except OSError as error:
                raise CacheError(
                    f"cannot quarantine cache columns {key}: {error}"
                ) from error
            return None
        return blob

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
