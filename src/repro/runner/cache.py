"""Content-addressed on-disk cache of session summaries.

One JSON file per session, named by the spec's sha256 content address.
Workers reduce a finished session to a
:class:`~repro.metrics.summary.SessionSummary` before it ever reaches the
cache, so entries are small scalar rows, not multi-megabyte traces.
JSON round-trips Python floats exactly (shortest-repr parsing), so a
cache hit reproduces the summary bit for bit.

Writes are atomic (temp file + rename) so parallel workers racing on the
same key at worst redo the work, never corrupt an entry.  Unreadable or
version-mismatched entries count as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from .spec import CACHE_FORMAT_VERSION
from ..metrics.summary import SessionSummary

__all__ = ["ResultCache", "summary_to_dict", "summary_from_dict"]


def summary_to_dict(summary: SessionSummary) -> dict:
    """JSON-ready form of a summary row."""
    return {
        "platform": summary.platform,
        "policy": summary.policy,
        "workload": summary.workload,
        "seed": summary.seed,
        "duration_seconds": summary.duration_seconds,
        "mean_power_mw": summary.mean_power_mw,
        "mean_cpu_power_mw": summary.mean_cpu_power_mw,
        "energy_mj": summary.energy_mj,
        "mean_frequency_khz": summary.mean_frequency_khz,
        "mean_online_cores": summary.mean_online_cores,
        "mean_load_percent": summary.mean_load_percent,
        "mean_scaled_load_percent": summary.mean_scaled_load_percent,
        "load_std_percent": summary.load_std_percent,
        "mean_quota": summary.mean_quota,
        "mean_fps": summary.mean_fps,
        "dvfs_transitions": summary.dvfs_transitions,
        "hotplug_transitions": summary.hotplug_transitions,
        "workload_metrics": dict(summary.workload_metrics),
    }


def summary_from_dict(payload: dict) -> SessionSummary:
    """Rebuild a summary row from :func:`summary_to_dict` output."""
    return SessionSummary(**payload)


class ResultCache:
    """Content-addressed store: cache key -> session summary.

    Args:
        root: Directory holding the entries; created on first use.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Where *key*'s entry lives."""
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[SessionSummary]:
        """The cached summary for *key*, or None on any kind of miss."""
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if document.get("version") != CACHE_FORMAT_VERSION:
            return None
        try:
            return summary_from_dict(document["summary"])
        except (KeyError, TypeError):
            return None

    def store(self, key: str, summary: SessionSummary, spec_payload: dict) -> None:
        """Atomically persist *summary* under *key*.

        The spec payload is stored alongside for debuggability (a human
        can read what produced an entry); only the key is ever matched.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec_payload,
            "summary": summary_to_dict(summary),
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{key[:12]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_name, self.path(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
