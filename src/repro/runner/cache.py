"""Content-addressed on-disk cache of session summaries.

One JSON file per session, named by the spec's sha256 content address.
Workers reduce a finished session to a
:class:`~repro.metrics.summary.SessionSummary` before it ever reaches the
cache, so entries are small scalar rows, not multi-megabyte traces.
JSON round-trips Python floats exactly (shortest-repr parsing), so a
cache hit reproduces the summary bit for bit.

Writes are atomic (temp file + rename) so parallel workers racing on the
same key at worst redo the work, never corrupt an entry.  Reads verify a
sha256 checksum over the summary payload, so damage *after* the write —
a torn write on a full disk, a flipped bit on bad media — is detected
and classified, not silently deserialised.  :meth:`ResultCache.lookup`
distinguishes three outcomes:

* **hit** — entry present, version current, checksum verified;
* **miss** — no entry, or an entry from an older format version
  (harmless: the runner recomputes and overwrites);
* **corrupt** — an entry that exists but fails parsing or checksum
  verification.  The runner moves it aside with
  :meth:`ResultCache.quarantine` and recomputes (the *degraded* path in
  ``docs/FAILURE_MODES.md``).

I/O failures other than a missing file raise
:class:`~repro.errors.CacheError`; interrupts propagate untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .spec import CACHE_FORMAT_VERSION
from ..errors import CacheError
from ..metrics.summary import SessionSummary

__all__ = [
    "CacheLookup",
    "ResultCache",
    "summary_to_dict",
    "summary_from_dict",
    "summary_checksum",
]


def summary_to_dict(summary: SessionSummary) -> dict:
    """JSON-ready form of a summary row."""
    return {
        "platform": summary.platform,
        "policy": summary.policy,
        "workload": summary.workload,
        "seed": summary.seed,
        "duration_seconds": summary.duration_seconds,
        "mean_power_mw": summary.mean_power_mw,
        "mean_cpu_power_mw": summary.mean_cpu_power_mw,
        "energy_mj": summary.energy_mj,
        "mean_frequency_khz": summary.mean_frequency_khz,
        "mean_online_cores": summary.mean_online_cores,
        "mean_load_percent": summary.mean_load_percent,
        "mean_scaled_load_percent": summary.mean_scaled_load_percent,
        "load_std_percent": summary.load_std_percent,
        "mean_quota": summary.mean_quota,
        "mean_fps": summary.mean_fps,
        "dvfs_transitions": summary.dvfs_transitions,
        "hotplug_transitions": summary.hotplug_transitions,
        "workload_metrics": dict(summary.workload_metrics),
    }


def summary_from_dict(payload: dict) -> SessionSummary:
    """Rebuild a summary row from :func:`summary_to_dict` output."""
    return SessionSummary(**payload)


def summary_checksum(payload: dict) -> str:
    """sha256 hex over the canonical JSON form of a summary payload.

    Canonicalisation (sorted keys, tight separators) makes the checksum
    a function of the summary's *values*, not of JSON whitespace — the
    same canonical form the cache key itself hashes.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheLookup:
    """The classified result of one cache read.

    Attributes:
        status: ``"hit"``, ``"miss"``, or ``"corrupt"``.
        summary: The cached summary on a hit, else ``None``.
        detail: Human-readable reason for a corrupt entry (checksum
            mismatch, truncated JSON, malformed summary...); empty
            otherwise.
    """

    status: str
    summary: Optional[SessionSummary] = None
    detail: str = ""

    @property
    def hit(self) -> bool:
        """True when the entry was present and verified."""
        return self.status == "hit"

    @property
    def corrupt(self) -> bool:
        """True when an entry exists but cannot be trusted."""
        return self.status == "corrupt"


class ResultCache:
    """Content-addressed store: cache key -> session summary.

    Args:
        root: Directory holding the entries; created on first use.
    """

    #: Subdirectory (under ``root``) where corrupt entries are moved.
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Where *key*'s entry lives."""
        return self.root / f"{key}.json"

    @property
    def quarantine_root(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.root / self.QUARANTINE_DIR

    def lookup(self, key: str) -> CacheLookup:
        """Read and classify *key*'s entry (hit / miss / corrupt).

        A missing file or an entry written by an older format version is
        a plain miss.  An entry that exists at the current version but
        fails JSON parsing, checksum verification, or summary
        reconstruction is *corrupt* — the caller should
        :meth:`quarantine` it and recompute.  Unexpected I/O failures
        raise :class:`~repro.errors.CacheError`; interrupts propagate.
        """
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return CacheLookup("miss")
        except OSError as error:
            raise CacheError(f"cannot read cache entry {key}: {error}") from error
        try:
            document = json.loads(text)
        except ValueError as error:
            return CacheLookup("corrupt", detail=f"unparseable JSON: {error}")
        if not isinstance(document, dict):
            return CacheLookup("corrupt", detail="entry is not a JSON object")
        if document.get("version") != CACHE_FORMAT_VERSION:
            # A format migration, not damage: recompute and overwrite.
            return CacheLookup("miss")
        payload = document.get("summary")
        if not isinstance(payload, dict):
            return CacheLookup("corrupt", detail="summary payload missing")
        expected = document.get("checksum")
        actual = summary_checksum(payload)
        if expected != actual:
            return CacheLookup(
                "corrupt",
                detail=f"checksum mismatch (stored {str(expected)[:12]}..., "
                f"computed {actual[:12]}...)",
            )
        try:
            return CacheLookup("hit", summary=summary_from_dict(payload))
        except (KeyError, TypeError) as error:
            return CacheLookup("corrupt", detail=f"malformed summary: {error}")

    def load(self, key: str) -> Optional[SessionSummary]:
        """The cached summary for *key*, or None on any kind of non-hit.

        The lenient wrapper around :meth:`lookup` for callers that do
        not distinguish miss from corrupt; I/O failures still raise
        :class:`~repro.errors.CacheError`.
        """
        return self.lookup(key).summary

    def quarantine(self, key: str) -> Optional[Path]:
        """Move *key*'s entry into the quarantine directory.

        Returns the quarantined path, or ``None`` when the entry vanished
        (another process already quarantined or overwrote it).  The file
        keeps its name, so the content address it claimed is preserved
        for post-mortem diffing against the recomputed entry.
        """
        source = self.path(key)
        target = self.quarantine_root / source.name
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(source, target)
        except FileNotFoundError:
            return None
        except OSError as error:
            raise CacheError(f"cannot quarantine cache entry {key}: {error}") from error
        return target

    def store(self, key: str, summary: SessionSummary, spec_payload: dict) -> None:
        """Atomically persist *summary* under *key*.

        The spec payload is stored alongside for debuggability (a human
        can read what produced an entry); only the key is ever matched.
        The stored checksum covers the summary payload, so later reads
        can tell damage from a legitimate entry.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(f"cannot create cache root {self.root}: {error}") from error
        payload = summary_to_dict(summary)
        document = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec_payload,
            "summary": payload,
            "checksum": summary_checksum(payload),
        }
        try:
            descriptor, temp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=f".{key[:12]}.", suffix=".tmp"
            )
        except OSError as error:
            raise CacheError(f"cannot stage cache entry {key}: {error}") from error
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_name, self.path(key))
        except BaseException as error:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            if isinstance(error, OSError):
                raise CacheError(
                    f"cannot write cache entry {key}: {error}"
                ) from error
            raise

    def __contains__(self, key: str) -> bool:
        return self.path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
