"""Per-spec outcome classification for a runner batch.

A :class:`RunReport` is the runner's answer to "what actually happened?"
after a batch that may have hit worker crashes, timeouts, or cache
corruption.  Every spec in the batch gets exactly one
:class:`SpecOutcome` with one of four statuses:

* ``ok`` — succeeded first try (executed, or served from memo/cache);
* ``retried`` — failed at least once, then succeeded on a retry;
* ``degraded`` — succeeded, but only after the runner routed around
  damage (a corrupt cache entry quarantined and recomputed);
* ``failed`` — never produced a summary within the retry budget.

The statuses are ranked: ``failed`` dominates ``degraded`` dominates
``retried`` dominates ``ok``, so a spec that was both recomputed from a
quarantined entry *and* retried reports the stronger ``degraded``.
The exact guarantees behind each status are the contract documented in
``docs/FAILURE_MODES.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import RunnerError
from ..metrics.summary import SessionSummary

__all__ = ["SpecOutcome", "RunReport", "STATUS_ORDER"]

#: Status severity, weakest to strongest; reports keep the strongest.
STATUS_ORDER = ("ok", "retried", "degraded", "failed")


@dataclass
class SpecOutcome:
    """What happened to one spec of a batch.

    Attributes:
        index: The spec's position in the batch.
        label: The spec's label (or a positional fallback).
        status: ``ok`` / ``retried`` / ``degraded`` / ``failed``.
        source: Where the summary came from — ``executed``, ``memo``,
            ``cache``, or ``alias`` (duplicate of an earlier batch
            entry); ``none`` for failed specs.
        attempts: Executions tried (0 for memo/cache/alias hits).
        error: Message of the last error, for retried/failed specs.
        error_type: Class name of the last error (``"RunnerError"``...).
        detail: Extra context (e.g. why a cache entry was corrupt).
    """

    index: int
    label: str
    status: str = "ok"
    source: str = "executed"
    attempts: int = 0
    error: str = ""
    error_type: str = ""
    detail: str = ""

    def escalate(self, status: str) -> None:
        """Raise this outcome's status to *status* if it is stronger."""
        if STATUS_ORDER.index(status) > STATUS_ORDER.index(self.status):
            self.status = status


@dataclass
class RunReport:
    """Classified outcomes for one :meth:`SessionRunner.run_report` call.

    Attributes:
        outcomes: One :class:`SpecOutcome` per spec, in batch order.
        summaries: The summary per spec, ``None`` where the spec failed;
            same order as ``outcomes``.
    """

    outcomes: List[SpecOutcome] = field(default_factory=list)
    summaries: List[Optional[SessionSummary]] = field(default_factory=list)
    #: The actual exception objects of failed specs, keyed by batch
    #: index, preserved so :meth:`raise_on_failure` re-raises the real
    #: error instead of a stringified copy.
    errors: Dict[int, BaseException] = field(default_factory=dict)

    def by_status(self, status: str) -> List[SpecOutcome]:
        """Outcomes currently carrying *status*."""
        return [outcome for outcome in self.outcomes if outcome.status == status]

    @property
    def ok(self) -> List[SpecOutcome]:
        """Specs that succeeded cleanly on the first attempt."""
        return self.by_status("ok")

    @property
    def retried(self) -> List[SpecOutcome]:
        """Specs that needed at least one retry to succeed."""
        return self.by_status("retried")

    @property
    def degraded(self) -> List[SpecOutcome]:
        """Specs recomputed after the runner routed around damage."""
        return self.by_status("degraded")

    @property
    def failed(self) -> List[SpecOutcome]:
        """Specs that never produced a summary."""
        return self.by_status("failed")

    @property
    def succeeded(self) -> bool:
        """True when every spec produced a summary (possibly bumpily)."""
        return not self.failed

    def first_error(self) -> Optional[BaseException]:
        """The exception of the lowest-index failed spec, if any."""
        if not self.errors:
            return None
        return self.errors[min(self.errors)]

    def raise_on_failure(self) -> None:
        """Re-raise the first failed spec's error (no-op when clean)."""
        error = self.first_error()
        if error is None:
            return
        first = self.failed[0] if self.failed else None
        if first is not None and len(self.failed) > 1:
            raise RunnerError(
                f"{len(self.failed)} of {len(self.outcomes)} specs failed; "
                f"first: {first.label}: {error}"
            ) from error
        raise error

    def render(self) -> str:
        """A human-readable multi-line report (the CLI's ``--stats`` view)."""
        counts = {status: len(self.by_status(status)) for status in STATUS_ORDER}
        lines = [
            "run report: "
            + ", ".join(f"{counts[status]} {status}" for status in STATUS_ORDER)
        ]
        for outcome in self.outcomes:
            if outcome.status == "ok":
                continue
            note = outcome.error or outcome.detail or "-"
            attempts = f", {outcome.attempts} attempts" if outcome.attempts else ""
            lines.append(
                f"  [{outcome.index}] {outcome.label}: "
                f"{outcome.status}{attempts} ({note})"
            )
        return "\n".join(lines)
