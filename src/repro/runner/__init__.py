"""Batch session execution: declarative specs, parallelism, caching.

The runner is the single execution service behind every sweep, policy
comparison, figure driver, and the CLI:

* :class:`~repro.runner.spec.SessionSpec` — a declarative, picklable
  description of one session (platform, policy ref, workload ref,
  config, seed, optional fault plan);
* :class:`~repro.runner.runner.SessionRunner` — executes batches of
  specs serially or over a process pool with deterministic result
  ordering, an in-memory memo, a content-addressed on-disk cache, and
  bounded retry / timeout / quarantine machinery for bad runs;
* :class:`~repro.runner.report.RunReport` — per-spec classification
  (ok / retried / degraded / failed) of what a batch actually did;
* :class:`~repro.runner.spec.FactoryRef` — the ``"module:attr"`` factory
  references that make specs portable across process boundaries.

The failure semantics (what retries, what degrades, what raises) are
documented in ``docs/FAILURE_MODES.md``.

A runner constructed with ``metrics=`` and/or ``status_dir=`` also
feeds the ops plane (:mod:`repro.obs.metrics_plane`): a Prometheus-style
metrics registry, per-phase span profiling, and a live heartbeat file
``repro status`` tails.  Both default to off, with zero overhead.
"""

from .spec import (
    FactoryRef,
    SessionSpec,
    TraceRequest,
    CACHE_FORMAT_VERSION,
    KEY_SCHEMA_VERSION,
)
from .cache import (
    CacheLookup,
    ResultCache,
    summary_checksum,
    summary_from_dict,
    summary_to_dict,
)
from .report import RunReport, SpecOutcome
from .runner import (
    RunnerStats,
    SessionRunner,
    SpecExecution,
    configure_default_runner,
    default_runner,
    execute_spec,
    execute_spec_full,
    set_default_runner,
)

__all__ = [
    "FactoryRef",
    "SessionSpec",
    "TraceRequest",
    "CACHE_FORMAT_VERSION",
    "KEY_SCHEMA_VERSION",
    "CacheLookup",
    "ResultCache",
    "summary_to_dict",
    "summary_from_dict",
    "summary_checksum",
    "RunReport",
    "SpecOutcome",
    "RunnerStats",
    "SessionRunner",
    "SpecExecution",
    "execute_spec",
    "execute_spec_full",
    "default_runner",
    "set_default_runner",
    "configure_default_runner",
]
