"""Batch session execution: declarative specs, parallelism, caching.

The runner is the single execution service behind every sweep, policy
comparison, figure driver, and the CLI:

* :class:`~repro.runner.spec.SessionSpec` — a declarative, picklable
  description of one session (platform, policy ref, workload ref,
  config, seed);
* :class:`~repro.runner.runner.SessionRunner` — executes batches of
  specs serially or over a process pool with deterministic result
  ordering, an in-memory memo, and a content-addressed on-disk cache;
* :class:`~repro.runner.spec.FactoryRef` — the ``"module:attr"`` factory
  references that make specs portable across process boundaries.
"""

from .spec import FactoryRef, SessionSpec, TraceRequest, CACHE_FORMAT_VERSION
from .cache import ResultCache, summary_from_dict, summary_to_dict
from .runner import (
    RunnerStats,
    SessionRunner,
    SpecExecution,
    configure_default_runner,
    default_runner,
    execute_spec,
    execute_spec_full,
    set_default_runner,
)

__all__ = [
    "FactoryRef",
    "SessionSpec",
    "TraceRequest",
    "CACHE_FORMAT_VERSION",
    "ResultCache",
    "summary_to_dict",
    "summary_from_dict",
    "RunnerStats",
    "SessionRunner",
    "SpecExecution",
    "execute_spec",
    "execute_spec_full",
    "default_runner",
    "set_default_runner",
    "configure_default_runner",
]
