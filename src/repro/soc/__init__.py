"""Hardware substrate: CPU cores, OPP tables, power, thermal, and device catalog.

This subpackage models everything below the OS in the paper's stack: the
Snapdragon 800 style multicore CPU with its 14 operating performance
points, the analytic power model of section 4.1, a first-order thermal
node (Figure 2), the GPU and memory bus that section 3.2 pins at maximum,
and the six-phone catalog used by Figure 1.
"""

from .core_state import CoreState, TRANSITION_LATENCY_SECONDS, can_transition
from .opp import Opp, OppTable
from .cpu_core import CpuCore
from .cpu_cluster import CpuCluster
from .topology import ClusterSpec, CpuTopology
from .power_model import PowerParams, CpuPowerModel, PowerBreakdown
from .platform import PlatformSpec, Platform
from .catalog import (
    nexus5_spec,
    nexus_s_spec,
    motorola_mb810_spec,
    galaxy_s2_spec,
    nexus4_spec,
    lg_g3_spec,
    odroid_xu3_spec,
    galaxy_s6_spec,
    PHONE_CATALOG,
    HETERO_CATALOG,
    get_phone_spec,
    fleet_specs,
)
from .gpu import GpuModel, GpuSpec
from .memory import MemoryBusModel, MemorySpec
from .thermal import ThermalModel, ThermalParams
from .battery import PowerRail, RailTopology, build_rails
from .calibration import nexus5_opp_table, nexus5_power_params

__all__ = [
    "CoreState",
    "TRANSITION_LATENCY_SECONDS",
    "can_transition",
    "Opp",
    "OppTable",
    "CpuCore",
    "CpuCluster",
    "ClusterSpec",
    "CpuTopology",
    "PowerParams",
    "CpuPowerModel",
    "PowerBreakdown",
    "PlatformSpec",
    "Platform",
    "nexus5_spec",
    "nexus_s_spec",
    "motorola_mb810_spec",
    "galaxy_s2_spec",
    "nexus4_spec",
    "lg_g3_spec",
    "odroid_xu3_spec",
    "galaxy_s6_spec",
    "PHONE_CATALOG",
    "HETERO_CATALOG",
    "get_phone_spec",
    "GpuModel",
    "GpuSpec",
    "MemoryBusModel",
    "MemorySpec",
    "ThermalModel",
    "ThermalParams",
    "PowerRail",
    "RailTopology",
    "build_rails",
    "fleet_specs",
    "nexus5_opp_table",
    "nexus5_power_params",
]
