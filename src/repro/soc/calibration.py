"""Calibration of the Nexus 5 power model against the paper's measurements.

The thesis reports a handful of concrete numbers from its Monsoon
measurements; we use them as anchors and derive every model constant from
them here, in one place, so the provenance of each number is auditable.

Anchors (all from the paper):

* Table 1 / section 3.1 -- 14 OPPs, 300 MHz .. 2265.6 MHz, 0.9 V .. 1.2 V.
* Section 4.1.2 -- per-core static power: 47 mW at fmin, 120 mW at fmax.
* Section 1.2 / Figure 1 -- full-stress average platform power of the
  Nexus 5: 2403.82 mW.  (The thesis text swaps the Nexus S and Nexus 5
  values; we use the physically consistent assignment: the 4-core
  Nexus 5 is the 2403.82 mW device and is "140% more power consuming".)
* Figure 3 -- at the highest frequency, raising 1-core utilization from
  10% to 100% raises platform power by roughly 74%.

Given the static-power anchors (exact fit) and the full-stress total
(fit to ~0.5%), the remaining freedom is how the non-core power splits
between the platform base, the shared cluster domain, and the memory
path; the split below also lands the Figure 3 utilization-growth anchor
within a few percentage points.  See EXPERIMENTS.md for achieved-vs-paper
numbers on every anchor.
"""

from __future__ import annotations

from typing import Tuple

from .opp import OppTable
from .power_model import PowerParams

__all__ = [
    "NEXUS5_FREQUENCIES_KHZ",
    "NEXUS5_VMIN",
    "NEXUS5_VMAX",
    "NEXUS5_STATIC_FMIN_MW",
    "NEXUS5_STATIC_FMAX_MW",
    "NEXUS5_FULL_STRESS_MW",
    "NEXUS_S_FULL_STRESS_MW",
    "nexus5_opp_table",
    "nexus5_power_params",
]

#: The MSM8974 (Krait 400) frequency ladder -- 14 points (Table 1 says the
#: four identical cores "can work at 14 different frequencies ranging from
#: 300MHz to 2.2656GHz"); values are the stock msm8974 cpufreq table.
NEXUS5_FREQUENCIES_KHZ: Tuple[int, ...] = (
    300_000,
    422_400,
    652_800,
    729_600,
    883_200,
    960_000,
    1_036_800,
    1_190_400,
    1_267_200,
    1_497_600,
    1_574_400,
    1_728_000,
    1_958_400,
    2_265_600,
)

#: Table 1 voltage bounds.
NEXUS5_VMIN = 0.9
NEXUS5_VMAX = 1.2

#: Section 4.1.2 static-power anchors (per core).
NEXUS5_STATIC_FMIN_MW = 47.0
NEXUS5_STATIC_FMAX_MW = 120.0

#: Section 1.2 full-stress averages (physically consistent assignment).
NEXUS5_FULL_STRESS_MW = 2403.82
NEXUS_S_FULL_STRESS_MW = 980.6

#: Dynamic-power coefficient: chosen so four fully-busy cores at fmax plus
#: the static, shared-domain, cache, base, and idle GPU/memory terms
#: reproduce the 2403.82 mW full-stress anchor (the paper's Figure 1 run
#: stresses the CPU with the screen off and the GPU/memory idle).
_NEXUS5_CEFF_MW_PER_GHZ_V2 = 106.0

#: Non-core split (platform floor, shared CPU domain, memory path).
_NEXUS5_BASE_MW = 330.0
_NEXUS5_CLUSTER_OVERHEAD_BASE_MW = 40.0
_NEXUS5_CLUSTER_OVERHEAD_SPAN_MW = 40.0
_NEXUS5_CACHE_BASE_MW = 20.0
_NEXUS5_CACHE_SPAN_MW = 40.0


def nexus5_opp_table() -> OppTable:
    """The Nexus 5 OPP table: 14 points, voltage linear 0.9 V -> 1.2 V."""
    return OppTable.linear(
        NEXUS5_FREQUENCIES_KHZ, min_voltage=NEXUS5_VMIN, max_voltage=NEXUS5_VMAX
    )


def nexus5_power_params() -> PowerParams:
    """Power-model constants calibrated to the anchors in this module.

    With these constants the model yields (see tests/soc/test_calibration):

    * per-core static power: exactly 47 mW at fmin and 120 mW at fmax;
    * full-stress platform power (4 cores, fmax, 100%, idle GPU/memory):
      ~2404 mW vs the paper's 2403.82 mW;
    * Figure 3 utilization growth at fmax (10% -> 100%): ~+65% vs the
      paper's +74%.
    """
    return PowerParams.from_static_anchors(
        ceff_mw_per_ghz_v2=_NEXUS5_CEFF_MW_PER_GHZ_V2,
        static_at_vmin_mw=NEXUS5_STATIC_FMIN_MW,
        static_at_vmax_mw=NEXUS5_STATIC_FMAX_MW,
        vmin=NEXUS5_VMIN,
        vmax=NEXUS5_VMAX,
        cluster_overhead_base_mw=_NEXUS5_CLUSTER_OVERHEAD_BASE_MW,
        cluster_overhead_span_mw=_NEXUS5_CLUSTER_OVERHEAD_SPAN_MW,
        cache_base_mw=_NEXUS5_CACHE_BASE_MW,
        cache_span_mw=_NEXUS5_CACHE_SPAN_MW,
        platform_base_mw=_NEXUS5_BASE_MW,
    )
