"""First-order thermal model of the CPU area, with optional throttling.

Figure 2(a) of the paper is an infrared image: at full stress the CPU
area of the single-core Nexus S reaches 26.9 degC while the quad-core
Nexus 5 reaches 42.1 degC.  A first-order RC node driven by CPU power
reproduces exactly that steady-state relationship:

    T_ss = T_ambient + R_th * P_cpu
    dT/dt = (T_ss - T) / tau

The model also implements the MSM8974's well-known thermal throttling:
when the junction temperature crosses ``throttle_temp_c`` the maximum
allowed OPP index steps down, and steps back up when the temperature
recovers below the hysteresis point.  Throttling is what keeps measured
power nearly flat when going from 2 to 4 fully-loaded cores at fmax
(Figure 4's "marginal power increase"): the extra cores force the whole
cluster below fmax.
"""

from __future__ import annotations

from dataclasses import dataclass

from .opp import OppTable
from ..errors import ConfigError
from ..units import require_non_negative, require_positive

__all__ = ["ThermalParams", "ThermalModel"]


@dataclass(frozen=True)
class ThermalParams:
    """Constants of the RC thermal node.

    Attributes:
        ambient_c: Ambient (and initial) temperature, degC.
        resistance_c_per_w: Thermal resistance from CPU power to the CPU
            area temperature the IR camera sees, degC per watt.
        time_constant_s: RC time constant of the node.
        throttle_temp_c: Junction temperature that triggers a throttle
            step; ``inf`` disables throttling.
        release_temp_c: Temperature below which one throttle step is
            released (must be below ``throttle_temp_c``).
    """

    ambient_c: float = 24.0
    resistance_c_per_w: float = 8.0
    time_constant_s: float = 12.0
    throttle_temp_c: float = float("inf")
    release_temp_c: float = float("-inf")

    def __post_init__(self) -> None:
        require_positive(self.resistance_c_per_w, "resistance_c_per_w")
        require_positive(self.time_constant_s, "time_constant_s")
        if self.release_temp_c >= self.throttle_temp_c:
            raise ConfigError(
                f"release_temp_c {self.release_temp_c} must be below "
                f"throttle_temp_c {self.throttle_temp_c}"
            )


class ThermalModel:
    """Integrates the RC node each tick and tracks the throttle cap."""

    def __init__(self, params: ThermalParams, opp_table: OppTable) -> None:
        self.params = params
        self.opp_table = opp_table
        self._temperature_c = params.ambient_c
        self._throttle_steps = 0
        self._injected_floor_steps = 0

    @property
    def temperature_c(self) -> float:
        """Current CPU-area temperature, degC."""
        return self._temperature_c

    @property
    def throttle_steps(self) -> int:
        """OPP steps currently removed from the top of the table.

        The maximum of the natural (temperature-driven) throttle state
        and any injected floor (:meth:`inject_throttle_floor`).
        """
        return max(self._throttle_steps, self._injected_floor_steps)

    @property
    def injected_throttle_steps(self) -> int:
        """The externally-injected throttle floor (0 when none is active)."""
        return self._injected_floor_steps

    @property
    def max_allowed_frequency_khz(self) -> int:
        """Highest OPP frequency currently permitted by thermal state."""
        index = len(self.opp_table) - 1 - self.throttle_steps
        return self.opp_table.by_index(max(index, 0)).frequency_khz

    def inject_throttle_floor(self, steps: int) -> None:
        """Force at least *steps* throttle steps, regardless of temperature.

        The fault-injection hook behind
        :class:`~repro.faults.plan.ThermalThrottleFault`: a platform
        thermal driver clamping the OPP table mid-session.  The natural
        (temperature-driven) throttle state keeps evolving underneath and
        takes over again once :meth:`clear_throttle_floor` is called.
        """
        if steps < 0:
            raise ConfigError(f"throttle floor must be non-negative, got {steps}")
        self._injected_floor_steps = min(steps, len(self.opp_table) - 1)

    def clear_throttle_floor(self) -> None:
        """Remove the injected throttle floor (natural state takes over)."""
        self._injected_floor_steps = 0

    def steady_state_c(self, cpu_power_mw: float) -> float:
        """Steady-state temperature at a constant CPU power."""
        require_non_negative(cpu_power_mw, "cpu_power_mw")
        return self.params.ambient_c + self.params.resistance_c_per_w * cpu_power_mw / 1000.0

    def step(self, cpu_power_mw: float, dt_seconds: float) -> float:
        """Advance the node by one tick; returns the new temperature.

        Also updates the throttle cap: one OPP step down per tick above
        the throttle threshold, one step up per tick below the release
        threshold (never past the table bounds).
        """
        require_non_negative(dt_seconds, "dt_seconds")
        target = self.steady_state_c(cpu_power_mw)
        alpha = min(dt_seconds / self.params.time_constant_s, 1.0)
        self._temperature_c += (target - self._temperature_c) * alpha
        if self._temperature_c > self.params.throttle_temp_c:
            self._throttle_steps = min(self._throttle_steps + 1, len(self.opp_table) - 1)
        elif self._temperature_c < self.params.release_temp_c and self._throttle_steps:
            self._throttle_steps -= 1
        return self._temperature_c

    def reset(self) -> None:
        """Return to ambient with no throttling (injected floors included)."""
        self._temperature_c = self.params.ambient_c
        self._throttle_steps = 0
        self._injected_floor_steps = 0
