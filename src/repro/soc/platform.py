"""Platform: the full device a simulation runs on.

A :class:`PlatformSpec` is the static datasheet (Table 1 of the paper);
:class:`Platform` is the runtime object bundling the CPU topology (one
or more frequency domains), per-domain power models, GPU, memory bus,
thermal node, and rail topology that the simulator drives each tick.

Single-cluster specs keep their original field layout (``num_cores``,
``opp_table``, ``power_params`` at the top level) so every registered
phone, cache key, and golden summary is unchanged; heterogeneous specs
declare an explicit ``clusters`` tuple and the legacy fields describe
the *primary* (fastest) domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .battery import PowerRail, RailTopology, build_rails
from .cpu_cluster import CpuCluster
from .gpu import GpuModel, GpuSpec
from .memory import MemoryBusModel, MemorySpec
from .opp import OppTable
from .power_model import CpuPowerModel, PowerBreakdown, PowerParams
from .thermal import ThermalModel, ThermalParams
from .topology import ClusterSpec, CpuTopology
from ..errors import PlatformError

__all__ = ["PlatformSpec", "Platform"]


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one device (the Table 1 datasheet).

    Attributes:
        name: Device name ("Nexus 5").
        soc: SoC name ("Snapdragon 800 (MSM8974)").
        release_year: Used by the Figure 1 fleet comparison.
        num_cores: Total cores across all clusters (a single homogeneous
            cluster unless ``clusters`` is declared).
        opp_table: The primary cluster's DVFS table.
        power_params: The primary cluster's calibrated power constants;
            ``platform_base_mw`` here is the whole device's floor.
        gpu: GPU datasheet.
        memory: Memory-bus datasheet.
        rail_topology: Per-core rails (allows per-core DVFS) or shared —
            the primary cluster's rail layout.
        thermal: Thermal node constants.
        os_name: Operating system string (Table 1: "Android 6.0").
        l2_cache_kb: L2 size, informational (Table 1: 2048 kB).
        core_type: Marketing core name ("Krait 400"); cosmetic for
            homogeneous specs, shown in the Table 1 CPU row when set.
        clusters: Explicit frequency domains for heterogeneous devices
            (declaration order = global core-id order; the boot cluster
            comes first).  Empty means one homogeneous cluster built
            from the legacy top-level fields.
    """

    name: str
    soc: str
    release_year: int
    num_cores: int
    opp_table: OppTable
    power_params: PowerParams
    gpu: GpuSpec
    memory: MemorySpec
    rail_topology: RailTopology = RailTopology.PER_CORE
    thermal: ThermalParams = ThermalParams()
    os_name: str = "Android 6.0 (Marshmallow)"
    l2_cache_kb: int = 2048
    core_type: str = ""
    clusters: Tuple[ClusterSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise PlatformError(f"{self.name}: num_cores must be positive")
        if self.release_year < 2000:
            raise PlatformError(f"{self.name}: implausible release year {self.release_year}")
        if self.clusters:
            declared = sum(c.num_cores for c in self.clusters)
            if declared != self.num_cores:
                raise PlatformError(
                    f"{self.name}: clusters declare {declared} cores "
                    f"but num_cores is {self.num_cores}"
                )

    @classmethod
    def from_clusters(
        cls,
        name: str,
        soc: str,
        release_year: int,
        clusters: Sequence[ClusterSpec],
        gpu: GpuSpec,
        memory: MemorySpec,
        thermal: ThermalParams = ThermalParams(),
        os_name: str = "Android 6.0 (Marshmallow)",
        l2_cache_kb: int = 2048,
    ) -> "PlatformSpec":
        """Build a (possibly heterogeneous) spec from explicit cluster specs.

        The legacy top-level fields (``opp_table``, ``power_params``,
        ``rail_topology``, ``core_type``) are filled from the *primary*
        cluster — the one with the highest fmax — so code that only
        understands one domain sees the fastest one.  The primary
        cluster's ``power_params.platform_base_mw`` is the whole
        device's floor and must be zero on every other cluster.
        """
        clusters = tuple(clusters)
        if not clusters:
            raise PlatformError(f"{name}: from_clusters needs at least one cluster")
        primary = max(clusters, key=lambda c: c.opp_table.max_frequency_khz)
        for cspec in clusters:
            if cspec is not primary and cspec.power_params.platform_base_mw != 0.0:
                raise PlatformError(
                    f"{name}: cluster {cspec.name!r} carries platform_base_mw "
                    "but the platform floor is drawn once, from the primary cluster"
                )
        return cls(
            name=name,
            soc=soc,
            release_year=release_year,
            num_cores=sum(c.num_cores for c in clusters),
            opp_table=primary.opp_table,
            power_params=primary.power_params,
            gpu=gpu,
            memory=memory,
            rail_topology=primary.rail_topology,
            thermal=thermal,
            os_name=os_name,
            l2_cache_kb=l2_cache_kb,
            core_type=primary.core_type,
            clusters=clusters,
        )

    def cluster_specs(self) -> Tuple[ClusterSpec, ...]:
        """The device's frequency domains, synthesising one for legacy specs.

        Every consumer of topology goes through this accessor, so a
        homogeneous spec declared with the original flat fields and one
        declared as a single-entry ``clusters`` tuple behave the same.
        """
        if self.clusters:
            return self.clusters
        return (
            ClusterSpec(
                name="cpu",
                core_type=self.core_type,
                num_cores=self.num_cores,
                opp_table=self.opp_table,
                power_params=self.power_params,
                ipc_scale=1.0,
                rail_topology=self.rail_topology,
            ),
        )

    @property
    def is_heterogeneous(self) -> bool:
        """True when the device has more than one frequency domain."""
        return len(self.clusters) > 1

    def spec_rows(self) -> Sequence[tuple]:
        """Rows for rendering the Table 1 style spec sheet.

        Homogeneous devices keep the original single-domain layout
        ("4× Krait 400" when the core type is known, global freq/volt
        ranges); heterogeneous devices render the cluster layout
        ("4× Cortex-A15 + 4× Cortex-A7") with per-cluster ranges.
        """
        specs = self.cluster_specs()
        if len(specs) == 1:
            sole = specs[0]
            cpu_label = (
                f"{sole.num_cores}× {sole.core_type}"
                if sole.core_type
                else f"{self.num_cores} cores"
            )
            freq_volt_rows = (
                ("Freq. min", f"{self.opp_table.min_frequency_khz / 1000.0:.1f} MHz"),
                ("Freq. max", f"{self.opp_table.max_frequency_khz / 1000.0:.1f} MHz"),
                ("Volt. min", f"{self.opp_table.min.voltage:.2f} V"),
                ("Volt. max", f"{self.opp_table.max.voltage:.2f} V"),
            )
        else:
            cpu_label = " + ".join(
                f"{c.num_cores}× {c.core_type or c.name}" for c in specs
            )
            rows: List[tuple] = []
            for cspec in specs:
                rows.append((f"Freq. ({cspec.name})", cspec.freq_range_label()))
                rows.append(
                    (
                        f"Volt. ({cspec.name})",
                        f"{cspec.opp_table.min.voltage:.2f}-"
                        f"{cspec.opp_table.max.voltage:.2f} V",
                    )
                )
            freq_volt_rows = tuple(rows)
        return (
            ("SoC", self.soc),
            ("CPU", cpu_label),
        ) + freq_volt_rows + (
            ("GPU", self.gpu.name),
            ("GPU freq. max", f"{self.gpu.max_frequency_khz / 1000.0:.0f} MHz"),
            ("Cache (L2)", f"{self.l2_cache_kb} kB"),
            ("OS", self.os_name),
            ("Rails", self.rail_topology.value),
        )


def _build_topology_rails(
    cluster_specs: Sequence[ClusterSpec], topology: CpuTopology
) -> Sequence[PowerRail]:
    """Rail set for a topology: per-cluster layout, global core ids."""
    if len(cluster_specs) == 1:
        return build_rails(cluster_specs[0].rail_topology, cluster_specs[0].num_cores)
    rails: List[PowerRail] = []
    for cspec, cluster in zip(cluster_specs, topology.clusters):
        core_ids = tuple(core.core_id for core in cluster.cores)
        if cspec.rail_topology is RailTopology.PER_CORE:
            rails.extend(
                PowerRail(name=f"vdd-cpu{i}", core_ids=(i,)) for i in core_ids
            )
        else:
            rails.append(PowerRail(name=f"vdd-{cspec.name}", core_ids=core_ids))
    return tuple(rails)


class Platform:
    """Runtime device: topology + power models + GPU + memory + thermal.

    Build one with :meth:`from_spec`; the simulator owns it for the
    session and the power meter reads :meth:`power_breakdown` each tick.
    Each frequency domain gets its own :class:`CpuPowerModel`;
    ``power_model`` remains the primary domain's model for single-domain
    callers.
    """

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec
        self._cluster_specs = spec.cluster_specs()
        self.topology = CpuTopology(self._cluster_specs)
        self.power_models: Tuple[CpuPowerModel, ...] = tuple(
            CpuPowerModel(cspec.power_params, cspec.opp_table)
            for cspec in self._cluster_specs
        )
        self.power_model = CpuPowerModel(spec.power_params, spec.opp_table)
        self.gpu = GpuModel(spec.gpu)
        self.memory = MemoryBusModel(spec.memory)
        self.thermal = ThermalModel(spec.thermal, spec.opp_table)
        self.rails: Sequence[PowerRail] = _build_topology_rails(
            self._cluster_specs, self.topology
        )

    @classmethod
    def from_spec(cls, spec: PlatformSpec) -> "Platform":
        """Instantiate the runtime object for *spec* (boot state)."""
        return cls(spec)

    def __repr__(self) -> str:
        return f"Platform({self.spec.name}, {self.spec.num_cores} cores)"

    @property
    def cluster(self) -> CpuCluster:
        """The sole cluster of a homogeneous platform (legacy accessor).

        Heterogeneous platforms have no "the cluster" — use
        :attr:`topology` there; this raises to catch single-domain
        assumptions leaking into multi-domain paths.
        """
        if self.topology.is_heterogeneous:
            raise PlatformError(
                f"{self.spec.name} is heterogeneous "
                f"({self.topology.num_clusters} clusters); use platform.topology"
            )
        return self.topology.clusters[0]

    @property
    def allows_per_core_dvfs(self) -> bool:
        """True when every core may run at its own OPP (all rails per-core)."""
        return all(
            cspec.rail_topology.allows_per_core_dvfs for cspec in self._cluster_specs
        )

    def domain_allows_per_core_dvfs(self, cluster_id: int) -> bool:
        """Whether one frequency domain has per-core rails."""
        try:
            cspec = self._cluster_specs[cluster_id]
        except IndexError:
            raise PlatformError(
                f"{self.spec.name} has no cluster {cluster_id}"
            ) from None
        return cspec.rail_topology.allows_per_core_dvfs

    @property
    def opp_table(self) -> OppTable:
        """The primary cluster's DVFS table."""
        return self.spec.opp_table

    def pin_uncore_max(self) -> None:
        """Apply the section 3.2 experiment constraints: GPU and memory at max."""
        self.gpu.pin_max()
        self.memory.pin_high()

    def uncore_power_mw(self) -> float:
        """GPU plus memory-bus power at their current settings."""
        return self.gpu.power_mw() + self.memory.power_mw()

    def power_breakdown(self) -> PowerBreakdown:
        """Itemised platform power for the topology's current tick state.

        Single-cluster platforms take the original one-model call
        unchanged (the parity contract); heterogeneous platforms
        evaluate each domain with its own model and combine, drawing the
        platform floor exactly once (from the primary cluster's params).
        """
        if not self.topology.is_heterogeneous:
            return self.power_model.breakdown(
                self.topology.clusters[0], uncore_mw=self.uncore_power_mw()
            )
        per_core: List[float] = []
        dynamic = 0.0
        static = 0.0
        overhead = 0.0
        cache = 0.0
        for model, cluster in zip(self.power_models, self.topology.clusters):
            part = model.breakdown(cluster)
            per_core.extend(part.per_core_mw)
            dynamic += part.dynamic_mw
            static += part.static_mw
            overhead += part.cluster_overhead_mw
            cache += part.cache_mw
        return PowerBreakdown(
            per_core_mw=per_core,
            dynamic_mw=dynamic,
            static_mw=static,
            cluster_overhead_mw=overhead,
            cache_mw=cache,
            base_mw=self.spec.power_params.platform_base_mw,
            uncore_mw=self.uncore_power_mw(),
        )

    def effective_voltages(self) -> Sequence[float]:
        """Voltage each core's rail actually supplies, by global core id.

        With per-core rails this is each core's own OPP voltage; a
        cluster on a shared rail pays the maximum voltage any of its
        online cores requests (the waste section 4.1.2 describes).
        """
        voltages: List[float] = []
        for cspec, cluster in zip(self._cluster_specs, self.topology.clusters):
            own = [core.voltage for core in cluster.cores]
            if cspec.rail_topology.allows_per_core_dvfs:
                voltages.extend(own)
                continue
            shared = max(
                (core.voltage for core in cluster.cores if core.is_online),
                default=own[0],
            )
            voltages.extend([shared] * len(own))
        return voltages

    def step_thermal(self, dt_seconds: float) -> float:
        """Advance the thermal node using the current CPU power; returns degC."""
        cpu_mw = self.power_breakdown().cpu_mw
        return self.thermal.step(cpu_mw, dt_seconds)

    def reset(self) -> None:
        """Return to boot state: cores online at fmin, ambient temperature."""
        self.topology.reset()
        self.thermal.reset()
        self.gpu.unpin()
        self.gpu.set_utilization(0.0)
        self.memory.set_low()
