"""Platform: the full device a simulation runs on.

A :class:`PlatformSpec` is the static datasheet (Table 1 of the paper);
:class:`Platform` is the runtime object bundling the CPU cluster, power
model, GPU, memory bus, thermal node, and rail topology that the
simulator drives each tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .battery import PowerRail, RailTopology, build_rails
from .cpu_cluster import CpuCluster
from .gpu import GpuModel, GpuSpec
from .memory import MemoryBusModel, MemorySpec
from .opp import OppTable
from .power_model import CpuPowerModel, PowerBreakdown, PowerParams
from .thermal import ThermalModel, ThermalParams
from ..errors import PlatformError

__all__ = ["PlatformSpec", "Platform"]


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one device (the Table 1 datasheet).

    Attributes:
        name: Device name ("Nexus 5").
        soc: SoC name ("Snapdragon 800 (MSM8974)").
        release_year: Used by the Figure 1 fleet comparison.
        num_cores: Identical cores in the (single) cluster.
        opp_table: The DVFS table shared by all cores.
        power_params: Calibrated power-model constants.
        gpu: GPU datasheet.
        memory: Memory-bus datasheet.
        rail_topology: Per-core rails (allows per-core DVFS) or shared.
        thermal: Thermal node constants.
        os_name: Operating system string (Table 1: "Android 6.0").
        l2_cache_kb: L2 size, informational (Table 1: 2048 kB).
    """

    name: str
    soc: str
    release_year: int
    num_cores: int
    opp_table: OppTable
    power_params: PowerParams
    gpu: GpuSpec
    memory: MemorySpec
    rail_topology: RailTopology = RailTopology.PER_CORE
    thermal: ThermalParams = ThermalParams()
    os_name: str = "Android 6.0 (Marshmallow)"
    l2_cache_kb: int = 2048

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise PlatformError(f"{self.name}: num_cores must be positive")
        if self.release_year < 2000:
            raise PlatformError(f"{self.name}: implausible release year {self.release_year}")

    def spec_rows(self) -> Sequence[tuple]:
        """Rows for rendering the Table 1 style spec sheet."""
        return (
            ("SoC", self.soc),
            ("CPU", f"{self.num_cores} cores"),
            ("Freq. min", f"{self.opp_table.min_frequency_khz / 1000.0:.1f} MHz"),
            ("Freq. max", f"{self.opp_table.max_frequency_khz / 1000.0:.1f} MHz"),
            ("Volt. min", f"{self.opp_table.min.voltage:.2f} V"),
            ("Volt. max", f"{self.opp_table.max.voltage:.2f} V"),
            ("GPU", self.gpu.name),
            ("GPU freq. max", f"{self.gpu.max_frequency_khz / 1000.0:.0f} MHz"),
            ("Cache (L2)", f"{self.l2_cache_kb} kB"),
            ("OS", self.os_name),
            ("Rails", self.rail_topology.value),
        )


class Platform:
    """Runtime device: cluster + power model + GPU + memory + thermal.

    Build one with :meth:`from_spec`; the simulator owns it for the
    session and the power meter reads :meth:`power_breakdown` each tick.
    """

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec
        self.cluster = CpuCluster(spec.num_cores, spec.opp_table)
        self.power_model = CpuPowerModel(spec.power_params, spec.opp_table)
        self.gpu = GpuModel(spec.gpu)
        self.memory = MemoryBusModel(spec.memory)
        self.thermal = ThermalModel(spec.thermal, spec.opp_table)
        self.rails: Sequence[PowerRail] = build_rails(spec.rail_topology, spec.num_cores)

    @classmethod
    def from_spec(cls, spec: PlatformSpec) -> "Platform":
        """Instantiate the runtime object for *spec* (boot state)."""
        return cls(spec)

    def __repr__(self) -> str:
        return f"Platform({self.spec.name}, {self.spec.num_cores} cores)"

    @property
    def allows_per_core_dvfs(self) -> bool:
        """True when each core may run at its own OPP (per-core rails)."""
        return self.spec.rail_topology.allows_per_core_dvfs

    @property
    def opp_table(self) -> OppTable:
        """The cluster's DVFS table."""
        return self.spec.opp_table

    def pin_uncore_max(self) -> None:
        """Apply the section 3.2 experiment constraints: GPU and memory at max."""
        self.gpu.pin_max()
        self.memory.pin_high()

    def uncore_power_mw(self) -> float:
        """GPU plus memory-bus power at their current settings."""
        return self.gpu.power_mw() + self.memory.power_mw()

    def power_breakdown(self) -> PowerBreakdown:
        """Itemised platform power for the cluster's current tick state."""
        return self.power_model.breakdown(self.cluster, uncore_mw=self.uncore_power_mw())

    def effective_voltages(self) -> Sequence[float]:
        """Voltage each core's rail actually supplies.

        With per-core rails this is each core's own OPP voltage; with a
        shared rail every core pays the maximum requested voltage (the
        waste section 4.1.2 describes).
        """
        own = [core.voltage for core in self.cluster.cores]
        if self.spec.rail_topology.allows_per_core_dvfs:
            return own
        shared = max(
            (core.voltage for core in self.cluster.cores if core.is_online),
            default=own[0],
        )
        return [shared] * len(own)

    def step_thermal(self, dt_seconds: float) -> float:
        """Advance the thermal node using the current CPU power; returns degC."""
        cpu_mw = self.power_breakdown().cpu_mw
        return self.thermal.step(cpu_mw, dt_seconds)

    def reset(self) -> None:
        """Return to boot state: cores online at fmin, ambient temperature."""
        self.cluster.reset()
        self.thermal.reset()
        self.gpu.unpin()
        self.gpu.set_utilization(0.0)
        self.memory.set_low()
