"""GPU model.

Section 3.2 pins the GPU at its highest frequency so it "processes any
requests from CPU cores as quick as possible" -- its power becomes a
stable additive term the experiments can subtract.  We model exactly
that: a device with a frequency range, a pinned-or-idle power draw, and
no feedback into CPU scheduling (the paper assumes the GPU is never the
bottleneck once pinned, section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import clamp, require_non_negative, require_positive

__all__ = ["GpuSpec", "GpuModel"]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU.

    Attributes:
        name: Marketing name (e.g. "Adreno 330").
        max_frequency_khz: Highest GPU clock (Table 1: 450 MHz).
        idle_power_mw: Draw when clock-gated at minimum.
        max_power_mw: Draw when pinned at the maximum frequency and busy.
    """

    name: str
    max_frequency_khz: int
    idle_power_mw: float
    max_power_mw: float

    def __post_init__(self) -> None:
        require_positive(self.max_frequency_khz, "max_frequency_khz")
        require_non_negative(self.idle_power_mw, "idle_power_mw")
        if self.max_power_mw < self.idle_power_mw:
            raise ConfigError(
                f"max_power_mw {self.max_power_mw} < idle_power_mw {self.idle_power_mw}"
            )


class GpuModel:
    """Runtime GPU state: pinned-at-max or idle, with utilization scaling."""

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec
        self._pinned_max = False
        self._utilization = 0.0

    @property
    def pinned_max(self) -> bool:
        """True when the experiment pinned the GPU at fmax (section 3.2)."""
        return self._pinned_max

    def pin_max(self) -> None:
        """Pin the GPU at its highest frequency for the whole session."""
        self._pinned_max = True

    def unpin(self) -> None:
        """Release the pin; the GPU idles unless given utilization."""
        self._pinned_max = False

    def set_utilization(self, fraction: float) -> None:
        """Set the GPU busy fraction for the current tick (0-1, clamped)."""
        self._utilization = clamp(fraction, 0.0, 1.0)

    def power_mw(self) -> float:
        """Current GPU power.

        Pinned at max the GPU draws its full-power figure regardless of
        load (the paper's "stable, removable" term); otherwise it draws
        idle power plus a utilization-proportional share.
        """
        if self._pinned_max:
            return self.spec.max_power_mw
        span = self.spec.max_power_mw - self.spec.idle_power_mw
        return self.spec.idle_power_mw + span * self._utilization
