"""Power-rail topology: per-core rails vs a shared rail.

Section 4.1.2 explains why off-lining beats idling on the Nexus 5: "each
core in the Nexus 5 is powered with an independent supply (which allows
per-core DVFS).  Idling cores in that configuration brings more power
leakage as each core is a source of leakage.  However, if we consider a
platform where all cores are connected to the same voltage supply, there
is fewer sources of power leakage ... but that configuration does not
allow per-core DVFS."

This module captures that design axis so policies can ask the platform
whether per-core DVFS is legal, and so the ablation experiments can flip
the topology and watch the off-lining advantage shrink.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from ..errors import PlatformError

__all__ = ["RailTopology", "PowerRail"]


class RailTopology(enum.Enum):
    """How CPU cores attach to voltage supplies."""

    PER_CORE = "per-core"
    SHARED = "shared"

    @property
    def allows_per_core_dvfs(self) -> bool:
        """Per-core DVFS requires independent rails."""
        return self is RailTopology.PER_CORE


@dataclass(frozen=True)
class PowerRail:
    """One voltage rail and the set of core ids it feeds.

    With a SHARED topology a single rail feeds every core and must hold
    the voltage required by the fastest core; with PER_CORE each rail
    feeds one core at exactly its own OPP voltage.
    """

    name: str
    core_ids: Sequence[int]

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise PlatformError(f"rail {self.name!r} feeds no cores")
        if len(set(self.core_ids)) != len(self.core_ids):
            raise PlatformError(f"rail {self.name!r} lists duplicate cores: {self.core_ids}")

    def required_voltage(self, per_core_voltages: Sequence[float]) -> float:
        """The voltage this rail must supply, given each core's OPP voltage.

        A shared rail must satisfy its hungriest core; that is why global
        DVFS wastes power when loads are unbalanced.
        """
        voltages = []
        for core_id in self.core_ids:
            try:
                voltages.append(per_core_voltages[core_id])
            except IndexError:
                raise PlatformError(
                    f"rail {self.name!r} feeds core {core_id} but only "
                    f"{len(per_core_voltages)} voltages were given"
                ) from None
        return max(voltages)


def build_rails(topology: RailTopology, num_cores: int) -> Sequence[PowerRail]:
    """Construct the rail set for *num_cores* under *topology*."""
    if num_cores < 1:
        raise PlatformError(f"num_cores must be positive, got {num_cores}")
    if topology is RailTopology.PER_CORE:
        return tuple(PowerRail(name=f"vdd-cpu{i}", core_ids=(i,)) for i in range(num_cores))
    return (PowerRail(name="vdd-cpu", core_ids=tuple(range(num_cores))),)
